#!/usr/bin/env python3
"""Quickstart: one in-network allreduce through a Flare switch.

Sets up the control plane (network manager computes a reduction tree
and installs handlers), streams staggered host traffic through the
PsPIN behavioral switch, verifies the aggregated result against numpy,
and prints the performance counters the paper reasons about.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import run_switch_allreduce, select_algorithm
from repro.core.allreduce import make_dense_blocks


def main() -> None:
    data_size = "256KiB"      # per-host contribution
    children = 16             # hosts under this switch

    # The Sec. 6.4 policy picks the aggregation design from the size.
    choice = select_algorithm(data_size)
    print(f"policy picked {choice.label!r}: {choice.reason}")

    # Supply explicit data so we can check the numerics ourselves.
    # (run_switch_allreduce also self-verifies against numpy.)
    n_blocks = 256 * 1024 // 1024          # 1 KiB packets
    data = make_dense_blocks(children, n_blocks, 256, dtype="float32", seed=7)

    result = run_switch_allreduce(
        data_size,
        children=children,
        n_clusters=4,          # simulate 4 clusters, scale to 64 (paper method)
        data=data,
        seed=7,
    )

    print(result.summary())
    print(f"  bandwidth          : {result.bandwidth_tbps:.2f} Tbps "
          f"(scaled from {result.sim_clusters} simulated clusters)")
    print(f"  makespan           : {result.makespan_cycles:,.0f} cycles @ 1 GHz")
    print(f"  peak input buffers : {result.peak_input_buffer_bytes / 1024:.0f} KiB")
    print(f"  peak working memory: {result.peak_working_memory_bytes / 1024:.0f} KiB")
    print(f"  contention wait    : {result.contention_wait_cycles:,.0f} cycles")

    # Independent check of one block.
    golden = data[:, 0, :].sum(axis=0)
    np.testing.assert_allclose(result.outputs[0], golden, rtol=1e-5)
    print("block 0 matches the numpy golden sum — aggregation is exact.")


if __name__ == "__main__":
    main()
