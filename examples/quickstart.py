#!/usr/bin/env python3
"""Quickstart: the unified Communicator API.

One object fronts every allreduce in the library: the Communicator
resolves a request against the algorithm registry (capability
matching), plans it once (reduction tree, handler selection, memory
sizing), caches the plan, and executes it — here with real payloads
that are verified against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Communicator
from repro.core.allreduce import make_dense_blocks


def main() -> None:
    data_size = "256KiB"      # per-host contribution
    children = 16             # hosts under this switch

    comm = Communicator(n_hosts=children, n_clusters=4)

    # "auto" runs capability matching over the registry; for a dense
    # request the in-network switch-level algorithm wins, and inside it
    # the Sec. 6.4 policy picks the aggregation design from the size.
    plan = comm.plan(nbytes=data_size)
    print(plan.describe())
    print()

    # Supply explicit data so we can check the numerics ourselves
    # (the switch-level backend also self-verifies against numpy).
    n_blocks = 256 * 1024 // 1024          # 1 KiB packets
    data = make_dense_blocks(children, n_blocks, 256, dtype="float32", seed=7)

    result = comm.allreduce(data, seed=7)
    raw = result.raw                       # native switch-level counters

    print(result.summary())
    print(f"  algorithm          : {result.algorithm} ({raw.algorithm})")
    print(f"  bandwidth          : {raw.bandwidth_tbps:.2f} Tbps "
          f"(scaled from {raw.sim_clusters} simulated clusters)")
    print(f"  makespan           : {raw.makespan_cycles:,.0f} cycles @ 1 GHz")
    print(f"  peak input buffers : {raw.peak_input_buffer_bytes / 1024:.0f} KiB")
    print(f"  peak working memory: {raw.peak_working_memory_bytes / 1024:.0f} KiB")

    # Independent check of one block.
    golden = data[:, 0, :].sum(axis=0)
    np.testing.assert_allclose(raw.outputs[0], golden, rtol=1e-5)
    print("block 0 matches the numpy golden sum — aggregation is exact.\n")

    # The production steady state: repeat the same shape.  Planning is
    # skipped — the cached plan goes straight to the data plane.
    for step in range(3):
        comm.allreduce(data, seed=step)
    info = comm.cache_info()
    print(f"4 executions, plan cache: {info.hits} hits / {info.misses} miss "
          f"(planning ran {comm.plans_built}x)\n")

    # Non-blocking issue: overlap two collectives and gather both.
    futures = [
        comm.iallreduce(data, seed=11),
        comm.iallreduce("64KiB", algorithm="ring"),
    ]
    for f in futures:
        print(f"iallreduce[{f.algorithm}] -> {f.result().summary()}")
    comm.close()


if __name__ == "__main__":
    main()
