#!/usr/bin/env python3
"""Scheduling, staggered sending, and the memory/bandwidth trade-off.

Reproduces the Sec. 5 analysis interactively: how the scheduling-subset
size S and the intra-block interarrival delta_c (controlled by
staggered sending) trade bandwidth against input-buffer occupancy —
the Fig. 5 scenarios and the Fig. 7 sweep, on both the closed-form
models and the behavioral simulator.

Run:  python examples/scheduling_policies.py
"""

from repro import Communicator
from repro.core.config import FlareConfig
from repro.core.models import evaluate_design
from repro.utils.tables import ascii_table
from repro.utils.units import bytes_to_mib


def modeled_sweep() -> None:
    print("Closed-form model (paper Eqs. 1-2): single-buffer aggregation,")
    print("64 children, 64 KiB per host, subset size S swept:\n")
    rows = []
    for S in (1, 2, 4, 8):
        cfg = FlareConfig(children=64, subset_size=S, data_bytes="64KiB")
        p = evaluate_design(cfg, "single")
        rows.append([
            S,
            round(p.tau, 0),
            round(p.bandwidth_tbps, 2),
            round(p.queue_length, 1),
            round(bytes_to_mib(p.input_buffer_bytes), 2),
        ])
    print(ascii_table(
        ["S", "tau (cycles)", "band (Tbps)", "per-core Q", "input buffers (MiB)"],
        rows))
    print("\nsmall S: no lock contention but bursty queues (Fig. 5 B);")
    print("large S: balanced queues but shared-buffer contention (Eq. 2).\n")


def staggered_vs_sequential() -> None:
    print("Behavioral simulation: staggered vs sequential sending")
    print("(single buffer, 8 children, 64 KiB, no arrival jitter):\n")
    comm = Communicator(n_hosts=8, n_clusters=2)
    rows = []
    for staggered in (False, True):
        r = comm.allreduce(
            "64KiB", algorithm="flare_switch", aggregation="single",
            staggered=staggered, jitter=0.0, seed=11,
        ).raw
        rows.append([
            "staggered" if staggered else "sequential",
            round(r.bandwidth_tbps, 2),
            int(r.contention_wait_cycles),
            round(r.peak_input_buffer_bytes / 1024, 0),
        ])
    print(ascii_table(
        ["sending order", "band (Tbps)", "wait (cycles)", "peak inbuf (KiB)"],
        rows))
    print("\nstaggered sending spreads each block's packets across the host")
    print("window (delta_c up to delta*Z/N), dissolving the critical-section")
    print("serialization without shrinking the scheduling subsets.\n")


def scheduler_comparison() -> None:
    print("Hierarchical FCFS (block-affine, local L1) vs plain FCFS")
    print("(any core, remote-L1 penalties) — tree aggregation, 16 children:\n")
    comm = Communicator(n_hosts=16, n_clusters=4)
    rows = []
    for sched in ("hierarchical", "fcfs"):
        r = comm.allreduce(
            "32KiB", algorithm="flare_switch", aggregation="tree",
            scheduler=sched, seed=12,
        ).raw
        rows.append([sched, round(r.bandwidth_tbps, 2),
                     round(r.makespan_cycles, 0)])
    print(ascii_table(["scheduler", "band (Tbps)", "makespan (cycles)"], rows))
    print("\nplain FCFS spreads a block's packets across clusters, paying the")
    print("up-to-25x remote-L1 access latency the paper measures on PsPIN.")


def main() -> None:
    modeled_sweep()
    staggered_vs_sequential()
    scheduler_comparison()


if __name__ == "__main__":
    main()
