#!/usr/bin/env python3
"""Custom aggregation operators and data types (flexibility axis F1).

Fixed-function switches ship a frozen list of MPI operators; RMT
pipelines cannot even multiply integers.  On Flare an operator is just
a sPIN handler, so this example installs three aggregations no existing
in-network solution offers:

* integer product (impossible on Tofino-class hardware);
* saturating int8 addition (sub-byte ML gradient exchange);
* a user-defined "absmax" (keep the element with the largest magnitude,
  used e.g. for gradient-norm tracking) — non-standard, non-MPI.

Run:  python examples/custom_operators.py
"""

import numpy as np

from repro import Communicator
from repro.core.ops import ReductionOp


def saturating_add_int8(acc: np.ndarray, values: np.ndarray) -> None:
    wide = acc.astype(np.int16) + values.astype(np.int16)
    np.clip(wide, -128, 127, out=wide)
    acc[:] = wide.astype(np.int8)


def absmax(acc: np.ndarray, values: np.ndarray) -> None:
    take = np.abs(values) > np.abs(acc)
    acc[take] = values[take]


def main() -> None:
    comm = Communicator(n_hosts=4, n_clusters=1)

    # 1. Integer product — trivially available as a built-in op.  Only
    #    the switch-level algorithm declares custom_ops/prod support,
    #    so "auto" routes there.
    r = comm.allreduce(
        "4KiB", op="prod", aggregation="single", dtype="int32", seed=1
    ).raw
    print(f"int32 product     : {r.blocks_completed} blocks verified, "
          f"{r.bandwidth_tbps:.2f} Tbps")

    # 2. Saturating int8 addition: declare the cost (clip costs extra
    #    cycles) and let the switch charge it.
    sat8 = ReductionOp(
        "sat-add-int8", saturating_add_int8, cycles_factor=1.5,
        commutative=True, associative=True,
    )
    data = np.full((4, 4, 1024), 100, dtype=np.int8)   # saturates at 127
    r = comm.allreduce(
        data, op=sat8, aggregation="single", seed=2, verify=False
    ).raw
    out = r.outputs[0]
    assert np.all(out == 127), "saturation must clamp at int8 max"
    print(f"saturating int8   : clamps at 127 as specified, "
          f"{r.bandwidth_tbps:.2f} Tbps (1.5x op cost charged)")

    # 3. absmax — a non-associative-looking custom op that is actually
    #    fine, but mark it non-associative to watch the policy force the
    #    fixed tree structure.
    am = ReductionOp("absmax", absmax, cycles_factor=1.2, associative=False)
    from repro.core.policy import select_algorithm

    choice = select_algorithm("4MiB", op=am)
    print(f"absmax policy     : {choice.label} ({choice.reason})")
    from repro.core.allreduce import make_dense_blocks

    comm8 = Communicator(n_hosts=8, n_clusters=1)
    data = make_dense_blocks(8, 8, 256, dtype="float32", seed=3)
    r = comm8.allreduce(
        data, op=am, aggregation="tree", seed=3, verify=False
    ).raw
    # golden absmax over hosts:
    g = data[0, 0].copy()
    for h in range(1, 8):
        absmax(g, data[h, 0])
    np.testing.assert_allclose(r.outputs[0], g)
    print("custom absmax     : verified against a host-side reference")


if __name__ == "__main__":
    main()
