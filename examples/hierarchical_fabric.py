#!/usr/bin/env python3
"""Hierarchical in-network aggregation across multiple switches (Fig. 1).

The paper's opening example: hosts spread over several switches build a
reduction tree — leaves aggregate their racks, the root aggregates the
leaves and multicasts the result back down.  This example composes
actual PsPIN behavioral switches (shared cycle clock, exact data path)
and shows how densification-aware placement would look for sparse data:
hash storage where data is sparse (leaves), array storage where it has
densified (root) — the Sec. 7 guidance.

Run:  python examples/hierarchical_fabric.py
"""

import numpy as np

from repro.core.multiswitch import run_two_level_allreduce
from repro.sparse.densify import densification_profile


def dense_hierarchy() -> None:
    print("Two-level dense allreduce: 4 leaf switches x 8 hosts -> root\n")
    r = run_two_level_allreduce(
        n_leaves=4, hosts_per_leaf=8, n_blocks=16,
        dtype="int32", seed=1,
    )
    print(f"  blocks completed at root : {r.blocks_completed}")
    print(f"  leaf->root aggregates    : {r.leaf_egress_packets} packets")
    print(f"  root multicast           : {r.root_egress_packets} packets")
    print(f"  end-to-end makespan      : {r.makespan_cycles:,.0f} cycles")
    print("  numerics verified against numpy across all 32 hosts\n")


def reproducible_hierarchy() -> None:
    print("Reproducibility survives the hierarchy (different timing seeds):")
    data = np.random.default_rng(0).standard_normal((16, 4, 256)).astype(np.float32)
    outs = []
    for seed in (7, 1234):
        r = run_two_level_allreduce(
            n_leaves=4, hosts_per_leaf=4, n_blocks=4, dtype="float32",
            reproducible=True, seed=seed, data=data, verify=False,
        )
        outs.append(r.outputs[0])
    identical = np.array_equal(outs[0].view(np.uint32), outs[1].view(np.uint32))
    print(f"  bitwise identical root results: {identical}\n")


def densification_guidance() -> None:
    print("Why the paper stores hash at leaves, array at the root (Sec. 7):")
    prof = densification_profile(span=512, nnz_per_host=1, fan_ins=[8, 8])
    labels = ["host data", "after leaf (8 hosts)", "after root (64 hosts)"]
    for label, nnz in zip(labels, prof):
        print(f"  {label:24s}: {nnz:6.1f} nnz per 512-element bucket "
              f"({nnz / 512:6.2%} dense)")
    print("  -> leaves see 0.2-1.5% density (hash wins: constant memory);")
    print("     the root sees ~12% (array wins: faster, memory affordable).")


def main() -> None:
    dense_hierarchy()
    reproducible_hierarchy()
    densification_guidance()


if __name__ == "__main__":
    main()
