#!/usr/bin/env python3
"""Sparse gradient allreduce for distributed deep learning.

The paper's motivating sparse workload: data-parallel training where
workers exchange top-k sparsified gradients (here: the largest-|g|
element of every 512-value bucket, ~0.2% density — the SparCML
configuration of Fig. 15).

This example runs the whole pipeline at laptop scale:

1. generate ResNet-50-shaped synthetic gradients for 16 workers;
2. bucket-sparsify them and measure how the non-zero positions overlap
   (densification — the effect that governs sparse allreduce traffic);
3. aggregate through a Flare switch with hash and array storage and
   compare bandwidth / memory / extra spill traffic;
4. compare end-to-end time and network traffic on a fat tree:
   host-based SparCML vs in-network Flare sparse.

Run:  python examples/sparse_deep_learning.py
"""

from repro import Communicator
from repro.data.buckets import bucket_top1_sparsify, bucket_union_counts
from repro.data.resnet50 import synthetic_gradients
from repro.sparse.densify import expected_union

BUCKET = 512
N_WORKERS = 16


def main() -> None:
    # ------------------------------------------------------------------
    # 1-2. Gradients -> top-1-per-bucket sparsification -> densification
    # ------------------------------------------------------------------
    workload = synthetic_gradients(
        n_hosts=N_WORKERS, n_params=2_000_000, shared_fraction=0.7, seed=3
    )
    indices = [
        bucket_top1_sparsify(workload.gradients[h], BUCKET)[0]
        for h in range(N_WORKERS)
    ]
    unions = bucket_union_counts(indices, [1, 4, 16])
    print(f"{N_WORKERS} workers, {workload.n_params:,} params "
          f"({workload.bytes_per_host / 2**20:.0f} MiB each), "
          f"bucket-{BUCKET} top-1 sparsification")
    print(f"  nnz per worker          : {unions[0]:,.0f}  (density "
          f"{unions[0] / workload.n_params:.2%})")
    print(f"  union of 4 workers      : {unions[1]:,.0f}")
    print(f"  union of all {N_WORKERS} workers : {unions[2]:,.0f}  "
          f"(densification x{unions[2] / unions[0]:.1f})")
    uniform = expected_union(BUCKET, 1, N_WORKERS) * (workload.n_params / BUCKET)
    print(f"  (uniform-index bound    : {uniform:,.0f} — shared curvature "
          "keeps real gradients below it)\n")

    # ------------------------------------------------------------------
    # 3. In-switch aggregation: hash vs array storage
    # ------------------------------------------------------------------
    print("switch-level sparse aggregation (64 KiB sparsified per host):")
    switch_comm = Communicator(n_hosts=N_WORKERS, n_clusters=2)
    for storage in ("hash", "array"):
        r = switch_comm.allreduce(
            "64KiB", algorithm="flare_switch_sparse", sparse=True,
            density=0.1, storage=storage, seed=3,
        ).raw
        print("  " + r.summary())
    print()

    # ------------------------------------------------------------------
    # 4. End to end on the fat tree: SparCML vs Flare sparse
    # ------------------------------------------------------------------
    comm = Communicator(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    elements = 8_000_000.0
    sparcml = comm.allreduce(
        elements * 4, algorithm="sparcml", sparse=True, bucket_span=BUCKET
    )
    flare = comm.allreduce(
        elements * 4, algorithm="flare_sparse", sparse=True, bucket_span=BUCKET
    )
    print("64-node fat tree, 32 MiB dense-equivalent per host:")
    for r in (sparcml, flare):
        print("  " + r.summary())
    speedup = (sparcml.time_ns - flare.time_ns) / sparcml.time_ns * 100
    traffic = sparcml.traffic_bytes_hops / flare.traffic_bytes_hops
    print(f"  -> Flare sparse is {speedup:.0f}% faster and moves "
          f"{traffic:.1f}x less traffic")


if __name__ == "__main__":
    main()
