#!/usr/bin/env python3
"""Bitwise-reproducible in-network reduction (flexibility axis F3).

The paper's motivating scenario: "in weather and climate modeling, a
small difference in computation on the level of a rounding error could
lead to a completely different weather pattern evolution."  fp32
addition is not associative, so an allreduce whose combine order depends
on packet arrival order returns different bits run to run.

This example aggregates the same fp32 data under many different packet
arrival orders and shows:

* single-buffer aggregation (combine in arrival order): results differ
  across orders — fine for ML, unacceptable for climate restarts;
* tree aggregation (fixed combine structure keyed by ingress port):
  bitwise-identical results for every order, *without* buffering all
  packets first (the trick fixed-function switches resort to).

Run:  python examples/reproducible_climate.py
"""

import itertools

import numpy as np

from repro.core.handler_base import HandlerConfig
from repro.core.single_buffer import SingleBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig

N_MEMBERS = 6          # ensemble members reporting partial sums
VECTOR = 128


def run_once(handler_cls, payloads, order):
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=8)
    cfg.cost_model.icache_fill_cycles = 0.0
    switch = PsPINSwitch(cfg)
    handler = handler_cls(
        HandlerConfig(allreduce_id=1, n_children=len(payloads),
                      dtype_name="float32")
    )
    switch.register_handler(handler)
    switch.parser.install_allreduce(1, handler.name)
    for i, member in enumerate(order):
        switch.inject(
            SwitchPacket(allreduce_id=1, block_id=0, port=member,
                         payload=payloads[member]),
            at=i * 2.0,   # near-simultaneous arrivals
        )
    switch.run()
    return switch.egress[0][1].payload.copy()


def main() -> None:
    # Mixed-magnitude fp32 data — the regime where addition order shows.
    rng = np.random.default_rng(42)
    scales = rng.choice([1e-6, 1.0, 1e6], size=(N_MEMBERS, VECTOR))
    payloads = [
        (scales[m] * rng.standard_normal(VECTOR)).astype(np.float32)
        for m in range(N_MEMBERS)
    ]

    orders = list(itertools.permutations(range(N_MEMBERS)))[:24]
    for name, cls in (("single-buffer", SingleBufferHandler),
                      ("tree", TreeAggregationHandler)):
        results = [run_once(cls, payloads, list(o)) for o in orders]
        distinct = {r.tobytes() for r in results}
        spread = max(
            float(np.max(np.abs(a - results[0]))) for a in results
        )
        print(f"{name:14s}: {len(distinct)} distinct bit pattern(s) across "
              f"{len(orders)} arrival orders; max |delta| = {spread:.3e}")

    print()
    print("tree aggregation fixes the combine structure by ingress port, so")
    print("every run of the climate ensemble reduces identically — no")
    print("store-all-packets buffering required (paper Sec. 6.3 / Table 1 F3).")


if __name__ == "__main__":
    main()
