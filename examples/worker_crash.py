"""Worker-crash supervision: SIGKILL a shard mid-run, finish bitwise.

The sharded engine (``Fabric(workers=N)``) forks one process per shard.
This example runs the same seeded collective twice — once sequentially
(the oracle) and once on two worker processes with worker 0 SIGKILLed
mid-flight.  The coordinator detects the dead worker at the next window
barrier, restores its shard from the mirrored window state, recalls the
survivors, and completes the run sequentially: payload bytes and the
makespan are bitwise/exactly identical to the oracle.  The only trace
that anything went wrong is the recorded degradation event (which also
lands in the provenance database when one is attached — see
``flare-repro prov show/diff``).

Run with::

    PYTHONPATH=src python examples/worker_crash.py
"""

import os
import signal
import warnings

import numpy as np

from repro.comm import Fabric


def run(workers: int, crash: bool = False):
    fabric = Fabric(n_hosts=32, hosts_per_leaf=8, n_spines=2,
                    routing="updown", workers=workers)
    if crash:
        def sigkill_worker_0() -> None:
            procs = getattr(fabric.net, "_procs", None)
            if procs:           # forked by now: shoot shard 0 in the head
                os.kill(procs[0].pid, signal.SIGKILL)

        fabric.sim.schedule_at(5_000.0, sigkill_worker_0)

    comm = fabric.communicator(name="training")
    rng = np.random.default_rng(7)
    grads = rng.integers(-8, 8, size=(32, 4096)).astype(np.float32)
    with warnings.catch_warnings():
        # The recovery recall announces itself with a RuntimeWarning.
        warnings.simplefilter("ignore", RuntimeWarning)
        future = comm.iallreduce(grads, algorithm="ring")
        fabric.run_until(future)
    output = np.asarray(future.result().extra["output"])
    makespan = fabric.now
    degradations = list(getattr(fabric.net, "degradations", []))
    fabric.shutdown()
    return output, makespan, degradations


def main() -> None:
    oracle_out, oracle_ms, _ = run(workers=0)
    crash_out, crash_ms, degradations = run(workers=2, crash=True)

    assert degradations, "the SIGKILL never landed?"
    for event in degradations:
        detail = {k: v for k, v in event.items()
                  if k not in ("event", "reason", "sim_time_ns")}
        print(f"t={event['sim_time_ns']:>7.0f}ns  {event['event']}: "
              f"{event['reason']}  {detail or ''}")

    np.testing.assert_array_equal(crash_out, oracle_out)
    assert crash_ms == oracle_ms, (crash_ms, oracle_ms)
    print(f"\nworker 0 died mid-run; the collective still finished "
          f"bitwise-identical to the sequential oracle "
          f"(makespan {crash_ms / 1e3:.1f}us, exact).")


if __name__ == "__main__":
    main()
