"""Service mode: Poisson arrivals, two QoS classes, one SLO report.

The one-shot demos (``multi_tenant.py``) launch a fixed set of
allreduces and wait.  Service mode keeps the fabric running: jobs
*arrive* over simulated time (seeded Poisson processes, one per tenant
class), each job is placed onto a region of the topology, queued when
the switch pools are full, and its training iterations are folded into
rolling SLO statistics.  This demo runs two classes with a 4:1 QoS
weight split — ``prod`` (many small latency-sensitive allreduces,
in-network) and ``batch`` (fewer, larger, host-based ring) — on an
oversubscribed fat tree, then prints the per-class percentiles,
weighted fairness, queue behaviour, and plan-cache hit rate from the
final report.

Run:  PYTHONPATH=src python examples/service_mode.py
CLI:  flare-repro service --duration 5ms --hosts 32  (same engine)
"""

from repro.comm.fabric import Fabric
from repro.service import FabricService, PoissonWorkload, TenantClass
from repro.utils.units import MIB

DURATION_NS = 5e6          # 5 ms of simulated arrivals
SNAPSHOT_NS = 1e6          # rolling snapshot every 1 ms

CLASSES = [
    # prod: latency-sensitive, 4x the QoS weight, in-network allreduce
    # over 8-host placements.
    TenantClass(
        "prod", weight=4.0, rate_per_s=2000.0, nbytes=1 * MIB,
        n_hosts=8, iterations=4, gap_ns=20_000.0, algorithm="flare_dense",
    ),
    # batch: throughput-oriented background traffic, bigger payloads,
    # host-based ring, 1x weight.
    TenantClass(
        "batch", weight=1.0, rate_per_s=500.0, nbytes=4 * MIB,
        n_hosts=8, iterations=3, gap_ns=50_000.0, algorithm="ring",
    ),
]


def fmt_us(ns) -> str:
    return f"{ns / 1e3:7.0f} us" if ns is not None else "      --"


def main() -> None:
    fabric = Fabric(
        n_hosts=32,
        max_allreduces_per_switch=2,   # small pools => admission queueing
    )
    workload = PoissonWorkload(CLASSES, seed=7, duration_ns=DURATION_NS)
    service = FabricService(
        fabric, workload,
        scheduler="pack", queue_policy="wfq",
        snapshot_interval_ns=SNAPSHOT_NS,
    )
    report = service.run()

    print("== service mode: 2-class Poisson on an oversubscribed fat tree ==")
    jobs = report["jobs"]
    print(f"jobs: {jobs['completed']}/{jobs['arrived']} completed "
          f"in {report['now_ns'] / 1e6:.2f} ms simulated")
    print(f"fairness (Jain, weight-normalized): {report['fairness']:.3f}")
    for name, cls in sorted(report["classes"].items()):
        print(f"  {name:6s} w={cls['weight']:g}: "
              f"{cls['iterations']:3d} iterations, "
              f"p50 {fmt_us(cls['p50_ns'])} / "
              f"p95 {fmt_us(cls['p95_ns'])} / "
              f"p99 {fmt_us(cls['p99_ns'])}, "
              f"{cls['goodput_gbps']:6.2f} Gbps goodput")
    q = report["queue"]
    print(f"  queue[{q['policy']}]: {q['enqueued']} queued, "
          f"mean wait {q['mean_wait_ns'] / 1e3:.0f} us, "
          f"max depth {max(q['mean_depth'], 0):.1f}")
    cache = report["plan_cache"]
    print(f"  plan cache: {cache['hit_rate']:.0%} hit rate "
          f"({cache['hits']}/{cache['hits'] + cache['misses']})")
    print(f"  {len(report['snapshots'])} rolling snapshots "
          f"(schema_version {report['schema_version']})")
    if report["starved_jobs"]:
        print(f"  WARNING: {len(report['starved_jobs'])} starved jobs")


if __name__ == "__main__":
    main()
