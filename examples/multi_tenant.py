"""Two jobs sharing one oversubscribed fat tree, arbitrated by QoS.

A production-shaped scenario: a *training* job and a background
*indexing* job run allreduces over the same 16 hosts at the same time.
The fabric's fat tree has a single spine, so every cross-rack byte of
both tenants squeezes through the same two uplinks — contention is
real, not simulated-per-job.  The demo shows:

1. the isolation baseline (each job alone on the fabric);
2. fair sharing (equal weights — both jobs slow down ~equally);
3. QoS arbitration (training weighted 4:1 — its completion time moves
   back toward the baseline while indexing absorbs the queueing);
4. the admission path (switch pools full -> indexing's in-network
   collective transparently falls back to host-based ring);
5. the per-tenant fabric timeline the bench CLI exports to CI.

Run:  PYTHONPATH=src python examples/multi_tenant.py
"""

from repro.comm import Communicator, Fabric, wait_all
from repro.utils.units import MIB

SHAPE = dict(n_hosts=16, hosts_per_leaf=8, n_spines=1)
SIZE = 8 * MIB


def isolation_baseline() -> float:
    comm = Communicator(**SHAPE)
    result = comm.allreduce(SIZE, algorithm="ring")
    print(f"alone on the fabric      : {result.time_ms:8.2f} ms")
    return result.time_ns


def shared(weight_training: float, weight_indexing: float, base_ns: float) -> None:
    fabric = Fabric(**SHAPE)
    training = fabric.communicator(name="training", weight=weight_training)
    indexing = fabric.communicator(name="indexing", weight=weight_indexing)
    results = wait_all([
        training.iallreduce(SIZE, algorithm="ring"),
        indexing.iallreduce(SIZE, algorithm="ring"),
    ])
    label = f"shared, weights {weight_training:g}:{weight_indexing:g}"
    for comm, r in zip((training, indexing), results):
        print(
            f"{label:25s}: {r.time_ms:8.2f} ms  {comm.name:9s}"
            f" ({r.time_ns / base_ns:.2f}x isolation)"
        )


def admission_fallback() -> None:
    # One handler slot per switch: the second in-network allreduce is
    # rejected by the network manager and replans host-based — the
    # paper's Sec. 4 failure mode, now observable per tenant.
    fabric = Fabric(**SHAPE, max_allreduces_per_switch=1)
    training = fabric.communicator(name="training")
    indexing = fabric.communicator(name="indexing")
    results = wait_all([
        training.iallreduce(SIZE, algorithm="flare_dense"),
        indexing.iallreduce(SIZE, algorithm="flare_dense"),
    ])
    for comm, r in zip((training, indexing), results):
        note = "fell back to host ring" if r.extra["fell_back"] else "admitted in-network"
        print(f"admission                : {comm.name:9s} ran {r.algorithm:12s} ({note})")


def timeline_demo() -> None:
    fabric = Fabric(**SHAPE)
    training = fabric.communicator(name="training", weight=4.0)
    indexing = fabric.communicator(name="indexing", weight=1.0)
    wait_all([
        training.iallreduce(SIZE, algorithm="ring"),
        indexing.iallreduce(SIZE, algorithm="ring"),
    ])
    print("\nfabric timeline (what `bench --tenants 2 --timeline-out` exports):")
    for e in fabric.timeline():
        print(
            f"  {e['tenant']:9s} w={e['weight']:g} {e['algorithm']:6s} "
            f"[{e['start_ns'] / 1e6:7.2f} -> {e['finish_ns'] / 1e6:7.2f} ms] "
            f"goodput {e['goodput_gbps']:5.1f} Gb/s, "
            f"hottest link {e['hot_links'][0][0]}"
        )


def main() -> None:
    print("== two tenants, one oversubscribed fat tree ==")
    base = isolation_baseline()
    shared(1.0, 1.0, base)
    shared(4.0, 1.0, base)
    admission_fallback()
    timeline_demo()


if __name__ == "__main__":
    main()
