"""Tour the pluggable topology & routing layer.

Runs the same allreduce over every built-in wiring family — the
paper's fat tree, a 3-level XGFT, a dragonfly, a 2D torus, and a
dual-rail fat tree — and shows how routing policy changes where the
bytes land: deterministic shortest-path piles traffic onto a few
links, seeded ECMP spreads it, and the congestion-adaptive policy
steers around queues as they form.

Run:  PYTHONPATH=src python examples/topology_zoo.py
"""

from repro.comm import Communicator
from repro.network import TreePlanner, build_topology
from repro.utils.units import MIB

SIZE = 4 * MIB

TOPOLOGIES = {
    "fat-tree": dict(n_hosts=32, hosts_per_leaf=8, n_spines=4),
    "xgft": dict(down=(4, 4, 2), up=(1, 2, 2)),
    "dragonfly": dict(n_groups=5, routers_per_group=4, hosts_per_router=2),
    "torus": dict(dim_x=4, dim_y=4, hosts_per_switch=2),
    "multi-rail": dict(n_hosts=32, hosts_per_leaf=8, n_spines=4, n_rails=2),
}


def tour_topologies() -> None:
    print("== one allreduce, five wirings ==")
    for family, params in TOPOLOGIES.items():
        topo = build_topology(family, **params)
        tree = TreePlanner(topo).plan()
        comm = Communicator(topology=topo)
        result = comm.allreduce(SIZE, algorithm="flare_dense")
        print(
            f"{family:11s} {topo.n_hosts:3d} hosts, "
            f"tree depth {tree.depth()}, root {tree.root:6s} -> "
            f"{result.summary()}"
        )
        comm.close()


def compare_routing() -> None:
    # Cross-rack permutation traffic on an oversubscribed fat tree
    # (8 hosts/leaf, 2 spines): every flow may pick either spine, and
    # the policy decides.  Watch the hottest uplink cool down as the
    # policy gets smarter.
    from repro.network import Message, NetworkSimulator

    print("\n== routing policy vs max uplink load (oversubscribed fat tree) ==")
    for policy in ("shortest", "ecmp", "adaptive"):
        topo = build_topology(
            "fat-tree", n_hosts=32, hosts_per_leaf=8, n_spines=2
        )
        net = NetworkSimulator(topo, router=policy)
        for h in topo.hosts:
            net.on_deliver(h, lambda m, t: None)
        for i in range(8):            # rack 0 -> rack 1, one flow per host
            net.send(Message(f"h{i}", f"h{i + 8}", nbytes=float(MIB)))
        net.run()
        uplinks = {
            k: v for k, v in net.traffic.per_link.items() if k[0].startswith("l")
            and k[1].startswith("s")
        }
        hottest = ", ".join(
            f"{name} {nbytes / MIB:.1f} MiB"
            for name, nbytes in net.traffic.hot_links(2)
        )
        print(f"{policy:9s} max uplink {max(uplinks.values()) / MIB:5.2f} MiB   "
              f"hottest links: {hottest}")


if __name__ == "__main__":
    tour_topologies()
    compare_routing()
