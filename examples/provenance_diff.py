"""Provenance end to end: record two runs, read them back, diff them.

A "baseline" and a "candidate" run (same workload, the candidate moves
4x the bytes) are recorded into one sqlite provenance database.  The
script then reads the database with the same `ProvenanceStore` API the
`prov` CLI uses, prints each run's energy breakdown, and renders the
run-to-run diff — makespan and energy deltas, changed counter
families, the hottest links by byte delta, and flagged regressions.

Run with::

    PYTHONPATH=src python examples/provenance_diff.py

The same flow from the CLI::

    flare-repro bench ring --size 1MiB --provenance-db runs.db
    flare-repro bench ring --size 4MiB --provenance-db runs.db
    flare-repro prov list --db runs.db
    flare-repro prov diff --db runs.db
"""

import os
import tempfile

from repro.comm import Fabric
from repro.provenance import ProvenanceStore, diff_runs


def record_run(db_path: str, size: str, label: str) -> str:
    """One two-tenant run into the shared database; returns the run id."""
    fabric = Fabric(
        n_hosts=16, hosts_per_leaf=4, n_spines=2,
        provenance_db=db_path, run_label=label,
    )
    prod = fabric.communicator(name="prod", weight=4.0)
    batch = fabric.communicator(name="batch", weight=1.0)
    prod.iallreduce(size, algorithm="flare_dense")
    batch.iallreduce(size, algorithm="ring")
    fabric.run()
    run_id = fabric.run_id
    fabric.shutdown()   # quiescence flush: counters + energy land here
    return run_id


def main() -> None:
    db = os.path.join(tempfile.mkdtemp(prefix="flare-prov-"), "runs.db")
    baseline = record_run(db, "1MiB", "baseline")
    candidate = record_run(db, "4MiB", "candidate")
    print(f"recorded {baseline} (baseline) and {candidate} (candidate) "
          f"into {db}\n")

    with ProvenanceStore(db) as store:
        # Per-run energy, attributed per tenant by wire bytes.
        for run in store.runs():
            energy = store.energy(run["run_id"])
            total = energy["run"]["total_j"]
            shares = ", ".join(
                f"{scope.split(':', 1)[1]}={vals['link_transfer_j'] * 1e3:.3f}mJ"
                for scope, vals in sorted(energy.items())
                if scope.startswith("tenant:")
            )
            print(f"{run['run_id']} [{run['label']}]: "
                  f"makespan {run['makespan_ns'] / 1e3:,.0f}us, "
                  f"energy {total * 1e3:.3f}mJ  (wire: {shares})")

        doc = diff_runs(store, baseline, candidate)

    print("\ndiff baseline .. candidate")
    ms = doc["makespan_ns"]
    print(f"  makespan: {ms['a'] / 1e3:,.0f}us -> {ms['b'] / 1e3:,.0f}us")
    for name, pair in doc["energy"].items():
        print(f"  {name}: {pair['a'] * 1e3:.3f}mJ -> {pair['b'] * 1e3:.3f}mJ")
    print("  hottest links by byte delta:")
    for entry in doc["hot_links"][:4]:
        print(f"    {entry['link']}: "
              f"{entry['bytes_a'] / 1e6:.2f}MB -> {entry['bytes_b'] / 1e6:.2f}MB")
    if doc["regressions"]:
        print("  flagged regressions:")
        for line in doc["regressions"]:
            print(f"    !! {line}")


if __name__ == "__main__":
    main()
