"""Chaos on a shared fabric: loss, a mid-flight link outage, recovery.

Two tenants share one oversubscribed fat tree.  The fabric carries 0.5%
random loss on every link from the start; mid-run, a leaf-spine link is
killed outright.  The training tenant's in-network collective is
re-rooted Canary-style (or falls back host-based if the switch pool is
gone), the indexing tenant's ring rides out the loss via host timeouts
and retransmissions, and the recovery timeline records all of it.

Run with::

    PYTHONPATH=src python examples/lossy_fabric.py

The same scenario is reachable from the CLI::

    flare-repro bench flare_dense --faults examples/faults/chaos.json \
        --hosts 16 --timeline-out chaos-timeline.json
"""

import numpy as np

from repro.comm import Fabric, wait_all


def main() -> None:
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    training = fabric.communicator(name="training", weight=4.0)
    indexing = fabric.communicator(name="indexing", weight=1.0)

    # Background chaos: every link drops 0.5% of chunks (seeded, so the
    # run is reproducible); at t=50us one leaf-spine link dies for good.
    fabric.inject(link="*", kind="lossy", loss_rate=0.005, seed=42)
    fabric.inject(link="l0-s0", at=50_000.0, kind="down")

    # The training tenant reduces real gradients in-network; the
    # indexing tenant runs a size-only host-based ring alongside.
    rng = np.random.default_rng(0)
    grads = rng.integers(-8, 8, size=(16, 65536)).astype(np.int32)
    golden = grads.sum(axis=0, dtype=np.int64).astype(np.int32)

    futures = [
        training.iallreduce(grads, algorithm="flare_dense"),
        indexing.iallreduce("4MiB", algorithm="ring"),
    ]
    results = wait_all(futures)

    assert np.array_equal(results[0].extra["output"], golden), "corrupted!"
    print("training collective survived the chaos bitwise-exact\n")

    for event in fabric.fault_log():
        target = event.get("switch") or event.get("link")
        print(f"t={event['at_ns']:>9.0f}ns  {event['event']:6s} "
              f"{event['kind']:5s} {target}")
    print()
    for entry in fabric.timeline():
        line = (f"{entry['tenant']:9s} {entry['algorithm']:12s} "
                f"{entry['duration_ns'] / 1e6:6.2f} ms")
        for rec in entry["recoveries"]:
            line += (f"  [recovered at {rec['at_ns'] / 1e3:.0f}us: "
                     f"{rec['cause']} -> {rec['to_algorithm']}"
                     f" rooted at {rec['to_root']}]")
        print(line)
    traffic = fabric.net.traffic
    print(f"\nchaos cost: {traffic.drops} drops, "
          f"{traffic.retransmits} retransmits, "
          f"{traffic.duplicates} duplicates")
    for name, stats in fabric.tenant_stats().items():
        print(f"{name}: {stats['completed']}/{stats['collectives']} done, "
              f"{stats['recovered']} recovered, {stats['fell_back']} fell back")


if __name__ == "__main__":
    main()
