"""Registered algorithm backends.

Adapts every allreduce implementation in the repository to the
plan/execute contract of :mod:`repro.comm`:

* host-based in-memory algorithms (``rabenseifner``,
  ``recursive_doubling``) from :mod:`repro.collectives.algorithms`,
  costed with an alpha-beta model;
* network-schedule simulations (``ring``, ``sparcml``,
  ``flare_dense``, ``flare_sparse``) from :mod:`repro.collectives`;
* switch-level PsPIN drivers (``flare_switch``,
  ``flare_switch_sparse``) from :mod:`repro.core.allreduce` and
  :mod:`repro.sparse.allreduce`.

Planners do the one-time work — topology shaping, reduction-tree
embedding, per-round/level message sizing, Sec. 6.4 handler selection —
and return a runner that only executes the data plane.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.collectives.algorithms import (
    rabenseifner_allreduce,
    recursive_doubling_allreduce,
)
from repro.collectives.flare_dense import (
    _simulate_flare_dense_allreduce,
    issue_flare_dense_allreduce,
)
from repro.collectives.flare_sparse import (
    _simulate_flare_sparse_allreduce,
    issue_flare_sparse_allreduce,
    sparse_tree_bytes,
)
from repro.collectives.halving import (
    _simulate_halving_allreduce,
    issue_halving_allreduce,
)
from repro.collectives.result import CollectiveResult
from repro.collectives.ring import _simulate_ring_allreduce, issue_ring_allreduce
from repro.collectives.sparcml import (
    _simulate_sparcml_allreduce,
    issue_sparcml_allreduce,
    sparcml_round_bytes,
)
from repro.comm.plan import IssueContext, PlannedExecution
from repro.comm.registry import AlgorithmCaps, CapabilityError, register_algorithm
from repro.comm.request import DENSE_ELEMENT_BYTES, CollectiveRequest
from repro.core.allreduce import plan_switch_allreduce
from repro.network.routing import available_routers
from repro.network.topology import Topology, build_topology
from repro.network import topologies as _topologies  # noqa: F401  (registers families)
from repro.network.trees import (
    TreePlanner,
    as_aggregation_tree,
    embed_reduction_tree,
)
from repro.pspin.costs import CostModel, get_dtype
from repro.sparse.allreduce import _run_sparse_switch_allreduce
from repro.utils.rngtools import seeded_rng
from repro.utils.units import gbps_to_bytes_per_ns

#: Families the tree-schedule (in-network) algorithms can plan over —
#: everything the TreePlanner handles today.  Host-based schedules
#: accept any routable topology ("*").
TREE_PLANNABLE = ("fat-tree", "xgft", "dragonfly", "torus", "multi-rail")


# ----------------------------------------------------------------------
# Topology handling
# ----------------------------------------------------------------------
def _default_hosts_per_leaf(n_hosts: int) -> int:
    for d in (8, 4, 2):
        if n_hosts % d == 0 and n_hosts > d:
            return d
    return n_hosts


def default_fat_tree_kwargs(n_hosts: int, params: dict) -> dict:
    """The paper's default fat-tree sizing from legacy knobs.

    Single source of truth shared by plans (:class:`_TopologySource`)
    and :class:`repro.comm.fabric.Fabric`: both must wire the identical
    fabric from the same inputs or tree node names would diverge.
    """
    hpl = params.get("hosts_per_leaf") or _default_hosts_per_leaf(n_hosts)
    return dict(
        n_hosts=n_hosts,
        hosts_per_leaf=hpl,
        n_spines=min(params.get("n_spines", 4), hpl),
        link_gbps=params.get("link_gbps", 100.0),
        link_latency_ns=params.get("link_latency_ns", 250.0),
    )


class _TopologySource:
    """Topology + routing-policy instances for a plan's executions.

    Link serialization state (``busy_until``) is mutated by a run, so
    each execution gets its own topology built from the planned shape.
    An explicitly supplied topology object (the legacy-shim path) is
    honoured for the first execution and rebuilt from its
    ``describe()`` kwargs afterwards.  ``params["topology"]`` may be a
    family name (built from ``params["topology_params"]``) or a
    :class:`~repro.network.topology.Topology`; absent means the
    paper's fat tree sized from the legacy knobs, with ``n_spines``
    capped at the leaf uplink capacity.
    """

    def __init__(self, request: CollectiveRequest) -> None:
        p = request.params
        self.routing = p.get("routing") or "ecmp"
        if self.routing not in available_routers():
            raise CapabilityError(
                f"unknown routing policy {self.routing!r}; "
                f"available: {available_routers()}"
            )
        self.routing_seed = p.get("routing_seed", 0)
        topo = p.get("topology")
        if isinstance(topo, Topology):
            self._explicit: Optional[Topology] = topo
            self.family = topo.family
            self._kwargs = dict(topo.describe())
        else:
            self._explicit = None
            self.family = topo or "fat-tree"
            self._kwargs = dict(p.get("topology_params") or {})
            if self.family == "fat-tree" and not self._kwargs:
                self._kwargs = default_fat_tree_kwargs(request.n_hosts, p)
        self._shape_cache: Optional[Topology] = None
        shape = self.shape
        placed = p.get("hosts")
        self.hosts: "Optional[list]" = None
        if placed is not None:
            placed = list(placed)
            known = set(shape.hosts)
            for h in placed:
                if h not in known:
                    raise CapabilityError(
                        f"placement names host {h!r} which topology "
                        f"{self.family!r} does not wire"
                    )
            if len(set(placed)) != len(placed):
                raise CapabilityError("placement lists a host twice")
            if len(placed) != request.n_hosts:
                raise CapabilityError(
                    f"placement names {len(placed)} hosts but the request "
                    f"names {request.n_hosts}; size the placement (or the "
                    "request) to match"
                )
            self.hosts = placed
        elif shape.n_hosts != request.n_hosts:
            raise CapabilityError(
                f"topology {self.family!r} wires {shape.n_hosts} hosts but the "
                f"request names {request.n_hosts}; size the topology (or the "
                "request) to match, or pass params['hosts'] to place the "
                "collective on a subset"
            )

    @property
    def shape(self) -> Topology:
        """A topology for plan-time inspection (tree planning, sizing).

        Cached: inspection never mutates link state, so one instance
        serves every plan-time query (``fresh()`` builds per-run
        instances instead).
        """
        if self._explicit is not None:
            return self._explicit
        if self._shape_cache is None:
            self._shape_cache = build_topology(self.family, **self._kwargs)
        return self._shape_cache

    def fresh(self) -> Topology:
        if self._explicit is not None:
            topo, self._explicit = self._explicit, None
            return topo
        return build_topology(self.family, **self._kwargs)

    def plan_tree(self, request: CollectiveRequest):
        """The aggregation tree for in-network schedules: an explicit
        ``params["tree"]``, the classic spine-rooted embedding on the
        fat tree (paper-figure parity), or a planned BFS tree.  A
        placement subset (``params["hosts"]``) always goes through the
        generic planner so the tree covers exactly the placed hosts."""
        tree = request.params.get("tree")
        if tree is not None:
            return tree
        shape = self.shape
        if self.family == "fat-tree" and self.hosts is None:
            return embed_reduction_tree(shape)
        return TreePlanner(shape).plan(
            root=request.params.get("tree_root"), hosts=self.hosts
        )

    def describe(self) -> dict:
        return {
            "family": self.family,
            **self._kwargs,
            "routing": self.routing,
        }

    def check_fabric(self, net) -> None:
        """Issue-time guard: a shared fabric must wire the same fabric
        this plan was shaped for (same family and parameters), or tree
        node names and host lists would silently mismatch."""
        if net.topology.fingerprint() != self.shape.fingerprint():
            raise CapabilityError(
                f"plan was shaped for topology {self.describe()!r} but the "
                f"fabric wires {dict(net.topology.describe())!r}; attach the "
                "communicator to a matching fabric or replan"
            )


# ----------------------------------------------------------------------
# Host-based in-memory algorithms (alpha-beta costed)
# ----------------------------------------------------------------------
def _link_model(request: CollectiveRequest) -> tuple[float, float]:
    """(alpha ns, beta bytes/ns) from the same params the fat-tree
    backends honor, so cross-algorithm comparisons share one fabric."""
    p = request.params
    return (
        p.get("link_latency_ns", 250.0),
        gbps_to_bytes_per_ns(p.get("link_gbps", 100.0)),
    )


def _inmemory_payloads(
    request: CollectiveRequest, payloads, n_elements: int, seed: int
) -> list[np.ndarray]:
    if payloads is None:
        rng = seeded_rng(seed)
        data = rng.integers(0, 7, size=(request.n_hosts, n_elements))
        return list(data.astype(request.dtype))
    arrays = [np.asarray(a) for a in payloads]
    if len(arrays) != request.n_hosts:
        raise ValueError(
            f"got {len(arrays)} payloads for {request.n_hosts} hosts"
        )
    for i, a in enumerate(arrays):
        if a.size != n_elements:
            raise ValueError(
                f"payload {i} has {a.size} elements; this plan was sized "
                f"for {n_elements} — plan the new shape instead of reusing "
                "this one"
            )
    return arrays


def _plan_inmemory(
    request: CollectiveRequest,
    label: str,
    algorithm_fn,
    bytes_per_host: float,
    time_ns: float,
    rounds: int,
) -> PlannedExecution:
    # numpy-native: the in-memory algorithms support any numpy dtype,
    # including float64, which the switch cost model refuses.
    dtype_size = np.dtype(request.dtype).itemsize
    n_elements = max(1, int(request.nbytes) // dtype_size)

    def runner(payloads, overrides) -> CollectiveResult:
        arrays = _inmemory_payloads(
            request, payloads, n_elements, overrides.get("seed", 0)
        )
        outputs = algorithm_fn(arrays)
        if overrides.get("verify", True):
            golden = arrays[0].astype(np.float64)
            for a in arrays[1:]:
                golden = golden + a.astype(np.float64)
            np.testing.assert_allclose(
                outputs[0].astype(np.float64), golden, rtol=1e-5, atol=1e-5
            )
        return CollectiveResult(
            name=f"host-dense ({label})",
            n_hosts=request.n_hosts,
            vector_bytes=float(arrays[0].nbytes),
            time_ns=time_ns,
            traffic_bytes_hops=bytes_per_host * request.n_hosts,
            sent_bytes_per_host=bytes_per_host,
            extra={"rounds": rounds, "output": outputs[0]},
        )

    return PlannedExecution(
        runner=runner,
        setup={
            "rounds": rounds,
            "bytes_per_host": bytes_per_host,
            "elements": n_elements,
            "modeled_time_ns": time_ns,
        },
    )


@register_algorithm(
    "rabenseifner",
    caps=AlgorithmCaps(
        dense=True,
        reproducible=True,
        ops=("sum",),
        power_of_two_hosts=True,
        min_hosts=2,
        priority=20,
        description="host-based recursive halving/doubling, exact in-memory "
        "reduction with alpha-beta cost model",
    ),
)
def _plan_rabenseifner(request: CollectiveRequest) -> PlannedExecution:
    P = request.n_hosts
    k = int(math.log2(P))
    z = float(request.nbytes)
    alpha, beta = _link_model(request)
    bytes_per_host = 2.0 * (P - 1) / P * z
    time_ns = 2 * k * alpha + bytes_per_host / beta
    return _plan_inmemory(
        request, "rabenseifner", rabenseifner_allreduce, bytes_per_host,
        time_ns, rounds=2 * k,
    )


@register_algorithm(
    "recursive_doubling",
    caps=AlgorithmCaps(
        dense=True,
        reproducible=True,
        ops=("sum",),
        power_of_two_hosts=True,
        min_hosts=2,
        priority=15,
        description="host-based recursive doubling (latency-optimal, "
        "full-vector exchanges), exact in-memory reduction",
    ),
)
def _plan_recursive_doubling(request: CollectiveRequest) -> PlannedExecution:
    P = request.n_hosts
    k = int(math.log2(P))
    z = float(request.nbytes)
    alpha, beta = _link_model(request)
    bytes_per_host = k * z
    time_ns = k * (alpha + z / beta)
    return _plan_inmemory(
        request, "recursive-doubling", recursive_doubling_allreduce,
        bytes_per_host, time_ns, rounds=k,
    )


# ----------------------------------------------------------------------
# Network-schedule simulations
# ----------------------------------------------------------------------
_SIMULATION_ONLY_REASON = (
    "is a timing/traffic simulation and does not reduce payload values; "
    "pass a byte size instead, or use an executing algorithm "
    "(flare_switch, rabenseifner, recursive_doubling)"
)


def _simulation_only(request: CollectiveRequest, payloads) -> Optional[str]:
    """`payload_rejects` hook shared by all timing-only backends."""
    return _SIMULATION_ONLY_REASON


def _network_payload_rejects(
    request: CollectiveRequest, payloads
) -> Optional[str]:
    """Payload gate for the payload-capable network schedules (ring,
    flare_dense).

    Payload execution is *opt-in by naming the algorithm*: under
    ``algorithm="auto"`` these remain timing simulations, so automatic
    selection keeps preferring the switch-level / in-memory executing
    backends exactly as before.  Explicitly-named requests carry and
    bitwise-reduce real data (the differential and chaos suites drive
    this path).
    """
    if request.algorithm == "auto":
        return _SIMULATION_ONLY_REASON
    if request.sparse:
        return "sparse payload execution unsupported; pass a byte size"
    try:
        arr = np.asarray(payloads)
    except ValueError:           # ragged list: numpy >= 1.24 raises
        arr = None
    if arr is None or arr.dtype == object:
        return "payloads must stack into one dense (n_hosts, ...) array"
    return None


def _reject_payloads(name: str, payloads) -> None:
    """Timing/traffic simulations never touch payload values.

    Silently discarding user data would contradict the Communicator's
    payload contract, so refuse it loudly (defense in depth behind the
    ``payload_rejects`` hook, for direct ``plan.execute`` misuse).
    """
    if payloads is not None:
        raise ValueError(f"algorithm {name!r} {_SIMULATION_ONLY_REASON}")


@register_algorithm(
    "ring",
    payload_rejects=_network_payload_rejects,
    caps=AlgorithmCaps(
        dense=True,
        reproducible=True,
        ops=("*",),
        min_hosts=2,
        priority=10,
        description="host-based pipelined ring on the network simulator "
        "(the Fig. 15 dense baseline; any topology, any routing policy; "
        "carries and bitwise-reduces real payloads when explicitly named)",
    ),
)
def _plan_ring(request: CollectiveRequest) -> PlannedExecution:
    source = _TopologySource(request)
    p = request.params
    sub_chunk_bytes = p.get("sub_chunk_bytes", 128 * 1024)
    host_reduce = p.get("host_reduce_bytes_per_ns", 0.0)
    seg_bytes = request.nbytes / request.n_hosts
    op = request.op

    def runner(payloads, overrides) -> CollectiveResult:
        return _simulate_ring_allreduce(
            source.fresh(),
            request.nbytes,
            sub_chunk_bytes=sub_chunk_bytes,
            host_reduce_bytes_per_ns=host_reduce,
            router=source.routing,
            routing_seed=source.routing_seed,
            payloads=payloads,
            op=op,
            hosts=source.hosts,
        )

    def issuer(ctx: IssueContext, payloads, overrides) -> None:
        source.check_fabric(ctx.net)
        issue_ring_allreduce(
            ctx.net,
            request.nbytes,
            sub_chunk_bytes=sub_chunk_bytes,
            host_reduce_bytes_per_ns=host_reduce,
            flow=ctx.flow,
            base_time=ctx.net.now,
            payloads=payloads,
            op=op,
            hosts=source.hosts,
            on_complete=ctx.finish,
        )

    return PlannedExecution(
        runner=runner,
        issuer=issuer,
        setup={
            "topology": source.describe(),
            "segment_bytes": seg_bytes,
            "steps": 2 * (request.n_hosts - 1),
        },
    )


def _plan_halving(request: CollectiveRequest, variant: str) -> PlannedExecution:
    """Shared planner for the halving/doubling network schedules."""
    source = _TopologySource(request)
    p = request.params
    sub_chunk_bytes = p.get("sub_chunk_bytes", 128 * 1024)
    host_reduce = p.get("host_reduce_bytes_per_ns", 0.0)
    op = request.op
    steps = 2 * int(math.log2(request.n_hosts))

    def runner(payloads, overrides) -> CollectiveResult:
        return _simulate_halving_allreduce(
            source.fresh(),
            request.nbytes,
            variant=variant,
            sub_chunk_bytes=sub_chunk_bytes,
            host_reduce_bytes_per_ns=host_reduce,
            router=source.routing,
            routing_seed=source.routing_seed,
            payloads=payloads,
            op=op,
            hosts=source.hosts,
        )

    def issuer(ctx: IssueContext, payloads, overrides) -> None:
        source.check_fabric(ctx.net)
        issue_halving_allreduce(
            ctx.net,
            request.nbytes,
            variant=variant,
            sub_chunk_bytes=sub_chunk_bytes,
            host_reduce_bytes_per_ns=host_reduce,
            flow=ctx.flow,
            base_time=ctx.net.now,
            payloads=payloads,
            op=op,
            hosts=source.hosts,
            on_complete=ctx.finish,
        )

    return PlannedExecution(
        runner=runner,
        issuer=issuer,
        setup={
            "topology": source.describe(),
            "variant": variant,
            "steps": steps,
            "bytes_per_host": 2.0
            * (request.n_hosts - 1)
            / request.n_hosts
            * request.nbytes,
        },
    )


@register_algorithm(
    "butterfly",
    payload_rejects=_network_payload_rejects,
    caps=AlgorithmCaps(
        dense=True,
        reproducible=True,
        ops=("*",),
        power_of_two_hosts=True,
        min_hosts=2,
        priority=13,
        description="host-based recursive halving/doubling as a network "
        "schedule (2 log2(P) latency-short steps at ring byte volume; any "
        "topology; carries and bitwise-reduces real payloads when "
        "explicitly named)",
    ),
)
def _plan_butterfly(request: CollectiveRequest) -> PlannedExecution:
    return _plan_halving(request, "butterfly")


@register_algorithm(
    "swing",
    payload_rejects=_network_payload_rejects,
    caps=AlgorithmCaps(
        dense=True,
        reproducible=True,
        ops=("*",),
        power_of_two_hosts=True,
        min_hosts=2,
        priority=12,
        description="Swing allreduce (arXiv 2401.09356): halving/doubling "
        "with |1-(-2)^(s+1)|/3 partner distances, keeping every exchange "
        "short on torus-like fabrics; carries and bitwise-reduces real "
        "payloads when explicitly named",
    ),
)
def _plan_swing(request: CollectiveRequest) -> PlannedExecution:
    return _plan_halving(request, "swing")


@register_algorithm(
    "sparcml",
    payload_rejects=_simulation_only,
    caps=AlgorithmCaps(
        dense=False,
        sparse=True,
        ops=("sum",),
        power_of_two_hosts=True,
        min_hosts=2,
        priority=30,
        description="SparCML split sparse allreduce (SSAR halving/doubling) "
        "on the network simulator (any topology, any routing policy)",
    ),
)
def _plan_sparcml(request: CollectiveRequest) -> PlannedExecution:
    source = _TopologySource(request)
    p = request.params
    total_elements = request.total_elements
    bucket_span = p.get("bucket_span", 512)
    nnz_per_bucket = p.get("nnz_per_bucket", 1.0)
    dense_switch = p.get("dense_switch", True)
    host_reduce = p.get("host_reduce_bytes_per_ns", 2.5)
    round_bytes = sparcml_round_bytes(
        request.n_hosts, total_elements, bucket_span, nnz_per_bucket, dense_switch
    )

    def runner(payloads, overrides) -> CollectiveResult:
        _reject_payloads("sparcml", payloads)
        return _simulate_sparcml_allreduce(
            source.fresh(),
            total_elements,
            bucket_span=bucket_span,
            nnz_per_bucket=nnz_per_bucket,
            dense_switch=dense_switch,
            host_reduce_bytes_per_ns=host_reduce,
            round_bytes=round_bytes,
            router=source.routing,
            routing_seed=source.routing_seed,
            hosts=source.hosts,
        )

    def issuer(ctx: IssueContext, payloads, overrides) -> None:
        _reject_payloads("sparcml", payloads)
        source.check_fabric(ctx.net)
        issue_sparcml_allreduce(
            ctx.net,
            total_elements,
            bucket_span=bucket_span,
            nnz_per_bucket=nnz_per_bucket,
            dense_switch=dense_switch,
            host_reduce_bytes_per_ns=host_reduce,
            round_bytes=round_bytes,
            flow=ctx.flow,
            base_time=ctx.net.now,
            hosts=source.hosts,
            on_complete=ctx.finish,
        )

    return PlannedExecution(
        runner=runner,
        issuer=issuer,
        setup={
            "topology": source.describe(),
            "rounds": len(round_bytes),
            "round_bytes": round_bytes,
        },
    )


@register_algorithm(
    "flare_dense",
    payload_rejects=_network_payload_rejects,
    caps=AlgorithmCaps(
        dense=True,
        in_network=True,
        ops=("*",),
        min_hosts=2,
        topologies=TREE_PLANNABLE,
        priority=40,
        description="Flare in-network dense allreduce on the network "
        "simulator (each host sends/receives Z once; aggregation tree "
        "planned over any topology; carries and bitwise-reduces real "
        "payloads when explicitly named)",
    ),
)
def _plan_flare_dense(request: CollectiveRequest) -> PlannedExecution:
    source = _TopologySource(request)
    p = request.params
    chunk_bytes = p.get("chunk_bytes", 1024 * 1024)
    agg_latency = p.get("agg_latency_ns_per_chunk", 2000.0)
    tree = source.plan_tree(request)
    atree = as_aggregation_tree(tree, source.shape)
    op = request.op

    def runner(payloads, overrides) -> CollectiveResult:
        return _simulate_flare_dense_allreduce(
            source.fresh(),
            request.nbytes,
            chunk_bytes=chunk_bytes,
            agg_latency_ns_per_chunk=agg_latency,
            tree=tree,
            router=source.routing,
            routing_seed=source.routing_seed,
            payloads=payloads,
            op=op,
        )

    def issuer(ctx: IssueContext, payloads, overrides) -> None:
        source.check_fabric(ctx.net)
        issue_flare_dense_allreduce(
            ctx.net,
            request.nbytes,
            chunk_bytes=chunk_bytes,
            agg_latency_ns_per_chunk=agg_latency,
            tree=tree,
            flow=ctx.flow,
            base_time=ctx.net.now,
            payloads=payloads,
            op=op,
            on_complete=ctx.finish,
        )

    return PlannedExecution(
        runner=runner,
        issuer=issuer,
        setup={
            "topology": source.describe(),
            "tree_root": atree.root,
            "tree_depth": atree.depth(),
            "tree_switches": list(atree.switches()),
            "tree_links": [tuple(edge) for edge in atree.tree_links()],
            "root_fan_in": atree.fan_in(atree.root),
            "n_chunks": max(1, int(round(request.nbytes / chunk_bytes))),
        },
    )


@register_algorithm(
    "flare_sparse",
    payload_rejects=_simulation_only,
    caps=AlgorithmCaps(
        dense=False,
        sparse=True,
        in_network=True,
        ops=("sum",),
        min_hosts=2,
        topologies=TREE_PLANNABLE,
        priority=45,
        description="Flare in-network sparse allreduce on the network "
        "simulator with level-by-level densification along a planned "
        "aggregation tree",
    ),
)
def _plan_flare_sparse(request: CollectiveRequest) -> PlannedExecution:
    source = _TopologySource(request)
    p = request.params
    total_elements = request.total_elements
    bucket_span = p.get("bucket_span", 512)
    nnz_per_bucket = p.get("nnz_per_bucket", 1.0)
    n_chunks = p.get("n_chunks", 64)
    agg_latency = p.get("agg_latency_ns_per_chunk", 4000.0)
    shape = source.shape
    tree = source.plan_tree(request)
    atree = as_aggregation_tree(tree, shape)
    level_bytes = p.get("level_bytes")
    if level_bytes is None:
        host_bytes, up_bytes = sparse_tree_bytes(
            atree, total_elements, bucket_span, nnz_per_bucket
        )

    def runner(payloads, overrides) -> CollectiveResult:
        _reject_payloads("flare_sparse", payloads)
        return _simulate_flare_sparse_allreduce(
            source.fresh(),
            total_elements,
            bucket_span=bucket_span,
            nnz_per_bucket=nnz_per_bucket,
            n_chunks=n_chunks,
            agg_latency_ns_per_chunk=agg_latency,
            level_bytes=level_bytes,
            tree=tree,
            router=source.routing,
            routing_seed=source.routing_seed,
        )

    def issuer(ctx: IssueContext, payloads, overrides) -> None:
        _reject_payloads("flare_sparse", payloads)
        source.check_fabric(ctx.net)
        issue_flare_sparse_allreduce(
            ctx.net,
            total_elements,
            bucket_span=bucket_span,
            nnz_per_bucket=nnz_per_bucket,
            n_chunks=n_chunks,
            agg_latency_ns_per_chunk=agg_latency,
            level_bytes=level_bytes,
            tree=tree,
            flow=ctx.flow,
            base_time=ctx.net.now,
            on_complete=ctx.finish,
        )

    return PlannedExecution(
        runner=runner,
        issuer=issuer,
        setup={
            "topology": source.describe(),
            "tree_root": atree.root,
            "tree_depth": atree.depth(),
            "tree_switches": list(atree.switches()),
            "tree_links": [tuple(edge) for edge in atree.tree_links()],
            "host_bytes": level_bytes[0] if level_bytes is not None else host_bytes,
            "root_bytes": level_bytes[2] if level_bytes is not None
            else up_bytes[atree.root],
        },
    )


# ----------------------------------------------------------------------
# Switch-level PsPIN drivers
# ----------------------------------------------------------------------
def _pick(overrides: dict, keys: tuple[str, ...]) -> dict:
    return {k: overrides[k] for k in keys if k in overrides}


def _switch_payload_rejects(
    request: CollectiveRequest, payloads
) -> Optional[str]:
    """Can the PsPIN switch path execute these concrete payloads?

    The switch streams whole packets, so per-host data must divide
    into ``elements_per_packet`` chunks and use a dtype the cost model
    prices.  Auto selection falls through to a host-based executing
    algorithm when this rejects.
    """
    try:
        dt = get_dtype(request.dtype)
    except ValueError as exc:
        return str(exc)
    packet_bytes = request.params.get("packet_bytes", 1024)
    epp = max(1, packet_bytes // dt.size_bytes)
    arr = np.asarray(payloads)
    if arr.ndim == 3:
        if arr.shape[2] != epp:
            return (
                f"payload packets carry {arr.shape[2]} elements; switch "
                f"packets of {packet_bytes} B {request.dtype} carry {epp}"
            )
        return None
    per_host = arr[0].size
    if per_host % epp:
        return (
            f"per-host payload of {per_host} elements does not divide "
            f"into whole {epp}-element packets"
        )
    return None


@register_algorithm(
    "flare_switch",
    payload_rejects=_switch_payload_rejects,
    caps=AlgorithmCaps(
        dense=True,
        in_network=True,
        reproducible=True,
        ops=("*",),
        custom_ops=True,
        min_hosts=1,
        priority=50,
        description="switch-level dense allreduce on the PsPIN behavioral "
        "model (paper Secs. 4-6; reproducible via tree aggregation, any "
        "operator via sPIN handlers)",
    ),
)
def _plan_flare_switch(request: CollectiveRequest) -> PlannedExecution:
    p = request.params
    splan = plan_switch_allreduce(
        int(request.nbytes),
        children=request.n_hosts,
        algorithm=p.get("aggregation"),
        dtype=request.dtype,
        n_clusters=p.get("n_clusters", 4),
        cores_per_cluster=p.get("cores_per_cluster", 8),
        subset_size=p.get("subset_size"),
        scheduler=p.get("scheduler", "hierarchical"),
        staggered=p.get("staggered", True),
        reproducible=request.reproducible,
        op=request.op,
        cost_model=p.get("cost_model"),
        packet_bytes=p.get("packet_bytes", 1024),
    )
    clock_ghz = splan.flare_cfg.cost_model.clock_ghz

    def runner(payloads: Optional[np.ndarray], overrides) -> CollectiveResult:
        r = splan.execute(
            data=payloads,
            **_pick(overrides, ("seed", "jitter", "cold_start", "verify")),
        )
        return CollectiveResult(
            name=f"Flare switch ({r.algorithm})",
            n_hosts=request.n_hosts,
            vector_bytes=float(r.data_bytes),
            time_ns=r.makespan_cycles / clock_ghz,
            # One switch: ingress is the only wire segment modeled.
            traffic_bytes_hops=float(r.data_bytes) * request.n_hosts,
            sent_bytes_per_host=float(r.data_bytes),
            extra={
                "bandwidth_tbps": r.bandwidth_tbps,
                "elements_per_second": r.elements_per_second,
                "makespan_cycles": r.makespan_cycles,
                "outputs": r.outputs,
            },
            raw=r,
        )

    return PlannedExecution(runner=runner, setup=splan.describe())


@register_algorithm(
    "flare_switch_sparse",
    payload_rejects=_simulation_only,
    caps=AlgorithmCaps(
        dense=False,
        sparse=True,
        in_network=True,
        ops=("sum",),
        min_hosts=1,
        priority=35,
        description="switch-level sparse allreduce on the PsPIN behavioral "
        "model (paper Sec. 7; hash or array storage, spill accounting)",
    ),
)
def _plan_flare_switch_sparse(request: CollectiveRequest) -> PlannedExecution:
    p = request.params
    kwargs = dict(
        density=request.density,
        storage=p.get("storage", "hash"),
        children=request.n_hosts,
        n_clusters=p.get("n_clusters", 4),
        cores_per_cluster=p.get("cores_per_cluster", 8),
        dtype=request.dtype,
        correlation=p.get("correlation", 0.0),
        packet_bytes=p.get("packet_bytes", 1024),
        hash_slots_factor=p.get("hash_slots_factor", 4.0),
        cost_model=p.get("cost_model"),
        workload=p.get("workload"),
    )
    clock_ghz = (kwargs["cost_model"] or CostModel()).clock_ghz

    def runner(payloads, overrides) -> CollectiveResult:
        _reject_payloads("flare_switch_sparse", payloads)
        r = _run_sparse_switch_allreduce(
            int(request.nbytes),
            **kwargs,
            **_pick(overrides, ("seed", "jitter", "verify")),
        )
        time_ns = r.makespan_cycles / clock_ghz
        return CollectiveResult(
            name=f"Flare switch sparse ({r.storage})",
            n_hosts=request.n_hosts,
            vector_bytes=float(request.nbytes) / request.density
            * DENSE_ELEMENT_BYTES / 8.0,
            time_ns=time_ns,
            traffic_bytes_hops=float(
                r.ingress_payload_bytes + r.egress_payload_bytes
            ),
            sent_bytes_per_host=float(request.nbytes),
            extra={
                "bandwidth_tbps": r.bandwidth_tbps,
                "feasible": r.feasible,
                "block_memory_bytes": r.block_memory_bytes,
                "extra_traffic_pct": r.extra_traffic_pct,
            },
            raw=r,
        )

    return PlannedExecution(
        runner=runner,
        setup={
            "storage": kwargs["storage"],
            "density": request.density,
            "children": request.n_hosts,
            "sim_clusters": kwargs["n_clusters"],
        },
    )
