"""Futures for non-blocking collectives — simulation-native.

``Communicator.iallreduce`` returns a :class:`CollectiveFuture`
immediately; the collective's events are *issued* into the owning
:class:`~repro.comm.fabric.Fabric`'s single discrete-event loop, where
in-flight collectives from every attached tenant interleave and contend
for links and switch resources.  ``future.result()`` drives that shared
loop until the collective completes — no worker threads, no private
simulations, the NCCL/torch.distributed ``async_op`` usage pattern on
top of one fabric-wide clock.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.collectives.result import CollectiveResult
from repro.comm.registry import CommError
from repro.comm.request import CollectiveRequest


class CollectiveError(CommError):
    """A waited-on collective failed.

    Carries the failing request's context — :attr:`index` into the
    waited sequence, :attr:`algorithm`, and the :attr:`request` (shape,
    host count, operator) — with the original failure chained as
    ``__cause__``.
    """

    index: Optional[int] = None
    algorithm: Optional[str] = None
    request: Optional[CollectiveRequest] = None


class CollectiveFuture:
    """Handle to one in-flight collective on a fabric.

    ``timeout`` parameters are accepted for API familiarity but carry
    no meaning: completion is a simulation event, reached by driving
    the fabric's event loop, not by waiting wall-clock time.
    """

    def __init__(
        self,
        request: CollectiveRequest,
        algorithm: str,
        *,
        fabric=None,
        tenant: Optional[str] = None,
        flow: object = None,
    ) -> None:
        self.request = request
        self.algorithm = algorithm
        self.tenant = tenant
        self.flow = flow
        self._fabric = fabric
        self._done = False
        self._result: Optional[CollectiveResult] = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["CollectiveFuture"], None]] = []
        #: For atomically-executed plans: the fabric time this
        #: collective's modeled run finishes (``result()`` advances the
        #: clock there, releasing held switch resources on the way).
        self._settle_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Completion (called by the fabric, inside the event loop)
    # ------------------------------------------------------------------
    def _settle(
        self,
        result: Optional[CollectiveResult] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        if self._done:
            raise RuntimeError("future already settled")
        self._done = True
        self._result = result
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def result(self, timeout: Optional[float] = None) -> CollectiveResult:
        """Drive the fabric until this collective completes; return its
        result (re-raising its failure, if any)."""
        if not self._done and self._fabric is not None:
            self._fabric.run_until(self)
        if (
            self._settle_time is not None
            and self._fabric is not None
            and self._fabric.now < self._settle_time
        ):
            self._fabric.run(until=self._settle_time)
        if not self._done:
            raise CollectiveError(
                f"collective {self.algorithm!r} was never issued into a "
                "fabric and cannot complete"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def wait(self, timeout: Optional[float] = None) -> "CollectiveFuture":
        """MPI-style wait; returns self for chaining."""
        self.result(timeout=timeout)
        return self

    def done(self) -> bool:
        return self._done

    def running(self) -> bool:
        return not self._done

    def cancel(self) -> bool:
        """Issued events cannot be recalled from the loop; always False."""
        return False

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._done and self._fabric is not None:
            self._fabric.run_until(self)
        return self._exception

    def add_done_callback(self, fn: Callable[["CollectiveFuture"], None]) -> None:
        """Run ``fn(self)`` on completion (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)


def _context_error(index: int, future: CollectiveFuture, exc: BaseException) -> CollectiveError:
    req = future.request
    err = CollectiveError(
        f"collective #{index} failed: algorithm={future.algorithm!r}, "
        f"shape={int(req.nbytes)} B x {req.n_hosts} hosts, "
        f"op={req.op_name!r}"
        + (f", tenant={future.tenant!r}" if future.tenant else "")
        + f" ({exc})"
    )
    err.index = index
    err.algorithm = future.algorithm
    err.request = req
    return err


def wait_all(
    futures: Sequence[CollectiveFuture], timeout: Optional[float] = None
) -> list[CollectiveResult]:
    """Wait for every future (issue order) and return their results.

    A failure re-raises as :class:`CollectiveError` carrying the
    failing request's algorithm and shape, with the original exception
    chained as ``__cause__``.
    """
    results: list[CollectiveResult] = []
    for i, f in enumerate(futures):
        try:
            results.append(f.result(timeout=timeout))
        except Exception as exc:
            raise _context_error(i, f, exc) from exc
    return results


def wait_any(
    futures: Sequence[CollectiveFuture], timeout: Optional[float] = None
) -> tuple[int, CollectiveResult]:
    """Drive until *some* collective completes; return (index, result).

    Completion order is simulation order: the future whose finishing
    event fires first wins, which under contention is genuinely
    workload-dependent (unlike issue order).  Failures carry the same
    context as :func:`wait_all`.
    """
    if not futures:
        raise ValueError("wait_any() needs at least one future")
    while True:
        for i, f in enumerate(futures):
            if f.done():
                try:
                    return i, f.result(timeout=timeout)
                except Exception as exc:
                    raise _context_error(i, f, exc) from exc
        progressed = False
        stepped: set[int] = set()
        for f in futures:
            if f.done() or f._fabric is None or id(f._fabric) in stepped:
                continue
            stepped.add(id(f._fabric))
            if f._fabric.step():
                progressed = True
                break
        if not progressed:
            raise CollectiveError(
                "wait_any(): no pending future can make progress "
                "(event loops drained or futures never issued)"
            )
