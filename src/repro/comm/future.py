"""Futures for non-blocking collectives.

``Communicator.iallreduce`` returns a :class:`CollectiveFuture`
immediately; the collective executes on the communicator's worker pool,
so several collectives can be issued back to back and overlapped —
the NCCL/torch.distributed ``async_op`` usage pattern.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Optional, Sequence

from repro.collectives.result import CollectiveResult
from repro.comm.request import CollectiveRequest


class CollectiveFuture:
    """Handle to one in-flight collective."""

    def __init__(
        self,
        inner: concurrent.futures.Future,
        request: CollectiveRequest,
        algorithm: str,
    ) -> None:
        self._inner = inner
        self.request = request
        self.algorithm = algorithm

    def result(self, timeout: Optional[float] = None) -> CollectiveResult:
        """Block until the collective completes and return its result."""
        return self._inner.result(timeout=timeout)

    def wait(self, timeout: Optional[float] = None) -> "CollectiveFuture":
        """MPI-style wait; returns self for chaining."""
        self._inner.result(timeout=timeout)
        return self

    def done(self) -> bool:
        return self._inner.done()

    def running(self) -> bool:
        return self._inner.running()

    def cancel(self) -> bool:
        return self._inner.cancel()

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        return self._inner.exception(timeout=timeout)

    def add_done_callback(self, fn: Callable[["CollectiveFuture"], None]) -> None:
        self._inner.add_done_callback(lambda _f: fn(self))


def wait_all(
    futures: Sequence[CollectiveFuture], timeout: Optional[float] = None
) -> list[CollectiveResult]:
    """Wait for every future (issue order) and return their results."""
    return [f.result(timeout=timeout) for f in futures]
