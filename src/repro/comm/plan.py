"""Plan/execute separation and the LRU plan cache.

Planning — algorithm resolution, topology shaping, tree construction,
handler selection, message sizing — happens once per request *shape*;
execution happens per collective.  :class:`PlanCache` keys plans on
:meth:`CollectiveRequest.signature`, which folds in the *topology
fingerprint* (family + parameters): two equal-but-distinct topology
objects share one plan, while changing the wiring or the routing
policy replans.  The production steady state (the same allreduce
issued every training iteration) pays the planning cost exactly once
and every later call goes straight to the data plane.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Optional

from repro.collectives.result import CollectiveResult
from repro.comm.registry import AlgorithmCaps, AlgorithmEntry
from repro.comm.request import CollectiveRequest

#: ``runner(payloads, overrides) -> CollectiveResult`` — the execute-time
#: closure a planner returns; ``overrides`` carries per-execution knobs
#: (seed, jitter, verify, ...) that do not affect the plan.
Runner = Callable[[Optional[object], dict], CollectiveResult]


@dataclass
class IssueContext:
    """Execution context for a collective issued into a shared fabric.

    ``net`` is the fabric's shared :class:`NetworkSimulator`; ``flow``
    is the id the collective's messages carry (link arbitration and
    per-tenant traffic accounting key on it); ``finish(result)`` must
    be called exactly once, from inside the event loop, when the
    collective completes.
    """

    net: object
    flow: object
    finish: Callable[[CollectiveResult], None]


#: ``issuer(ctx, payloads, overrides) -> None`` — injects one
#: collective's events into ``ctx.net`` starting at ``ctx.net.now`` and
#: arranges for ``ctx.finish(result)`` when it completes.  Planners of
#: event-driven network schedules provide it; planners whose execution
#: is a closed-form model or a self-contained switch simulation leave
#: it None and the fabric falls back to atomic execution.
Issuer = Callable[[IssueContext, Optional[object], dict], None]


@dataclass
class PlannedExecution:
    """What a planner hands back: a runner plus setup metadata."""

    runner: Runner
    setup: dict = field(default_factory=dict)
    issuer: Optional[Issuer] = None


@dataclass
class CollectivePlan:
    """A planned collective, executable many times.

    ``setup`` records what planning decided (tree shape, handler,
    per-round sizes, memory estimates) for introspection; ``executions``
    counts data-plane runs of this plan.
    """

    request: CollectiveRequest
    algorithm: str
    caps: AlgorithmCaps
    setup: dict
    _planned: PlannedExecution
    executions: int = 0

    def execute(self, payloads: Optional[object] = None, **overrides) -> CollectiveResult:
        """Run the collective once; planning work is *not* repeated."""
        result = self._planned.runner(payloads, overrides)
        result.algorithm = self.algorithm
        result.op = self.request.op_name
        self.executions += 1
        return result

    @property
    def supports_issue(self) -> bool:
        """Whether this plan can interleave inside a shared fabric loop."""
        return self._planned.issuer is not None

    def issue(
        self, ctx: IssueContext, payloads: Optional[object] = None, **overrides
    ) -> None:
        """Inject one execution into a shared event loop (fabric path).

        ``ctx.finish`` receives the stamped result when the collective
        completes; planning work is *not* repeated.
        """
        if self._planned.issuer is None:
            raise TypeError(
                f"algorithm {self.algorithm!r} does not support fabric issue"
            )
        caller_finish = ctx.finish

        def finish(result: CollectiveResult) -> None:
            result.algorithm = self.algorithm
            result.op = self.request.op_name
            self.executions += 1
            caller_finish(result)

        self._planned.issuer(
            IssueContext(net=ctx.net, flow=ctx.flow, finish=finish),
            payloads,
            overrides,
        )

    def describe(self) -> str:
        lines = [f"plan: {self.algorithm} ({self.caps.description or 'no description'})"]
        for key, value in sorted(self.setup.items()):
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def build_plan(request: CollectiveRequest, entry: AlgorithmEntry) -> CollectivePlan:
    """Invoke ``entry``'s planner on ``request`` (the expensive step)."""
    planned = entry.planner(request)
    return CollectivePlan(
        request=request,
        algorithm=entry.name,
        caps=entry.caps,
        setup=dict(planned.setup),
        _planned=planned,
    )


class CacheInfo(NamedTuple):
    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int


class PlanCache:
    """Thread-safe LRU cache of :class:`CollectivePlan` by request shape."""

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._plans: OrderedDict[tuple, CollectivePlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(
        self, key: tuple, factory: Callable[[], CollectivePlan]
    ) -> CollectivePlan:
        """Return the cached plan for ``key``, building it on a miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
        # Build outside the lock: planning may be slow, and concurrent
        # misses on the same key just do the work twice (last one wins).
        plan = factory()
        with self._lock:
            self.misses += 1
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                currsize=len(self._plans),
                maxsize=self.maxsize,
            )

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
