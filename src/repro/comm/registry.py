"""Algorithm registry with declared capabilities.

Every allreduce implementation in the repository — host-based in-memory
algorithms, network-schedule simulations, and the switch-level PsPIN
drivers — registers here under a stable name with an
:class:`AlgorithmCaps` declaration.  ``algorithm="auto"`` requests are
resolved by *capability matching*: filter the registry down to entries
that support the request (dense/sparse, operator, reproducibility,
host-count constraints), then pick the highest-priority survivor.  This
generalizes the Sec. 6.4 size ladder of
:func:`repro.core.policy.select_algorithm` — which still picks the
aggregation *design* inside the switch-level backend — up to the level
of whole collectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.comm.request import CollectiveRequest
from repro.network import topologies as _topologies  # noqa: F401  (registers families)
from repro.network.routing import available_routers
from repro.network.topology import available_topologies


class CommError(Exception):
    """Base error of the communicator layer."""


class UnknownAlgorithmError(CommError, KeyError):
    """Requested algorithm name is not registered."""

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0] if self.args else ""


class CapabilityError(CommError):
    """No registered algorithm (or the named one) supports the request."""


@dataclass(frozen=True)
class AlgorithmCaps:
    """Declared capabilities of one registered algorithm.

    ``ops`` lists supported built-in operator names, with ``"*"``
    meaning every built-in; ``custom_ops`` additionally admits
    user-defined :class:`~repro.core.ops.ReductionOp` handlers (F1).
    ``topologies`` lists the wiring families the algorithm's schedule
    understands (``"*"`` = any routable topology); in-network
    algorithms additionally require the fabric's switches to be
    aggregation-capable.  ``priority`` ranks candidates during
    ``auto`` selection (higher wins); in-network algorithms outrank
    host-based ones, mirroring the paper's wire-efficiency argument.
    """

    dense: bool = True
    sparse: bool = False
    in_network: bool = False
    reproducible: bool = False
    ops: tuple[str, ...] = ("sum",)
    custom_ops: bool = False
    power_of_two_hosts: bool = False
    min_hosts: int = 1
    topologies: tuple[str, ...] = ("*",)
    priority: int = 0
    description: str = ""

    def rejects(self, request: CollectiveRequest) -> Optional[str]:
        """Why this algorithm cannot serve ``request`` (None = it can)."""
        if request.sparse and not self.sparse:
            return "sparse payloads unsupported"
        if not request.sparse and not self.dense:
            return "dense payloads unsupported"
        family = request.topology_family
        topo_param = request.params.get("topology")
        if (
            topo_param is None or isinstance(topo_param, str)
        ) and family not in available_topologies():
            # Checked here, not just in the topology-building backends,
            # so a typo'd family name cannot slide through to an
            # algorithm (e.g. the single-switch PsPIN path) that never
            # builds the fabric and would silently ignore it.  Explicit
            # Topology objects skip this: custom subclasses are fine.
            return (
                f"unknown topology family {family!r}; "
                f"available: {available_topologies()}"
            )
        routing = request.params.get("routing")
        if routing is not None and routing not in available_routers():
            return (
                f"unknown routing policy {routing!r}; "
                f"available: {available_routers()}"
            )
        if "*" not in self.topologies and family not in self.topologies:
            return f"topology family {family!r} unsupported"
        if self.in_network and not request.topology_aggregates:
            return (
                "needs in-network aggregation but the topology's switches "
                "cannot aggregate (aggregation=False)"
            )
        if request.reproducible and not self.reproducible:
            return "cannot guarantee bitwise reproducibility"
        if request.custom_op:
            if not self.custom_ops:
                return f"custom operator {request.op_name!r} unsupported"
        elif "*" not in self.ops and request.op_name not in self.ops:
            return f"operator {request.op_name!r} unsupported"
        if request.n_hosts < self.min_hosts:
            return f"needs at least {self.min_hosts} hosts"
        if self.power_of_two_hosts and request.n_hosts & (request.n_hosts - 1):
            return "needs a power-of-two host count"
        return None


@dataclass(frozen=True)
class AlgorithmEntry:
    """A registered algorithm: name, capabilities, planner."""

    name: str
    caps: AlgorithmCaps
    #: ``planner(request) -> PlannedExecution`` — performs all one-time
    #: setup (tree construction, handler selection, message sizing).
    planner: Callable[[CollectiveRequest], "object"]
    #: Optional ``(request, payloads) -> reason | None`` — why this
    #: algorithm cannot execute the given concrete payloads (shape or
    #: dtype constraints the declarative caps cannot express).  ``None``
    #: means payloads are accepted; entries without a hook accept any.
    payload_rejects: Optional[
        Callable[[CollectiveRequest, object], Optional[str]]
    ] = None


_REGISTRY: dict[str, AlgorithmEntry] = {}


def register_algorithm(
    name: str,
    *,
    caps: AlgorithmCaps,
    payload_rejects: Optional[Callable] = None,
) -> Callable:
    """Decorator registering a planner function as algorithm ``name``.

    Usage::

        @register_algorithm("ring", caps=AlgorithmCaps(...))
        def plan_ring(request: CollectiveRequest) -> PlannedExecution:
            ...
    """

    def decorate(planner: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} is already registered")
        _REGISTRY[name] = AlgorithmEntry(
            name=name, caps=caps, planner=planner, payload_rejects=payload_rejects
        )
        return planner

    return decorate


def unregister_algorithm(name: str) -> None:
    """Remove a registration (mainly for tests)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmEntry:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; registered: {available_algorithms()}"
        ) from None


def available_algorithms() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def iter_algorithms() -> Iterator[AlgorithmEntry]:
    for name in available_algorithms():
        yield _REGISTRY[name]


def match_algorithms(request: CollectiveRequest) -> list[AlgorithmEntry]:
    """Entries that support ``request``, best (highest priority) first."""
    matches = [e for e in _REGISTRY.values() if e.caps.rejects(request) is None]
    matches.sort(key=lambda e: (-e.caps.priority, e.name))
    return matches


def rejection_reasons(request: CollectiveRequest) -> dict[str, str]:
    """name -> why it was rejected, for every non-matching entry."""
    out = {}
    for entry in iter_algorithms():
        reason = entry.caps.rejects(request)
        if reason is not None:
            out[entry.name] = reason
    return out


#: Auto-selection strategies.  ``request.params["auto_mode"]`` names
#: one; ``"static"`` (the default, built in) is the original priority
#: sort.  A selector receives the request plus the capability- and
#: payload-accepted candidates in static priority order (never empty)
#: and returns its pick; it may write tuned knobs (chunk sizes, tree
#: root) into ``request.params`` — the plan-cache key is computed from
#: the request *after* resolution, so tuned knobs key the cache.
DEFAULT_AUTO_MODE = "static"
_AUTO_SELECTORS: dict[str, Callable] = {}


def register_auto_selector(
    name: str,
    selector: Callable[[CollectiveRequest, list[AlgorithmEntry]], AlgorithmEntry],
) -> None:
    """Register an ``auto_mode`` selection strategy under ``name``."""
    if name == DEFAULT_AUTO_MODE or name in _AUTO_SELECTORS:
        raise ValueError(f"auto_mode {name!r} is already registered")
    _AUTO_SELECTORS[name] = selector


def available_auto_modes() -> tuple[str, ...]:
    return tuple(sorted({DEFAULT_AUTO_MODE, *_AUTO_SELECTORS}))


def resolve(
    request: CollectiveRequest, payloads: Optional[object] = None
) -> AlgorithmEntry:
    """Pick the algorithm serving ``request``.

    An explicit ``request.algorithm`` is validated against its declared
    capabilities; ``"auto"`` runs capability matching and hands the
    surviving candidates to the selection strategy named by
    ``request.params["auto_mode"]`` (default ``"static"``: the
    highest-priority candidate; ``"cost"``: the fitted cost model of
    :mod:`repro.comm.planner`).  When concrete ``payloads`` accompany
    the request, each candidate's ``payload_rejects`` hook is consulted
    too, so auto selection never lands on an algorithm that cannot
    execute the actual data (wrong shape/dtype, or simulation-only).
    """
    if request.algorithm != "auto":
        entry = get_algorithm(request.algorithm)
        reason = entry.caps.rejects(request)
        if reason is None and payloads is not None and entry.payload_rejects:
            reason = entry.payload_rejects(request, payloads)
        if reason is not None:
            raise CapabilityError(
                f"algorithm {entry.name!r} cannot serve this request: {reason}"
            )
        return entry
    mode = request.params.get("auto_mode", DEFAULT_AUTO_MODE)
    if mode != DEFAULT_AUTO_MODE and mode not in _AUTO_SELECTORS:
        raise CommError(
            f"unknown auto_mode {mode!r}; available: {available_auto_modes()}"
        )
    candidates: list[AlgorithmEntry] = []
    payload_rejected: dict[str, str] = {}
    for entry in match_algorithms(request):
        if payloads is not None and entry.payload_rejects:
            reason = entry.payload_rejects(request, payloads)
            if reason is not None:
                payload_rejected[entry.name] = reason
                continue
        candidates.append(entry)
    if candidates:
        if mode == DEFAULT_AUTO_MODE:
            return candidates[0]
        return _AUTO_SELECTORS[mode](request, candidates)
    # Combined failure detail: a candidate that matched capabilities
    # but refused the concrete payloads must report its payload
    # verdict — the more specific diagnosis — never be shadowed by (or
    # merged with) a capability line for the same algorithm.
    reasons = {
        name: reason
        for name, reason in rejection_reasons(request).items()
        if name not in payload_rejected
    }
    reasons.update(payload_rejected)
    detail = "; ".join(f"{n}: {r}" for n, r in sorted(reasons.items()))
    raise CapabilityError(f"no registered algorithm supports this request ({detail})")
