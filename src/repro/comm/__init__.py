"""repro.comm — the unified communicator API.

The library's primary entry point: an algorithm registry with declared
capabilities, plan/execute separation with an LRU plan cache, and the
:class:`Communicator` facade with blocking (``allreduce``) and
non-blocking (``iallreduce``) collectives.

Importing this package registers every built-in algorithm::

    from repro.comm import Communicator

    comm = Communicator(n_hosts=16)
    print(comm.allreduce("256KiB").summary())

Legacy per-algorithm entry points (``run_switch_allreduce``,
``simulate_*_allreduce``) remain as deprecation shims that delegate
here via :func:`legacy_execute`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.collectives.result import CollectiveResult
from repro.comm.communicator import (
    Communicator,
    EXECUTE_KEYS,
    resolve_topology_hosts,
)
from repro.comm.fabric import (
    TIMELINE_SCHEMA_VERSION,
    Fabric,
    FabricError,
    load_timeline,
)
from repro.comm.future import (
    CollectiveError,
    CollectiveFuture,
    wait_all,
    wait_any,
)
from repro.comm.plan import (
    CacheInfo,
    CollectivePlan,
    IssueContext,
    PlanCache,
    PlannedExecution,
    build_plan,
)
from repro.core.manager import AdmissionError
from repro.network.faults import FaultSchedule, FaultSpec
from repro.comm.registry import (
    AlgorithmCaps,
    AlgorithmEntry,
    CapabilityError,
    CommError,
    DEFAULT_AUTO_MODE,
    UnknownAlgorithmError,
    available_algorithms,
    available_auto_modes,
    get_algorithm,
    iter_algorithms,
    match_algorithms,
    register_algorithm,
    register_auto_selector,
    rejection_reasons,
    resolve,
    unregister_algorithm,
)
from repro.comm.request import CollectiveRequest
from repro.core.ops import ReductionOp

# Importing the backends populates the registry with the built-ins;
# the planner registers the "cost" auto_mode selector on top of them.
import repro.comm.backends  # noqa: F401  (import for side effect)
import repro.comm.planner   # noqa: F401  (import for side effect)


def legacy_execute(
    algorithm: str,
    *,
    nbytes: Union[int, float, str],
    n_hosts: int,
    op: Union[str, ReductionOp] = "sum",
    dtype: str = "float32",
    reproducible: bool = False,
    sparse: bool = False,
    density: float = 1.0,
    params: Optional[dict] = None,
    payloads: Optional[object] = None,
    execute_args: Optional[dict] = None,
) -> CollectiveResult:
    """One-shot plan+execute used by the deprecation shims.

    Bypasses capability validation and the plan cache: legacy call
    sites already chose their algorithm and execute exactly once.
    """
    request = CollectiveRequest(
        nbytes=nbytes,
        n_hosts=n_hosts,
        op=op,
        dtype=dtype,
        algorithm=algorithm,
        reproducible=reproducible,
        sparse=sparse,
        density=density,
        params=dict(params or {}),
    )
    plan = build_plan(request, get_algorithm(algorithm))
    return plan.execute(payloads, **(execute_args or {}))


__all__ = [
    "AdmissionError",
    "Communicator",
    "CollectiveError",
    "CollectiveRequest",
    "CollectiveResult",
    "CollectivePlan",
    "CollectiveFuture",
    "Fabric",
    "FabricError",
    "TIMELINE_SCHEMA_VERSION",
    "load_timeline",
    "FaultSpec",
    "FaultSchedule",
    "IssueContext",
    "PlanCache",
    "PlannedExecution",
    "CacheInfo",
    "AlgorithmCaps",
    "AlgorithmEntry",
    "CommError",
    "UnknownAlgorithmError",
    "CapabilityError",
    "register_algorithm",
    "register_auto_selector",
    "available_auto_modes",
    "DEFAULT_AUTO_MODE",
    "unregister_algorithm",
    "get_algorithm",
    "available_algorithms",
    "iter_algorithms",
    "match_algorithms",
    "rejection_reasons",
    "resolve",
    "build_plan",
    "legacy_execute",
    "resolve_topology_hosts",
    "wait_all",
    "wait_any",
    "EXECUTE_KEYS",
]
