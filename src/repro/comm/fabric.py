"""Shared-fabric execution: concurrent collectives, one event loop.

A :class:`Fabric` owns the physical substrate every collective runs
over — the topology (with its live link state), the routing policy, the
pooled switch resources of the Sec. 4 control plane, and a single
discrete-event clock (the PsPIN :class:`~repro.pspin.engine.Simulator`,
reused as the fabric-wide timebase).  Any number of
:class:`~repro.comm.communicator.Communicator` tenants attach via
:meth:`Fabric.communicator`::

    fabric = Fabric(n_hosts=16, n_spines=1)           # oversubscribed
    training = fabric.communicator(name="training", weight=4.0)
    indexing = fabric.communicator(name="indexing", weight=1.0)
    f1 = training.iallreduce("8MiB", algorithm="ring")
    f2 = indexing.iallreduce("8MiB", algorithm="ring")
    wait_all([f1, f2])                                # contend, arbitrated
    print(fabric.timeline())

In-flight collectives from all tenants interleave as events in the one
loop: their chunks queue behind each other on shared links (weighted
start-time-fair arbitration, per-tenant QoS weights), and in-network
collectives pass through the live :class:`NetworkManager` admission
path — pooled handler slots and switch memory, per-tenant quotas —
falling back to a host-based algorithm when a switch pool is full,
exactly the paper's reject-and-fall-back behavior.

Reliability.  :meth:`Fabric.inject` / :meth:`Fabric.load_faults` arm
declarative chaos on the shared links (loss, duplication, degradation,
outages; see :mod:`repro.network.faults`).  Lost chunks are recovered
by the host timeout + retransmission protocol of the network layer; a
mid-collective **link or switch outage** additionally triggers
*self-healing* for the in-network tree collectives: the fabric abandons
the wounded flow, consults :meth:`TreePlanner.plan_dynamic` to re-root
the aggregation tree away from the failure (Canary-style), and
re-issues — or, when the switch pool itself is lost, replans onto the
host-based Rabenseifner fallback.  Every recovery is recorded on the
collective's :meth:`timeline` entry and in :meth:`tenant_stats`.

:meth:`Fabric.timeline` exports a per-tenant trace (start/finish,
bytes, achieved goodput, hot links, fallbacks, recoveries) for the
bench CLI (``bench --tenants N --overlap --faults spec.json``) and CI
artifacts.

A lone ``Communicator`` transparently creates a *private* fabric on
first use, so the single-tenant API and its results are unchanged.
"""

from __future__ import annotations

import json
from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Optional

from repro.comm.plan import CollectivePlan, IssueContext, build_plan
from repro.comm.registry import CapabilityError, CommError, get_algorithm
from repro.core.manager import AdmissionError, NetworkManager
from repro.network.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.network.simulator import NetworkSimulator  # noqa: F401  (re-export)
from repro.network.topology import Topology, build_topology
from repro.network.trees import TreePlanner
from repro.pspin.engine import Simulator  # noqa: F401  (re-export)
from repro.pspin.pdes import build_engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.communicator import Communicator
    from repro.comm.future import CollectiveFuture

#: Version of the JSON envelope emitted by :meth:`Fabric.timeline_json`
#: and reused by the service-mode SLO snapshots (see README "Timeline &
#: snapshot schema").  Bump on any backwards-incompatible field change.
#: Version 3 adds run identity: a ``run_id`` every envelope carries and
#: an optional ``provenance_db`` pointer when a provenance recorder was
#: attached; :func:`load_timeline` still reads version-2 documents.
TIMELINE_SCHEMA_VERSION = 3


class FabricError(CommError):
    """Fabric-level failure (deadlocked loop, duplicate tenant, ...)."""


class _Inflight:
    """Book-keeping for one issued, not-yet-settled collective.

    Everything :meth:`Fabric._recover` needs to abandon a wounded flow
    and re-issue the collective on a replanned tree: the owning tenant
    communicator, the current plan and its payloads/overrides, the
    admission ticket, and the timeline entry being built.
    """

    __slots__ = (
        "comm", "plan", "payloads", "overrides", "tenant", "weight",
        "future", "entry", "ticket", "flow", "start", "base",
    )

    def __init__(self, comm, plan, payloads, overrides, tenant, weight,
                 future, entry, ticket, flow, start) -> None:
        self.comm = comm
        self.plan = plan
        self.payloads = payloads
        self.overrides = overrides
        self.tenant = tenant
        self.weight = weight
        self.future = future
        self.entry = entry
        self.ticket = ticket
        self.flow = flow
        self.start = start          # fabric time of the original issue
        self.base = start           # fabric time of the latest (re)issue


class Fabric:
    """One shared substrate serving any number of communicator tenants.

    Parameters
    ----------
    topology:
        A family name (built from ``topology_params``) or a prebuilt
        :class:`~repro.network.topology.Topology`; ``None`` keeps the
        paper's fat tree sized from ``n_hosts``/``hosts_per_leaf``/
        ``n_spines``.
    routing, routing_seed:
        Path-selection policy over the shared links (default: seeded
        deterministic ECMP).
    arbitration:
        Link scheduling across tenants: ``"wfq"`` (weighted
        start-time-fair, the default — QoS weights matter) or
        ``"fifo"`` (arrival order).
    max_allreduces_per_switch, switch_memory_bytes, tenant_quota:
        Admission pools of the network manager (Sec. 4): concurrent
        handler slots per switch, pooled switch SRAM per switch
        (``None`` = unmetered), and the per-tenant concurrency cap.
    fallback:
        When admission rejects an in-network collective, transparently
        replan it host-based (the paper's behavior) instead of raising.
    retransmit_timeout_ns:
        Host timeout before a chunk lost to an injected fault is
        retransmitted end to end (paper Sec. 4.1).
    max_retransmits:
        End-to-end retransmission budget per message under injected
        faults; exhausting it raises ``UnreachableError`` (surfacing a
        partition instead of retrying forever).
    """

    def __init__(
        self,
        topology: "Topology | str | None" = None,
        *,
        topology_params: Optional[dict] = None,
        n_hosts: int = 64,
        routing: Optional[str] = None,
        routing_seed: int = 0,
        hosts_per_leaf: Optional[int] = None,
        n_spines: int = 4,
        arbitration: str = "wfq",
        max_allreduces_per_switch: int = 8,
        switch_memory_bytes: Optional[float] = None,
        tenant_quota: Optional[int] = None,
        fallback: bool = True,
        retransmit_timeout_ns: float = 50_000.0,
        max_retransmits: int = 64,
        workers: int = 0,
        provenance_db: Optional[str] = None,
        run_label: Optional[str] = None,
    ) -> None:
        if isinstance(topology, Topology):
            topo = topology
        else:
            from repro.comm.backends import default_fat_tree_kwargs

            family = topology or "fat-tree"
            params = dict(topology_params or {})
            if family == "fat-tree" and not params:
                params = default_fat_tree_kwargs(
                    n_hosts,
                    {"hosts_per_leaf": hosts_per_leaf, "n_spines": n_spines},
                )
            topo = build_topology(family, **params)
        self.topology = topo
        self.routing = routing
        self.routing_seed = routing_seed
        #: The single fabric clock — the PsPIN discrete-event engine,
        #: shared by every collective issued into this fabric.  With
        #: ``workers >= 1`` the engine pair is the sharded conservative
        #: PDES (see ``repro.pspin.pdes``); results are identical, and
        #: any sharding obstacle falls back to the sequential engine
        #: with a RuntimeWarning.
        self.workers = workers
        self.sim, self.net = build_engine(
            topo,
            workers=workers,
            router=routing,
            routing_seed=routing_seed,
            arbitration=arbitration,
        )
        self.net.retransmit_timeout_ns = retransmit_timeout_ns
        self.net.max_retransmits = max_retransmits
        self.manager = NetworkManager(
            max_allreduces_per_switch,
            switch_memory_bytes=switch_memory_bytes,
            tenant_quota=tenant_quota,
        )
        self.fallback = fallback
        self._tenants: dict[str, "Communicator"] = {}
        self._next_flow = 1
        self._events: list[dict] = []
        self._pending: "set[CollectiveFuture]" = set()
        self._inflight: dict[object, _Inflight] = {}
        self._implicit = False      # created by a lone Communicator
        self._default_root: Optional[str] = None
        #: Run identity: every fabric mints a run id at construction so
        #: timelines are attributable even without a provenance store.
        from repro.provenance.identity import new_run_id

        self.run_id = new_run_id(self.topology.family, routing_seed, workers)
        self.provenance = None
        if provenance_db is not None:
            self.attach_provenance(provenance_db, label=run_label)

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def communicator(
        self, name: Optional[str] = None, weight: float = 1.0, **kwargs
    ) -> "Communicator":
        """Attach a new tenant communicator to this fabric.

        ``weight`` is the tenant's QoS share in link arbitration;
        remaining ``kwargs`` go to the :class:`Communicator`
        constructor (plan cache size, PsPIN dimensions, ...).
        """
        from repro.comm.communicator import Communicator

        return Communicator(fabric=self, name=name, weight=weight, **kwargs)

    def _register(self, comm: "Communicator") -> str:
        name = comm.name
        if name is None:
            i = len(self._tenants)
            while f"tenant{i}" in self._tenants:   # skip explicit names
                i += 1
            name = f"tenant{i}"
        elif name in self._tenants:
            raise FabricError(
                f"tenant {name!r} is already attached to this fabric"
            )
        self._tenants[name] = comm
        return name

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    # ------------------------------------------------------------------
    # Fault injection & self-healing
    # ------------------------------------------------------------------
    def _arm(self, seed: Optional[int] = None) -> FaultInjector:
        first = self.net.faults is None
        injector = self.net.arm_faults(seed=seed)
        if first:
            injector.on_fault(self._on_fault_event)
        return injector

    def inject(
        self,
        link=None,
        switch: Optional[str] = None,
        *,
        at: Optional[float] = None,
        kind: str = "down",
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        slow_factor: float = 1.0,
        duration_ns: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> FaultSpec:
        """Arm one fault on the shared fabric.

        ``fabric.inject(link="l0-s0", at=2e5, kind="down")`` kills a
        link mid-flight; ``kind="lossy"`` (with ``loss_rate`` /
        ``duplicate_rate``) and ``kind="slow"`` (with ``slow_factor``)
        degrade it instead, ``link="*"`` degrades every link, and
        ``switch="s0"`` takes a whole switch out.  ``at`` defaults to
        *now*; ``duration_ns`` schedules automatic repair.  Arming
        faults disengages the network fast paths, so chunks take the
        exact per-packet DES path (see
        :meth:`~repro.network.simulator.NetworkSimulator.arm_faults`).
        """
        spec = FaultSpec(
            kind=kind,
            link=link,
            switch=switch,
            at=self.now if at is None else at,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            slow_factor=slow_factor,
            duration_ns=duration_ns,
        )
        self._arm(seed).inject(spec)
        return spec

    def load_faults(self, source, seed: Optional[int] = None) -> FaultSchedule:
        """Arm a declarative :class:`FaultSchedule` (dict, list, path to
        a JSON file, or a prebuilt schedule) — the CLI's
        ``bench --faults spec.json`` entry point."""
        schedule = FaultSchedule.from_any(source, seed=seed)
        self._arm(schedule.seed).schedule(schedule)
        return schedule

    @property
    def faults(self) -> Optional[FaultInjector]:
        """The armed fault injector (None on a healthy fabric)."""
        return self.net.faults

    def fault_log(self) -> list[dict]:
        """Applied fault/repair events, application order."""
        return list(self.net.faults.applied) if self.net.faults else []

    def _on_fault_event(self, event: dict) -> None:
        """Self-healing hook, called inside the loop on every applied
        fault/repair event."""
        switch = event.get("switch")
        if switch is not None:
            # Mirror outages into the admission control plane so new
            # in-network collectives reject (and fall back) immediately.
            if event["event"] == "fault":
                self.manager.fail_switch(switch)
            else:
                self.manager.repair_switch(switch)
        if event["event"] != "fault" or event.get("kind") != "down":
            return
        for rec in list(self._inflight.values()):
            if rec.flow in self._inflight and self._tree_affected(rec, event):
                self._recover(rec, event)

    @staticmethod
    def _tree_affected(rec: _Inflight, event: dict) -> bool:
        """Did this outage sever the collective's aggregation tree?

        Host-based schedules recover through retransmission + rerouting
        alone; only in-network tree collectives need replanning."""
        if not rec.plan.caps.in_network:
            return False
        setup = rec.plan.setup
        switch = event.get("switch")
        if switch is not None:
            return switch in (setup.get("tree_switches") or ())
        pair = event.get("link_nodes")
        if not pair:
            return False
        a, b = pair
        tree_links = setup.get("tree_links") or ()
        return (a, b) in tree_links or (b, a) in tree_links

    def _replan_with_tree(self, plan: CollectivePlan, tree) -> CollectivePlan:
        """Rebuild the same algorithm's plan over an explicit
        replacement tree (bypasses the plan cache: failure state must
        never pollute cached healthy plans)."""
        request = plan.request
        new_request = dc_replace(
            request, params={**request.params, "tree": tree}
        )
        return build_plan(new_request, get_algorithm(plan.algorithm))

    def _try_replan(self, plan: CollectivePlan, tenant: Optional[str]):
        """Admission rejected a tree collective: before giving up on
        in-network execution, replan the aggregation tree over the
        *live* topology (away from failures and toward cool switches)
        and try to admit that.  Returns ``(plan, ticket)`` or None."""
        if not plan.setup.get("tree_switches"):
            return None           # not a tree schedule; nothing to re-root
        try:
            tree = TreePlanner(self.topology).plan_dynamic(
                hosts=self._plan_hosts(plan)
            )
            candidate = self._replan_with_tree(plan, tree)
            ticket = self.manager.admit(
                self._admission_switches(candidate),
                tenant=tenant,
                memory_bytes=float(candidate.request.nbytes),
            )
        except (ValueError, AdmissionError, CapabilityError):
            return None
        return candidate, ticket

    def _recover(self, rec: _Inflight, event: dict) -> None:
        """Canary-style mid-flight recovery of one tree collective.

        Abandon the wounded flow (in-flight chunks are discarded at
        their next hop), release its switch resources, replan the
        aggregation tree away from the failure via
        :meth:`TreePlanner.plan_dynamic`, and re-issue.  When no viable
        tree or switch pool remains, replan host-based instead (the
        paper's fallback), carrying any payloads to an *executing*
        algorithm.
        """
        old_flow = rec.flow
        self._inflight.pop(old_flow, None)
        self.net.abandon_flow(old_flow)
        if rec.ticket is not None:
            self.manager.release(rec.ticket)
            rec.ticket = None
        note = {
            "at_ns": self.now,
            "cause": {
                k: event[k]
                for k in ("kind", "link", "switch")
                if event.get(k) is not None
            },
            "from_algorithm": rec.plan.algorithm,
            "from_root": rec.plan.setup.get("tree_root"),
        }
        try:
            tree = TreePlanner(self.topology).plan_dynamic(
                hosts=self._plan_hosts(rec.plan)
            )
            new_plan = self._replan_with_tree(rec.plan, tree)
            rec.ticket = self.manager.admit(
                self._admission_switches(new_plan),
                tenant=rec.tenant,
                memory_bytes=float(new_plan.request.nbytes),
            )
        except (ValueError, AdmissionError, CapabilityError) as exc:
            note["fallback_reason"] = str(exc)
            new_plan = self._fallback_plan(rec.comm, rec.plan, rec.payloads)
            rec.entry["fell_back"] = True
        rec.plan = new_plan
        rec.flow = self._next_flow
        self._next_flow += 1
        rec.future.flow = rec.flow
        note["to_algorithm"] = new_plan.algorithm
        note["to_root"] = new_plan.setup.get("tree_root")
        rec.entry["recoveries"].append(note)
        rec.entry["algorithm"] = new_plan.algorithm
        self._issue_record(rec)

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------
    def _aggregation_root(self) -> str:
        """Resource key for single-switch in-network collectives: the
        root the fabric's default aggregation tree would use (re-planned
        off a root that has since failed)."""
        root = self._default_root
        if root is not None and (
            root in self.manager.dead_switches()
            or root in self.topology.failed_switches()
        ):
            root = None
        if root is None:
            try:
                root = TreePlanner(self.topology).plan().root
            except ValueError:
                # No aggregation capacity left at all: keep (or pick)
                # any switch so admission rejects with switch_down and
                # the caller falls back host-based.
                root = self._default_root or self.topology.switches[0]
            self._default_root = root
        return root

    def _admission_switches(self, plan: CollectivePlan) -> tuple:
        switches = plan.setup.get("tree_switches")
        if switches:
            return tuple(switches)
        if self.topology.supports_aggregation:
            return (self._aggregation_root(),)
        return ()

    @staticmethod
    def _plan_hosts(plan: CollectivePlan) -> "list | None":
        """The placement subset a plan was built for (None = all)."""
        hosts = plan.request.params.get("hosts")
        return list(hosts) if hosts is not None else None

    def _fallback_plan(
        self, comm: "Communicator", plan: CollectivePlan, payloads
    ) -> CollectivePlan:
        """Replan a rejected in-network collective host-based.

        Size-only requests fall back to the timing baselines (ring /
        SparCML); payload-carrying requests need an *executing*
        host algorithm, so they take Rabenseifner (recursive halving/
        doubling — the classic host fallback).  A placement subset
        survives the fallback: the host schedule rings the same hosts
        the tree would have aggregated.
        """
        request = plan.request
        if request.sparse:
            algorithm = "sparcml"
        elif payloads is not None:
            algorithm = "rabenseifner"
        else:
            algorithm = "ring"
        extra: dict = {}
        if request.params.get("hosts") is not None:
            extra["hosts"] = tuple(request.params["hosts"])
        return comm.plan(
            nbytes=request.nbytes,
            n_hosts=request.n_hosts,
            op=request.op,
            dtype=request.dtype,
            algorithm=algorithm,
            sparse=request.sparse,
            density=request.density,
            payloads=payloads,
            **extra,
        )

    def would_admit(
        self, plan: CollectivePlan, tenant: Optional[str] = None
    ) -> "AdmissionError | None":
        """Non-mutating admission probe for the service queueing layer.

        Returns the :class:`AdmissionError` that :meth:`issue` would hit
        right now (tagged with its ``.resource``), or ``None`` when the
        plan would be admitted (or needs no admission at all).  Nothing
        is reserved — a subsequent :meth:`issue` re-runs the real
        check-and-commit path.
        """
        if not plan.caps.in_network:
            return None
        return self.manager.check(
            self._admission_switches(plan),
            tenant=tenant,
            memory_bytes=float(plan.request.nbytes),
        )

    def on_pool_release(self, callback) -> None:
        """Register ``callback()`` to fire whenever switch-pool
        resources are released (admission retries can wake up)."""
        self.manager.add_release_listener(callback)

    def issue(
        self,
        comm: "Communicator",
        plan: CollectivePlan,
        payloads=None,
        overrides: Optional[dict] = None,
        *,
        tenant: Optional[str] = None,
        weight: float = 1.0,
    ) -> "CollectiveFuture":
        """Issue one planned collective into the shared event loop.

        In-network plans pass the pooled admission path first (slots,
        switch memory, tenant quota, dead switches); a switch-resource
        rejection falls back to a host-based plan when ``fallback`` is
        on, while a tenant-quota rejection always raises (queueing more
        work for an over-quota tenant would defeat the quota).  Returns
        a simulation-native future that resolves as the fabric's loop
        is driven (``future.result()``, :meth:`run`, or ``wait_all``).
        """
        from repro.comm.future import CollectiveFuture

        overrides = dict(overrides or {})
        fell_back = False
        admission_note = None
        ticket = None
        if plan.caps.in_network:
            try:
                ticket = self.manager.admit(
                    self._admission_switches(plan),
                    tenant=tenant,
                    memory_bytes=float(plan.request.nbytes),
                )
            except AdmissionError as exc:
                if getattr(exc, "resource", None) == "quota" or not self.fallback:
                    raise
                admission_note = str(exc)
                replanned = self._try_replan(plan, tenant)
                if replanned is not None:
                    # Canary-style: a re-rooted tree over the live
                    # topology keeps the collective in-network.
                    plan, ticket = replanned
                    admission_note += (
                        f" -> replanned tree rooted at "
                        f"{plan.setup.get('tree_root')}"
                    )
                else:
                    plan = self._fallback_plan(comm, plan, payloads)
                    fell_back = True
        flow = self._next_flow
        self._next_flow += 1
        future = CollectiveFuture(
            plan.request, plan.algorithm, fabric=self, tenant=tenant, flow=flow
        )
        start = self.net.now
        entry = {
            "tenant": tenant,
            "weight": weight,
            "flow": flow,
            "algorithm": plan.algorithm,
            "nbytes": float(plan.request.nbytes),
            "n_hosts": plan.request.n_hosts,
            "start_ns": start,
            "finish_ns": None,
            "duration_ns": None,
            "goodput_gbps": None,
            "wire_bytes": None,
            "hot_links": None,
            "fell_back": fell_back,
            "admission": admission_note,
            "recoveries": [],
            "status": "running",
        }
        rec = _Inflight(
            comm=comm, plan=plan, payloads=payloads, overrides=overrides,
            tenant=tenant, weight=weight, future=future, entry=entry,
            ticket=ticket, flow=flow, start=start,
        )
        self._issue_record(rec)
        self._events.append(entry)
        return future

    def _issue_record(self, rec: _Inflight) -> None:
        """(Re-)issue one collective's events into the shared loop."""
        plan = rec.plan
        rec.base = self.net.now
        if not plan.supports_issue:
            self._execute_atomic_record(rec)
            return
        flow = rec.flow
        self.net.set_flow_weight(flow, rec.weight)
        ctx = IssueContext(net=self.net, flow=flow, finish=None)

        def finish(result) -> None:
            if rec.ticket is not None:
                self.manager.release(rec.ticket)
                rec.ticket = None
            self.net.remove_flow(flow)
            self._inflight.pop(flow, None)
            self._settle_record(rec, result)

        ctx.finish = finish
        self._pending.add(rec.future)
        self._inflight[flow] = rec
        try:
            plan.issue(ctx, rec.payloads, **rec.overrides)
        except CapabilityError:
            # The plan was shaped for a different fabric.  On the
            # implicit private fabric this is legal legacy usage
            # (per-call topology overrides); run it atomically on
            # its own substrate instead of rejecting.
            self._pending.discard(rec.future)
            self._inflight.pop(flow, None)
            self.net.remove_flow(flow)
            if not self._implicit:
                if rec.ticket is not None:
                    self.manager.release(rec.ticket)
                    rec.ticket = None
                raise
            self._execute_atomic_record(rec)
        except Exception:
            self._pending.discard(rec.future)
            self._inflight.pop(flow, None)
            self.net.remove_flow(flow)
            if rec.ticket is not None:
                self.manager.release(rec.ticket)
                rec.ticket = None
            raise

    def _execute_atomic_record(self, rec: _Inflight) -> None:
        """Non-interleaving plans (closed-form models, the PsPIN switch
        simulation) execute in one shot at the current fabric time;
        their switch resources stay held until the fabric clock passes
        their modeled finish (``future.result()`` advances it there, so
        strictly sequential issue/result never sees a stale pool)."""
        try:
            result = rec.plan.execute(rec.payloads, **rec.overrides)
        except Exception:
            if rec.ticket is not None:
                self.manager.release(rec.ticket)
                rec.ticket = None
            raise
        finish_time = max(rec.base + result.time_ns, self.sim.now)
        if rec.ticket is not None:
            self.sim.schedule_at(
                finish_time, self.manager.release, rec.ticket, priority=0
            )
            rec.ticket = None
        rec.future._settle_time = finish_time
        self._settle_record(rec, result, finish_ns=finish_time)

    def _settle_record(
        self, rec: _Inflight, result, finish_ns: Optional[float] = None
    ) -> None:
        # Wake any run_until() driving the loop for this (or any)
        # future — it re-checks its own future and resumes if this
        # was a different one.
        self.sim.stop_requested = True
        if finish_ns is None:
            # Schedule times are relative to the latest (re)issue; the
            # timeline reports end-to-end durations from the original
            # issue, so recoveries lengthen the entry, not reset it.
            finish_ns = rec.base + result.time_ns
        entry = rec.entry
        duration = finish_ns - rec.start
        entry.update(
            finish_ns=finish_ns,
            duration_ns=duration,
            goodput_gbps=(
                entry["nbytes"] * 8.0 / duration if duration > 0 else None
            ),
            wire_bytes=result.traffic_bytes_hops,
            hot_links=result.extra.get("hot_links"),
            status="done",
        )
        result.extra.setdefault("tenant", rec.tenant)
        result.extra["fell_back"] = entry["fell_back"]
        if entry["recoveries"]:
            result.extra["recoveries"] = list(entry["recoveries"])
            result.time_ns = duration    # end-to-end, including re-runs
        if self.provenance is not None:
            raw = getattr(result, "raw", None)
            counters = getattr(raw, "provenance", None)
            if counters:
                switch = rec.plan.setup.get("tree_root") or "switch"
                self.provenance.add_switch_counters(switch, counters)
        self._pending.discard(rec.future)
        rec.future._settle(result=result)

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest pending event (False when idle)."""
        return self.sim.step()

    def run(self, until: Optional[float] = None) -> float:
        """Run to quiescence (or ``until``); returns the fabric time."""
        self.sim.run(until=until)
        return self.sim.now

    def run_until(self, future: "CollectiveFuture") -> None:
        """Drive the shared loop until ``future`` completes."""
        # The loop stays inside the engine; settling futures raise the
        # engine's stop flag (no per-event predicate call).
        while not future._done:
            if not self.sim.run_stoppable() and not future._done:
                raise FabricError(
                    f"fabric event loop drained but collective "
                    f"{future.algorithm!r} (tenant {future.tenant!r}) never "
                    "completed — deadlocked or mis-issued schedule"
                )

    @property
    def now(self) -> float:
        """Current fabric time (ns)."""
        return self.sim.now

    @property
    def in_flight(self) -> int:
        """Collectives issued but not yet completed."""
        return len(self._pending)

    def tuner(self):
        """An :class:`~repro.comm.planner.tuner.OnlineTuner` over this
        fabric's live telemetry (in-flight count, hot links, WFQ queue
        depths) — what ``auto_mode="cost"`` consults between issues."""
        from repro.comm.planner.tuner import OnlineTuner

        return OnlineTuner(self)

    def congestion_level(self) -> int:
        """Quantized live congestion level (see :meth:`tuner`)."""
        return self.tuner().level()

    def shutdown(self) -> None:
        """Stop sharded-engine worker processes (if any) and flush the
        attached provenance recorder.  Safe to call on a sequential
        fabric (no-op); call at quiescence.

        Provenance flushes *after* engine shutdown: the sharded
        engine's quiescence barrier has already merged worker-side link
        tables by then, so the recorder reads final, engine-independent
        counters."""
        stop = getattr(self.net, "shutdown", None)
        if stop is not None:
            stop()
        if self.provenance is not None:
            self.provenance.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_provenance(
        self,
        store,
        *,
        label: Optional[str] = None,
        energy_model=None,
    ):
        """Attach a provenance recorder to this fabric.

        ``store`` is a database path or an open
        :class:`~repro.provenance.store.ProvenanceStore`.  The recorder
        reuses the fabric's ``run_id``, accumulates per-switch counters
        as collectives settle, and flushes links + energy on
        :meth:`shutdown` (or an explicit ``flush_provenance``).
        Returns the recorder.
        """
        from repro.provenance.recorder import ProvenanceRecorder

        if self.provenance is not None:
            raise FabricError("a provenance recorder is already attached")
        self.provenance = ProvenanceRecorder(
            store, self, run_id=self.run_id, label=label,
            energy_model=energy_model,
        )
        return self.provenance

    def flush_provenance(self) -> None:
        """Flush the attached recorder now (idempotent; no-op when none
        is attached).  Use when the fabric keeps running after a
        measurement window ends."""
        if self.provenance is not None:
            self.provenance.flush()
    def timeline(self) -> list[dict]:
        """Per-collective trace, issue order: tenant, algorithm, start/
        finish, bytes, achieved goodput, hot links, fallbacks, and any
        mid-flight recoveries."""
        return [dict(e) for e in self._events]

    def timeline_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """The timeline as JSON; optionally written to ``path``."""
        payload = {
            "schema_version": TIMELINE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "topology": {k: str(v) for k, v in self.topology.describe().items()},
            "routing": self.net.router.name,
            "arbitration": self.net.arbitration,
            "now_ns": self.now,
            "tenants": list(self._tenants),
            "utilization": self.manager.utilization(),
            "events": self.timeline(),
        }
        if self.provenance is not None:
            payload["provenance_db"] = self.provenance.store.path
        if self.net.faults is not None:
            traffic = self.net.traffic
            payload["faults"] = self.fault_log()
            payload["reliability"] = {
                "drops": traffic.drops,
                "duplicates": traffic.duplicates,
                "retransmits": traffic.retransmits,
                "failed_links": sorted(
                    f"{a}-{b}" for a, b in self.topology.failed_links()
                ),
                "failed_switches": sorted(self.topology.failed_switches()),
            }
        text = json.dumps(payload, indent=indent, default=str)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def tenant_stats(self) -> dict[str, dict]:
        """Aggregate per-tenant counters derived from the timeline."""
        out: dict[str, dict] = {}
        for e in self._events:
            s = out.setdefault(
                e["tenant"],
                {
                    "collectives": 0,
                    "completed": 0,
                    "fell_back": 0,
                    "recovered": 0,
                    "bytes": 0.0,
                    "wire_bytes": 0.0,
                    "busy_ns": 0.0,
                },
            )
            s["collectives"] += 1
            s["bytes"] += e["nbytes"]
            if e["fell_back"]:
                s["fell_back"] += 1
            if e["recoveries"]:
                s["recovered"] += 1
            if e["status"] == "done":
                s["completed"] += 1
                s["wire_bytes"] += e["wire_bytes"] or 0.0
                s["busy_ns"] += e["duration_ns"] or 0.0
        return out


def load_timeline(source: str) -> dict:
    """Read a timeline envelope (version 2 or 3) back into a dict.

    ``source`` is a file path or a JSON string.  Version-2 documents
    (pre run-identity) are normalized to the version-3 shape: ``run_id``
    and ``provenance_db`` are added as None, so consumers can index the
    keys unconditionally; the original ``schema_version`` is preserved.
    Unknown versions raise :class:`ValueError`.
    """
    text = source
    if "{" not in source:
        with open(source) as fh:
            text = fh.read()
    payload = json.loads(text)
    version = payload.get("schema_version")
    if version not in (2, TIMELINE_SCHEMA_VERSION):
        raise ValueError(
            f"unsupported timeline schema_version {version!r}; this build "
            f"reads versions 2 and {TIMELINE_SCHEMA_VERSION}"
        )
    payload.setdefault("run_id", None)
    payload.setdefault("provenance_db", None)
    return payload
