"""Shared-fabric execution: concurrent collectives, one event loop.

A :class:`Fabric` owns the physical substrate every collective runs
over — the topology (with its live link state), the routing policy, the
pooled switch resources of the Sec. 4 control plane, and a single
discrete-event clock (the PsPIN :class:`~repro.pspin.engine.Simulator`,
reused as the fabric-wide timebase).  Any number of
:class:`~repro.comm.communicator.Communicator` tenants attach via
:meth:`Fabric.communicator`::

    fabric = Fabric(n_hosts=16, n_spines=1)           # oversubscribed
    training = fabric.communicator(name="training", weight=4.0)
    indexing = fabric.communicator(name="indexing", weight=1.0)
    f1 = training.iallreduce("8MiB", algorithm="ring")
    f2 = indexing.iallreduce("8MiB", algorithm="ring")
    wait_all([f1, f2])                                # contend, arbitrated
    print(fabric.timeline())

In-flight collectives from all tenants interleave as events in the one
loop: their chunks queue behind each other on shared links (weighted
start-time-fair arbitration, per-tenant QoS weights), and in-network
collectives pass through the live :class:`NetworkManager` admission
path — pooled handler slots and switch memory, per-tenant quotas —
falling back to a host-based algorithm when a switch pool is full,
exactly the paper's reject-and-fall-back behavior.

:meth:`Fabric.timeline` exports a per-tenant trace (start/finish,
bytes, achieved goodput, hot links, fallbacks) for the bench CLI
(``bench --tenants N --overlap``) and CI artifacts.

A lone ``Communicator`` transparently creates a *private* fabric on
first use, so the single-tenant API and its results are unchanged.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.comm.plan import CollectivePlan, IssueContext
from repro.comm.registry import CapabilityError, CommError
from repro.core.manager import AdmissionError, NetworkManager
from repro.network.simulator import NetworkSimulator
from repro.network.topology import Topology, build_topology
from repro.network.trees import TreePlanner
from repro.pspin.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.communicator import Communicator
    from repro.comm.future import CollectiveFuture


class FabricError(CommError):
    """Fabric-level failure (deadlocked loop, duplicate tenant, ...)."""


class Fabric:
    """One shared substrate serving any number of communicator tenants.

    Parameters
    ----------
    topology:
        A family name (built from ``topology_params``) or a prebuilt
        :class:`~repro.network.topology.Topology`; ``None`` keeps the
        paper's fat tree sized from ``n_hosts``/``hosts_per_leaf``/
        ``n_spines``.
    routing, routing_seed:
        Path-selection policy over the shared links (default: seeded
        deterministic ECMP).
    arbitration:
        Link scheduling across tenants: ``"wfq"`` (weighted
        start-time-fair, the default — QoS weights matter) or
        ``"fifo"`` (arrival order).
    max_allreduces_per_switch, switch_memory_bytes, tenant_quota:
        Admission pools of the network manager (Sec. 4): concurrent
        handler slots per switch, pooled switch SRAM per switch
        (``None`` = unmetered), and the per-tenant concurrency cap.
    fallback:
        When admission rejects an in-network collective, transparently
        replan it host-based (the paper's behavior) instead of raising.
    """

    def __init__(
        self,
        topology: "Topology | str | None" = None,
        *,
        topology_params: Optional[dict] = None,
        n_hosts: int = 64,
        routing: Optional[str] = None,
        routing_seed: int = 0,
        hosts_per_leaf: Optional[int] = None,
        n_spines: int = 4,
        arbitration: str = "wfq",
        max_allreduces_per_switch: int = 8,
        switch_memory_bytes: Optional[float] = None,
        tenant_quota: Optional[int] = None,
        fallback: bool = True,
    ) -> None:
        if isinstance(topology, Topology):
            topo = topology
        else:
            from repro.comm.backends import default_fat_tree_kwargs

            family = topology or "fat-tree"
            params = dict(topology_params or {})
            if family == "fat-tree" and not params:
                params = default_fat_tree_kwargs(
                    n_hosts,
                    {"hosts_per_leaf": hosts_per_leaf, "n_spines": n_spines},
                )
            topo = build_topology(family, **params)
        self.topology = topo
        self.routing = routing
        self.routing_seed = routing_seed
        #: The single fabric clock — the PsPIN discrete-event engine,
        #: shared by every collective issued into this fabric.
        self.sim = Simulator()
        self.net = NetworkSimulator(
            topo,
            router=routing,
            routing_seed=routing_seed,
            sim=self.sim,
            arbitration=arbitration,
        )
        self.manager = NetworkManager(
            max_allreduces_per_switch,
            switch_memory_bytes=switch_memory_bytes,
            tenant_quota=tenant_quota,
        )
        self.fallback = fallback
        self._tenants: dict[str, "Communicator"] = {}
        self._next_flow = 1
        self._events: list[dict] = []
        self._pending: "set[CollectiveFuture]" = set()
        self._implicit = False      # created by a lone Communicator
        self._default_root: Optional[str] = None

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def communicator(
        self, name: Optional[str] = None, weight: float = 1.0, **kwargs
    ) -> "Communicator":
        """Attach a new tenant communicator to this fabric.

        ``weight`` is the tenant's QoS share in link arbitration;
        remaining ``kwargs`` go to the :class:`Communicator`
        constructor (plan cache size, PsPIN dimensions, ...).
        """
        from repro.comm.communicator import Communicator

        return Communicator(fabric=self, name=name, weight=weight, **kwargs)

    def _register(self, comm: "Communicator") -> str:
        name = comm.name
        if name is None:
            i = len(self._tenants)
            while f"tenant{i}" in self._tenants:   # skip explicit names
                i += 1
            name = f"tenant{i}"
        elif name in self._tenants:
            raise FabricError(
                f"tenant {name!r} is already attached to this fabric"
            )
        self._tenants[name] = comm
        return name

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------
    def _aggregation_root(self) -> str:
        """Resource key for single-switch in-network collectives: the
        root the fabric's default aggregation tree would use."""
        if self._default_root is None:
            self._default_root = TreePlanner(self.topology).plan().root
        return self._default_root

    def _admission_switches(self, plan: CollectivePlan) -> tuple:
        switches = plan.setup.get("tree_switches")
        if switches:
            return tuple(switches)
        if self.topology.supports_aggregation:
            return (self._aggregation_root(),)
        return ()

    def _fallback_plan(
        self, comm: "Communicator", plan: CollectivePlan, payloads
    ) -> CollectivePlan:
        """Replan a rejected in-network collective host-based.

        Size-only requests fall back to the timing baselines (ring /
        SparCML); payload-carrying requests need an *executing*
        host algorithm, so they take Rabenseifner (recursive halving/
        doubling — the classic host fallback).
        """
        request = plan.request
        if request.sparse:
            algorithm = "sparcml"
        elif payloads is not None:
            algorithm = "rabenseifner"
        else:
            algorithm = "ring"
        return comm.plan(
            nbytes=request.nbytes,
            n_hosts=request.n_hosts,
            op=request.op,
            dtype=request.dtype,
            algorithm=algorithm,
            sparse=request.sparse,
            density=request.density,
            payloads=payloads,
        )

    def issue(
        self,
        comm: "Communicator",
        plan: CollectivePlan,
        payloads=None,
        overrides: Optional[dict] = None,
        *,
        tenant: Optional[str] = None,
        weight: float = 1.0,
    ) -> "CollectiveFuture":
        """Issue one planned collective into the shared event loop.

        In-network plans pass the pooled admission path first (slots,
        switch memory, tenant quota); a switch-resource rejection falls
        back to a host-based plan when ``fallback`` is on, while a
        tenant-quota rejection always raises (queueing more work for an
        over-quota tenant would defeat the quota).  Returns a
        simulation-native future that resolves as the fabric's loop is
        driven (``future.result()``, :meth:`run`, or ``wait_all``).
        """
        from repro.comm.future import CollectiveFuture

        overrides = dict(overrides or {})
        fell_back = False
        admission_note = None
        ticket = None
        if plan.caps.in_network:
            try:
                ticket = self.manager.admit(
                    self._admission_switches(plan),
                    tenant=tenant,
                    memory_bytes=float(plan.request.nbytes),
                )
            except AdmissionError as exc:
                if getattr(exc, "resource", None) == "quota" or not self.fallback:
                    raise
                admission_note = str(exc)
                plan = self._fallback_plan(comm, plan, payloads)
                fell_back = True
        flow = self._next_flow
        self._next_flow += 1
        future = CollectiveFuture(
            plan.request, plan.algorithm, fabric=self, tenant=tenant, flow=flow
        )
        start = self.net.now
        entry = {
            "tenant": tenant,
            "weight": weight,
            "flow": flow,
            "algorithm": plan.algorithm,
            "nbytes": float(plan.request.nbytes),
            "n_hosts": plan.request.n_hosts,
            "start_ns": start,
            "finish_ns": None,
            "duration_ns": None,
            "goodput_gbps": None,
            "wire_bytes": None,
            "hot_links": None,
            "fell_back": fell_back,
            "admission": admission_note,
            "status": "running",
        }

        def settle(result) -> None:
            # Wake any run_until() driving the loop for this (or any)
            # future — it re-checks its own future and resumes if this
            # was a different one.
            self.sim.stop_requested = True
            duration = result.time_ns
            entry.update(
                finish_ns=start + duration,
                duration_ns=duration,
                goodput_gbps=(
                    entry["nbytes"] * 8.0 / duration if duration > 0 else None
                ),
                wire_bytes=result.traffic_bytes_hops,
                hot_links=result.extra.get("hot_links"),
                status="done",
            )
            result.extra.setdefault("tenant", tenant)
            result.extra["fell_back"] = fell_back
            self._pending.discard(future)
            future._settle(result=result)

        if plan.supports_issue:
            self.net.set_flow_weight(flow, weight)
            ctx = IssueContext(net=self.net, flow=flow, finish=None)

            def finish(result) -> None:
                if ticket is not None:
                    self.manager.release(ticket)
                self.net.remove_flow(flow)
                settle(result)

            ctx.finish = finish
            self._pending.add(future)
            try:
                plan.issue(ctx, payloads, **overrides)
            except CapabilityError:
                # The plan was shaped for a different fabric.  On the
                # implicit private fabric this is legal legacy usage
                # (per-call topology overrides); run it atomically on
                # its own substrate instead of rejecting.
                self._pending.discard(future)
                self.net.remove_flow(flow)
                if not self._implicit:
                    if ticket is not None:
                        self.manager.release(ticket)
                    raise
                self._execute_atomically(
                    plan, payloads, overrides, ticket, start, entry, settle,
                    future,
                )
            except Exception:
                self._pending.discard(future)
                self.net.remove_flow(flow)
                if ticket is not None:
                    self.manager.release(ticket)
                raise
        else:
            self._execute_atomically(
                plan, payloads, overrides, ticket, start, entry, settle, future
            )
        self._events.append(entry)
        return future

    def _execute_atomically(
        self, plan, payloads, overrides, ticket, start, entry, settle, future
    ) -> None:
        """Non-interleaving plans (closed-form models, the PsPIN switch
        simulation) execute in one shot at the current fabric time;
        their switch resources stay held until the fabric clock passes
        their modeled finish (``future.result()`` advances it there, so
        strictly sequential issue/result never sees a stale pool)."""
        try:
            result = plan.execute(payloads, **overrides)
        except Exception:
            if ticket is not None:
                self.manager.release(ticket)
            raise
        finish_time = max(start + result.time_ns, self.sim.now)
        if ticket is not None:
            self.sim.schedule_at(
                finish_time, self.manager.release, ticket, priority=0
            )
        future._settle_time = finish_time
        settle(result)

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest pending event (False when idle)."""
        return self.sim.step()

    def run(self, until: Optional[float] = None) -> float:
        """Run to quiescence (or ``until``); returns the fabric time."""
        self.sim.run(until=until)
        return self.sim.now

    def run_until(self, future: "CollectiveFuture") -> None:
        """Drive the shared loop until ``future`` completes."""
        # The loop stays inside the engine; settling futures raise the
        # engine's stop flag (no per-event predicate call).
        while not future._done:
            if not self.sim.run_stoppable() and not future._done:
                raise FabricError(
                    f"fabric event loop drained but collective "
                    f"{future.algorithm!r} (tenant {future.tenant!r}) never "
                    "completed — deadlocked or mis-issued schedule"
                )

    @property
    def now(self) -> float:
        """Current fabric time (ns)."""
        return self.sim.now

    @property
    def in_flight(self) -> int:
        """Collectives issued but not yet completed."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def timeline(self) -> list[dict]:
        """Per-collective trace, issue order: tenant, algorithm, start/
        finish, bytes, achieved goodput, hot links, fallbacks."""
        return [dict(e) for e in self._events]

    def timeline_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """The timeline as JSON; optionally written to ``path``."""
        payload = {
            "topology": {k: str(v) for k, v in self.topology.describe().items()},
            "routing": self.net.router.name,
            "arbitration": self.net.arbitration,
            "now_ns": self.now,
            "tenants": list(self._tenants),
            "utilization": self.manager.utilization(),
            "events": self.timeline(),
        }
        text = json.dumps(payload, indent=indent, default=str)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def tenant_stats(self) -> dict[str, dict]:
        """Aggregate per-tenant counters derived from the timeline."""
        out: dict[str, dict] = {}
        for e in self._events:
            s = out.setdefault(
                e["tenant"],
                {
                    "collectives": 0,
                    "completed": 0,
                    "fell_back": 0,
                    "bytes": 0.0,
                    "wire_bytes": 0.0,
                    "busy_ns": 0.0,
                },
            )
            s["collectives"] += 1
            s["bytes"] += e["nbytes"]
            if e["fell_back"]:
                s["fell_back"] += 1
            if e["status"] == "done":
                s["completed"] += 1
                s["wire_bytes"] += e["wire_bytes"] or 0.0
                s["busy_ns"] += e["duration_ns"] or 0.0
        return out
