"""Cost-model-driven auto-tuning planner.

Registers the ``"cost"`` auto-selection mode: instead of the static
priority ladder, ``algorithm="auto"`` requests with
``params["auto_mode"] = "cost"`` are priced by a fitted alpha-beta +
congestion model (:mod:`repro.comm.planner.model`) and the cheapest
candidate wins, with its chunking knobs tuned to the request size
(written back into ``request.params`` so they key the plan cache).

Scope: the cost mode ranks the candidates that run as *network
schedules on the shared fabric* — ring, swing, butterfly and
flare_dense for dense requests; sparcml and flare_sparse for sparse
ones — because those are the algorithms whose completion time the
model prices and that actually contend for links when issued
together.  The atomic switch-level backends (flare_switch) model a
single switch with no wire time; comparing their timings against
fabric schedules would be meaningless, so when only atomic candidates
survive capability matching the cost mode falls back to the static
priority order unchanged.

The congestion input comes from ``params["congestion"]`` — a small
quantized level the :class:`~repro.comm.planner.tuner.OnlineTuner`
derives from live fabric telemetry between issues (fabric-attached
communicators wire this automatically under ``auto_mode="cost"``).

Offline calibration (:mod:`repro.comm.planner.calibrate`, CLI
``python -m repro planner fit``) fits the model's coefficients against
the event-driven simulator and commits them as ``coefficients.json``.
"""

from __future__ import annotations

import math

from repro.comm.registry import (
    AlgorithmEntry,
    register_auto_selector,
)
from repro.comm.request import CollectiveRequest
from repro.comm.planner.model import (
    FEATURES,
    PlannerModel,
    default_model,
    load_coefficients,
    reset_default_model,
)
from repro.comm.planner.tuner import OnlineTuner, congestion_level

#: Algorithms the cost mode ranks: network schedules that issue into a
#: shared fabric (and that the model knows how to price).
ISSUABLE = frozenset(
    {"ring", "swing", "butterfly", "flare_dense", "sparcml", "flare_sparse"}
)

_KIB = 1024


def _pow2_clamp(value: float, lo: int, hi: int) -> int:
    """Nearest power of two, clamped — quantized so tuned knobs do not
    churn the plan-cache key between near-identical requests."""
    value = max(lo, min(hi, value))
    return 1 << int(round(math.log2(max(1.0, value))))


def tune_knobs(algorithm: str, request: CollectiveRequest) -> None:
    """Write size-matched chunking knobs into ``request.params``.

    Explicit user knobs are never overridden.  Targets: ~4 sub-chunks
    per step message for the host schedules (enough intra-step
    pipelining over multi-hop paths without per-event overhead), ~16
    pipelined chunks through the aggregation tree for flare_dense.
    """
    p = request.params
    Z = float(request.nbytes)
    P = max(2, request.n_hosts)
    if algorithm == "ring" and "sub_chunk_bytes" not in p:
        p["sub_chunk_bytes"] = _pow2_clamp(Z / (4 * P), 4 * _KIB, 256 * _KIB)
    elif algorithm in ("swing", "butterfly") and "sub_chunk_bytes" not in p:
        p["sub_chunk_bytes"] = _pow2_clamp(Z / 8, 4 * _KIB, 256 * _KIB)
    elif algorithm == "flare_dense" and "chunk_bytes" not in p:
        p["chunk_bytes"] = _pow2_clamp(Z / 16, 64 * _KIB, 4096 * _KIB)


def steer_tree_root(request: CollectiveRequest) -> None:
    """Root the aggregation tree away from ``params["avoid_switches"]``.

    Honored on topologies where the tree planner accepts an explicit
    root (everything except the fat tree's canonical spine embedding).
    ``avoid_switches`` typically comes from
    :meth:`OnlineTuner.hot_switches`.
    """
    p = request.params
    avoid = p.get("avoid_switches")
    topo = p.get("topology")
    if (
        not avoid
        or "tree_root" in p
        or "tree" in p
        or topo is None
        or isinstance(topo, str)
        or request.topology_family == "fat-tree"
        or not getattr(topo, "supports_aggregation", False)
    ):
        return
    for root in sorted(topo.aggregating_switches()):
        if root not in avoid:
            p["tree_root"] = root
            return


def cost_select(
    request: CollectiveRequest, candidates: list[AlgorithmEntry]
) -> AlgorithmEntry:
    """The ``auto_mode="cost"`` selector.

    Ranks the fabric-issuable candidates by modeled cost (congestion-
    adjusted), tunes the winner's knobs, and records the decision in
    ``params["planned_costs"]``-free form (the plan setup carries the
    knobs).  Falls back to the static pick when no candidate is
    priceable (e.g. only atomic switch backends survived).
    """
    congestion = float(request.params.get("congestion", 0) or 0)
    model = default_model()
    names = [e.name for e in candidates if e.name in ISSUABLE]
    ranked = model.rank(names, request, congestion)
    if not ranked:
        return candidates[0]          # static fallback: atomic-only pool
    best_name = ranked[0][1]
    tune_knobs(best_name, request)
    if best_name in ("flare_dense", "flare_sparse"):
        steer_tree_root(request)
    by_name = {e.name: e for e in candidates}
    return by_name[best_name]


register_auto_selector("cost", cost_select)

__all__ = [
    "FEATURES",
    "ISSUABLE",
    "OnlineTuner",
    "PlannerModel",
    "congestion_level",
    "cost_select",
    "default_model",
    "load_coefficients",
    "reset_default_model",
    "steer_tree_root",
    "tune_knobs",
]
