"""Closed-form per-algorithm cost model with fitted coefficients.

The planner prices each candidate algorithm with an alpha-beta form
augmented by a congestion term::

    cost_ns = a * f_alpha(P) * alpha
            + b * (f_beta(P, Z, density) / beta) * (1 + g * congestion)
            + c

``f_alpha`` counts latency-bearing steps and ``f_beta`` the per-host
byte volume each algorithm's schedule moves — textbook quantities the
simulator does not need to run to produce.  The coefficients ``(a, b,
c, g)`` are *fitted offline* against the event-driven simulator by
:mod:`repro.comm.planner.calibrate` and committed as
``coefficients.json``: ``a``/``b`` absorb everything the closed form
elides (multi-hop path lengths, pipelining efficiency, per-family
path overlap — Swing's torus advantage is a smaller fitted ``b``
there), ``c`` the fixed per-collective overhead, and ``g`` how much
of the schedule's byte volume contends with co-running tenants
(fitted from multi-tenant overlap runs).

Coefficients are keyed per ``(algorithm, topology-family)`` with an
``"*"`` family fallback; algorithms without a feature model price as
``None`` and are skipped by the cost selector.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional

from repro.comm.request import CollectiveRequest
from repro.utils.units import gbps_to_bytes_per_ns

#: Shipped coefficients, fitted by ``python -m repro planner fit``.
DEFAULT_COEFFICIENTS_PATH = Path(__file__).with_name("coefficients.json")

#: Neutral coefficients: pure (unscaled) alpha-beta, no congestion
#: sensitivity.  Used for any (algorithm, family) pair the fit did not
#: cover, so an uncalibrated model still ranks sanely.
NEUTRAL = {"a": 1.0, "b": 1.0, "c": 0.0, "g": 0.0}


def _log2(n: int) -> float:
    return math.log2(max(2, n))


def _features_ring(request: CollectiveRequest) -> tuple[float, float]:
    P, Z = request.n_hosts, float(request.nbytes)
    return 2.0 * (P - 1), 2.0 * Z * (P - 1) / P


def _features_halving(request: CollectiveRequest) -> tuple[float, float]:
    P, Z = request.n_hosts, float(request.nbytes)
    return 2.0 * _log2(P), 2.0 * Z * (P - 1) / P


def _features_flare_dense(request: CollectiveRequest) -> tuple[float, float]:
    # Each host sends Z up the tree once and receives Z back; chunks
    # pipeline, so depth contributes latency, not serialization.
    P, Z = request.n_hosts, float(request.nbytes)
    return _log2(P) + 1.0, Z


def _features_sparcml(request: CollectiveRequest) -> tuple[float, float]:
    P, Z = request.n_hosts, float(request.nbytes)
    return 2.0 * _log2(P), 2.0 * Z * request.density


def _features_flare_sparse(request: CollectiveRequest) -> tuple[float, float]:
    P, Z = request.n_hosts, float(request.nbytes)
    return _log2(P) + 1.0, Z * request.density


#: algorithm -> (f_alpha, f_beta) feature extractor.  Only these
#: algorithms are priceable; the cost selector skips the rest.
FEATURES = {
    "ring": _features_ring,
    "swing": _features_halving,
    "butterfly": _features_halving,
    "flare_dense": _features_flare_dense,
    "sparcml": _features_sparcml,
    "flare_sparse": _features_flare_sparse,
}


def link_model(request: CollectiveRequest) -> tuple[float, float]:
    """(alpha ns, beta bytes/ns) from the same params the fat-tree
    backends honor (mirrors ``repro.comm.backends._link_model``)."""
    p = request.params
    return (
        p.get("link_latency_ns", 250.0),
        gbps_to_bytes_per_ns(p.get("link_gbps", 100.0)),
    )


class PlannerModel:
    """Coefficient table + prediction.

    ``coefficients`` maps ``algorithm -> {family_or_star -> {a,b,c,g}}``;
    ``None`` loads the committed ``coefficients.json`` (falling back to
    :data:`NEUTRAL` everywhere if the file is absent or unreadable).
    """

    def __init__(self, coefficients: Optional[dict] = None) -> None:
        if coefficients is None:
            coefficients = load_coefficients()
        self.coefficients = coefficients

    # ------------------------------------------------------------------
    def coeffs(self, algorithm: str, family: str) -> dict:
        table = self.coefficients.get(algorithm, {})
        entry = table.get(family) or table.get("*") or NEUTRAL
        return {**NEUTRAL, **entry}

    def predict(
        self,
        algorithm: str,
        request: CollectiveRequest,
        congestion: float = 0.0,
    ) -> Optional[float]:
        """Modeled completion time in ns, or ``None`` if unpriceable."""
        features = FEATURES.get(algorithm)
        if features is None:
            return None
        f_alpha, f_beta = features(request)
        alpha, beta = link_model(request)
        k = self.coeffs(algorithm, request.topology_family)
        return (
            k["a"] * f_alpha * alpha
            + k["b"] * (f_beta / beta) * (1.0 + k["g"] * max(0.0, congestion))
            + k["c"]
        )

    def rank(
        self,
        algorithms: list[str],
        request: CollectiveRequest,
        congestion: float = 0.0,
    ) -> list[tuple[float, str]]:
        """Priceable algorithms as sorted (cost, name) pairs."""
        scored = []
        for name in algorithms:
            cost = self.predict(name, request, congestion)
            if cost is not None:
                scored.append((cost, name))
        scored.sort()
        return scored


def load_coefficients(path: Optional[Path] = None) -> dict:
    """Read a coefficients JSON; missing/corrupt files degrade to {}
    (every lookup then resolves to :data:`NEUTRAL`)."""
    path = Path(path) if path is not None else DEFAULT_COEFFICIENTS_PATH
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    coefficients = payload.get("coefficients", {})
    return coefficients if isinstance(coefficients, dict) else {}


_DEFAULT_MODEL: Optional[PlannerModel] = None


def default_model() -> PlannerModel:
    """Process-wide model over the committed coefficients (cached)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = PlannerModel()
    return _DEFAULT_MODEL


def reset_default_model() -> None:
    """Drop the cached model (tests, or after refitting on disk)."""
    global _DEFAULT_MODEL
    _DEFAULT_MODEL = None
