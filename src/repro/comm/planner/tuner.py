"""Online re-tuning from live fabric telemetry.

The offline fit prices algorithms for a quiet fabric.  Between issues,
the :class:`OnlineTuner` reads the live signals a running
:class:`~repro.comm.fabric.Fabric` already exposes — in-flight
collective count, per-link traffic concentration (``TrafficStats.
hot_links``), and WFQ queue-depth peaks — and folds them into one
*quantized* congestion level that scales the cost model's contention
term (the ``g`` coefficient).

Quantization matters: the level is written into
``request.params["congestion"]`` before resolution, so it participates
in the plan-cache key.  A smooth float would make every issue a cache
miss; a small integer level means plans are re-derived only when the
fabric's load *regime* changes (idle -> busy -> saturated), which is
exactly when a different algorithm choice can pay off.
"""

from __future__ import annotations

from typing import Optional


class OnlineTuner:
    """Derives a quantized congestion level for a fabric.

    Parameters
    ----------
    fabric:
        The :class:`~repro.comm.fabric.Fabric` to observe.
    max_level:
        Ceiling of the quantized level (default 4).
    queue_depth_threshold:
        WFQ queue-depth peak (messages waiting on one link) above
        which the fabric counts as one level more congested.
    """

    def __init__(
        self,
        fabric,
        *,
        max_level: int = 4,
        queue_depth_threshold: int = 8,
    ) -> None:
        self.fabric = fabric
        self.max_level = int(max_level)
        self.queue_depth_threshold = int(queue_depth_threshold)

    # ------------------------------------------------------------------
    def level(self) -> int:
        """Quantized congestion level in ``0..max_level``.

        Each concurrently in-flight collective is one unit of
        contention; a WFQ queue-depth peak beyond the threshold (links
        already backing up) adds one more.

        Attached co-tenants floor the estimate even before they issue:
        tenants sharing a fabric overwhelmingly issue together
        (BSP-style training steps), so the first arrival of a wave
        would otherwise see an idle wire, greedily pick a
        bandwidth-hungry host schedule, and collide with the seven
        co-tenants right behind it.  Pricing for the co-resident load
        up front keeps the whole wave on contention-tolerant choices.
        """
        level = max(self.fabric.in_flight, self._co_tenants())
        if self._peak_queue_depth() > self.queue_depth_threshold:
            level += 1
        return max(0, min(self.max_level, level))

    def _co_tenants(self) -> int:
        tenants = getattr(self.fabric, "_tenants", None)
        return max(0, len(tenants) - 1) if tenants is not None else 0

    def _peak_queue_depth(self) -> int:
        peaks = getattr(self.fabric.net, "queue_depth_peaks", None)
        if peaks is None:
            return 0
        try:
            depths = peaks()
        except Exception:
            return 0
        return max(depths.values(), default=0)

    # ------------------------------------------------------------------
    def hot_switches(self, n: int = 3) -> list[str]:
        """Switches touching the busiest links, busiest first.

        Tree-planning algorithms can steer their root away from these
        (``params["tree_root"]``) on topologies where the planner
        honors an explicit root.
        """
        traffic = getattr(self.fabric.net, "traffic", None)
        if traffic is None:
            return []
        topo = self.fabric.topology
        ranked: list[str] = []
        for link, _nbytes in traffic.hot_links(2 * n):
            src, _, dst = link.partition("->")
            for node in (src, dst):
                if topo.is_switch(node) and node not in ranked:
                    ranked.append(node)
        return ranked[:n]

    def observe(self) -> dict:
        """One snapshot of everything the planner consumes."""
        return {
            "congestion": self.level(),
            "in_flight": self.fabric.in_flight,
            "peak_queue_depth": self._peak_queue_depth(),
            "hot_switches": self.hot_switches(),
        }


def congestion_level(fabric: Optional[object]) -> int:
    """Convenience: the quantized level for ``fabric`` (0 if None)."""
    if fabric is None:
        return 0
    return OnlineTuner(fabric).level()
