"""Offline calibration of the planner's cost model.

Runs the event-driven simulator over a small (family × size × hosts)
grid for every priceable algorithm, then least-squares fits the
``(a, b, c)`` coefficients of the closed form in
:mod:`repro.comm.planner.model` per (algorithm, family), and the
congestion coefficient ``g`` from multi-tenant overlap runs on a
shared fabric.  The fitted table is committed as
``coefficients.json`` next to the model (CLI:
``python -m repro planner fit``), so ``auto_mode="cost"`` never pays
simulation time at selection.

Everything here is deterministic — the simulator is seeded and the
grid is fixed — so refitting on an unchanged simulator reproduces the
committed coefficients bit for bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.fabric import Fabric
from repro.comm.future import wait_all
from repro.comm.planner.model import (
    DEFAULT_COEFFICIENTS_PATH,
    FEATURES,
    link_model,
    reset_default_model,
)
from repro.comm.registry import get_algorithm
from repro.comm.request import CollectiveRequest
from repro.utils.units import parse_size

#: The default calibration grid.  Small enough for CI's planner-smoke
#: job, wide enough to identify three coefficients per (algorithm,
#: family) pair from six (dense) or twelve (sparse) observations.
FAMILIES = ("fat-tree", "dragonfly", "torus")
SIZES = ("64KiB", "256KiB", "1MiB", "4MiB", "16MiB")
HOSTS = (8, 16)
DENSE_ALGORITHMS = ("ring", "swing", "butterfly", "flare_dense")
SPARSE_ALGORITHMS = ("sparcml", "flare_sparse")
SPARSE_DENSITIES = (0.1, 0.4)
CONGESTION_TENANTS = 4


def topology_params(family: str, n_hosts: int) -> dict:
    """Grid wiring for ``n_hosts`` (power of two, >= 8) per family."""
    if family == "fat-tree":
        return {"n_hosts": n_hosts, "hosts_per_leaf": 4, "n_spines": 2}
    if family == "dragonfly":
        return {
            "n_groups": 2,
            "routers_per_group": n_hosts // 4,
            "hosts_per_router": 2,
        }
    if family == "torus":
        switches = n_hosts // 2
        dim_x = 2
        while (dim_x * 2) * (dim_x * 2) <= switches:
            dim_x *= 2
        return {
            "dim_x": dim_x,
            "dim_y": switches // dim_x,
            "hosts_per_switch": 2,
        }
    raise ValueError(f"no grid wiring for family {family!r}")


def _grid_communicator(family: str, n_hosts: int) -> Communicator:
    return Communicator(
        n_hosts=n_hosts,
        topology=family,
        topology_params=topology_params(family, n_hosts),
    )


def _tuned_knobs(algorithm: str, family: str, n_hosts: int, nbytes) -> dict:
    """The chunking knobs ``auto_mode="cost"`` would deploy for this
    point.  Calibrating with them keeps the fitted slopes honest: the
    model prices exactly the configuration the planner will issue."""
    from repro.comm.planner import tune_knobs

    request = _point_request(family, n_hosts, nbytes)
    tune_knobs(algorithm, request)
    return {
        k: v
        for k, v in request.params.items()
        if k in ("sub_chunk_bytes", "chunk_bytes")
    }


def measure(
    algorithm: str,
    family: str,
    n_hosts: int,
    nbytes,
    *,
    sparse: bool = False,
    density: float = 1.0,
) -> float:
    """Simulated completion time (ns) for one solo grid point."""
    comm = _grid_communicator(family, n_hosts)
    result = comm.allreduce(
        nbytes,
        algorithm=algorithm,
        sparse=sparse,
        density=density,
        **_tuned_knobs(algorithm, family, n_hosts, nbytes),
    )
    return result.time_ns


def _point_request(
    family: str, n_hosts: int, nbytes, *, sparse: bool = False,
    density: float = 1.0,
) -> CollectiveRequest:
    return CollectiveRequest(
        nbytes=nbytes,
        n_hosts=n_hosts,
        sparse=sparse,
        density=density,
        params={
            "topology": family,
            "topology_params": topology_params(family, n_hosts),
        },
    )


def _nonneg_lstsq(A: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Least squares with coefficients clamped non-negative.

    Negative a/b/c would price some request negative; instead of
    trusting extrapolation, drop the most-negative feature and refit
    (active-set flavor of NNLS, small enough here to be exact).
    """
    active = list(range(A.shape[1]))
    coef = np.zeros(A.shape[1])
    while active:
        sol, *_ = np.linalg.lstsq(A[:, active], y, rcond=None)
        if (sol >= -1e-12).all():
            coef[active] = np.maximum(sol, 0.0)
            return coef
        active.pop(int(np.argmin(sol)))
    return coef


def fit_point_set(
    algorithm: str,
    family: str,
    *,
    sizes=SIZES,
    hosts=HOSTS,
    sparse: bool = False,
    densities=SPARSE_DENSITIES,
) -> Optional[dict]:
    """Fit (a, b, c) for one (algorithm, family) pair; None if the
    algorithm cannot run anywhere on the grid (capability-rejected)."""
    features = FEATURES[algorithm]
    rows, targets = [], []
    density_grid = densities if sparse else (1.0,)
    for n_hosts in hosts:
        for size in sizes:
            for density in density_grid:
                request = _point_request(
                    family, n_hosts, size, sparse=sparse, density=density
                )
                if get_algorithm(algorithm).caps.rejects(request) is not None:
                    continue
                f_alpha, f_beta = features(request)
                alpha, beta = link_model(request)
                time_ns = measure(
                    algorithm, family, n_hosts, size,
                    sparse=sparse, density=density,
                )
                rows.append([f_alpha * alpha, f_beta / beta, 1.0])
                targets.append(time_ns)
    if len(rows) < 3:
        return None
    A = np.asarray(rows)
    y = np.asarray(targets)
    # Weight each observation by 1/target: minimize *relative* error.
    # Unweighted least squares is dominated by the largest sizes (their
    # residuals are thousands of times bigger in ns), which wrecks the
    # small-message end of the fit — exactly where algorithm choice
    # matters most.
    a, b, c = _nonneg_lstsq(A / y[:, None], np.ones_like(y))
    return {"a": float(a), "b": float(b), "c": float(c)}


def fit_congestion(
    algorithm: str,
    family: str,
    coeffs: dict,
    *,
    n_hosts: int = 8,
    nbytes="1MiB",
    tenants: int = CONGESTION_TENANTS,
    sparse: bool = False,
    density: float = 0.25,
) -> float:
    """Fit ``g`` from the overlap slowdown of ``tenants`` concurrent
    identical collectives on one shared fabric.

    The model says ``overlapped = solo + g * level * b * f_beta/beta``
    with ``level = tenants - 1`` (each co-runner is one congestion
    unit), so ``g`` falls out of one measured ratio.
    """
    kwargs = dict(sparse=sparse, density=density) if sparse else {}
    kwargs.update(_tuned_knobs(algorithm, family, n_hosts, nbytes))
    solo = measure(algorithm, family, n_hosts, nbytes, sparse=sparse,
                   density=density if sparse else 1.0)
    fabric = Fabric(
        topology=family,
        topology_params=topology_params(family, n_hosts),
        n_hosts=n_hosts,
    )
    comms = [fabric.communicator(name=f"cal{i}") for i in range(tenants)]
    futures = [
        c.iallreduce(nbytes, algorithm=algorithm, **kwargs) for c in comms
    ]
    wait_all(futures)
    overlapped = max(f.result().time_ns for f in futures)
    request = _point_request(
        family, n_hosts, nbytes, sparse=sparse,
        density=density if sparse else 1.0,
    )
    _, f_beta = FEATURES[algorithm](request)
    _, beta = link_model(request)
    beta_term = coeffs["b"] * f_beta / beta
    level = max(1, tenants - 1)
    if beta_term <= 0:
        return 0.0
    g = (overlapped - solo) / (level * beta_term)
    return float(min(10.0, max(0.0, g)))


def calibrate(
    *,
    families=FAMILIES,
    sizes=SIZES,
    hosts=HOSTS,
    congestion_tenants: int = CONGESTION_TENANTS,
    log=None,
) -> dict:
    """Fit the full coefficient table over the grid.

    Returns ``{algorithm: {family: {a, b, c, g}}}``.
    """
    say = log or (lambda *_: None)
    table: dict[str, dict] = {}
    jobs = [(alg, False) for alg in DENSE_ALGORITHMS]
    jobs += [(alg, True) for alg in SPARSE_ALGORITHMS]
    for algorithm, sparse in jobs:
        for family in families:
            coeffs = fit_point_set(
                algorithm, family, sizes=sizes, hosts=hosts, sparse=sparse
            )
            if coeffs is None:
                say(f"{algorithm}/{family}: no feasible grid points, skipped")
                continue
            coeffs["g"] = fit_congestion(
                algorithm,
                family,
                coeffs,
                n_hosts=min(hosts),
                nbytes=sizes[-1],
                tenants=congestion_tenants,
                sparse=sparse,
            )
            table.setdefault(algorithm, {})[family] = coeffs
            say(
                f"{algorithm}/{family}: a={coeffs['a']:.3g} "
                f"b={coeffs['b']:.3g} c={coeffs['c']:.3g} g={coeffs['g']:.3g}"
            )
    return table


def write_coefficients(
    table: dict,
    path: Optional[str] = None,
    *,
    grid: Optional[dict] = None,
) -> Path:
    """Serialize a fitted table (plus its grid provenance) to JSON and
    drop the cached default model so new lookups see the refit."""
    path = Path(path) if path is not None else DEFAULT_COEFFICIENTS_PATH
    payload = {
        "version": 1,
        "grid": grid
        or {
            "families": list(FAMILIES),
            "sizes": [int(parse_size(s)) for s in SIZES],
            "hosts": list(HOSTS),
            "congestion_tenants": CONGESTION_TENANTS,
        },
        "coefficients": table,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    reset_default_model()
    return path
