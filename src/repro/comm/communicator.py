"""The `Communicator` facade — the library's front door.

One NCCL/torch.distributed-style object serving every allreduce flavor
in the repository through a single request/result shape::

    comm = Communicator(n_hosts=16)
    result = comm.allreduce("1MiB")                      # auto-selected
    result = comm.allreduce("1MiB", algorithm="ring")    # explicit
    future = comm.iallreduce("1MiB")                     # non-blocking
    ...
    future.result()

Plans are cached by request shape (LRU), so the production steady
state — the same allreduce issued every iteration — performs tree
construction, handler selection, and message sizing exactly once.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Optional, Union

import numpy as np

from repro.collectives.result import CollectiveResult
from repro.comm.future import CollectiveFuture
from repro.comm.plan import CacheInfo, CollectivePlan, PlanCache, build_plan
from repro.comm.registry import iter_algorithms, resolve
from repro.comm.request import CollectiveRequest
from repro.core.ops import ReductionOp

#: Keyword arguments of ``allreduce``/``iallreduce`` that tune a single
#: execution rather than the plan (excluded from the cache key).
EXECUTE_KEYS = frozenset({"seed", "jitter", "cold_start", "verify"})


class Communicator:
    """Issues collectives over a fixed set of participants.

    Parameters
    ----------
    n_hosts:
        Default participant count (payload-carrying calls infer it from
        the payload's leading dimension instead).
    topology:
        Wiring for the network-schedule algorithms: a family name from
        :func:`repro.network.available_topologies` (built from
        ``topology_params``) or a prebuilt
        :class:`~repro.network.topology.Topology`.  ``None`` keeps the
        paper's fat tree sized from ``hosts_per_leaf``/``n_spines``.
    routing:
        Path-selection policy (``"shortest"``/``"ecmp"``/
        ``"adaptive"``); default is seeded deterministic ECMP.
    hosts_per_leaf, n_spines:
        Default fat-tree shape when no ``topology`` is given.
    n_clusters, cores_per_cluster:
        Simulated switch dimensions for the PsPIN-level algorithms.
    plan_cache_size:
        LRU capacity of the plan cache (keyed on request shape and
        topology fingerprint).
    max_workers:
        Worker threads backing :meth:`iallreduce`.
    """

    def __init__(
        self,
        n_hosts: int = 64,
        *,
        topology=None,
        topology_params: Optional[dict] = None,
        routing: Optional[str] = None,
        routing_seed: int = 0,
        hosts_per_leaf: Optional[int] = None,
        n_spines: int = 4,
        n_clusters: int = 4,
        cores_per_cluster: int = 8,
        plan_cache_size: int = 64,
        max_workers: int = 4,
    ) -> None:
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if topology is not None and not isinstance(topology, str):
            n_hosts = topology.n_hosts
        elif isinstance(topology, str) and (
            topology != "fat-tree" or topology_params
        ):
            # Reconcile the communicator's host count with the named
            # family: families parameterized by n_hosts (multi-rail,
            # fat-tree-with-params) get it forwarded; families whose
            # parameters imply the host count (torus dims, dragonfly
            # groups) size the communicator instead.  (The bare fat
            # tree keeps the legacy request-driven sizing.)
            import inspect

            from repro.network.topology import TOPOLOGIES

            cls = TOPOLOGIES.get(topology)
            if cls is not None:       # unknown families fail at resolve()
                params = dict(topology_params or {})
                if "n_hosts" in inspect.signature(cls.__init__).parameters:
                    params.setdefault("n_hosts", n_hosts)
                    topology_params = params
                n_hosts = cls(**params).n_hosts
        self.n_hosts = n_hosts
        self._defaults: dict = {
            "n_spines": n_spines,
            "n_clusters": n_clusters,
            "cores_per_cluster": cores_per_cluster,
        }
        if topology is not None:
            self._defaults["topology"] = topology
        if topology_params is not None:
            self._defaults["topology_params"] = topology_params
        if routing is not None:
            self._defaults["routing"] = routing
        if routing_seed:
            self._defaults["routing_seed"] = routing_seed
        if hosts_per_leaf is not None:
            self._defaults["hosts_per_leaf"] = hosts_per_leaf
        self._cache = PlanCache(plan_cache_size)
        self.plans_built = 0
        self._max_workers = max_workers
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def make_request(
        self,
        data,
        *,
        op: Union[str, ReductionOp] = "sum",
        algorithm: str = "auto",
        dtype: Optional[str] = None,
        reproducible: bool = False,
        sparse: bool = False,
        density: float = 1.0,
        n_hosts: Optional[int] = None,
        **params,
    ) -> tuple[CollectiveRequest, Optional[np.ndarray]]:
        """Normalize ``data`` into a (request, payloads) pair.

        ``data`` is either a size (int/"64KiB" — size-only simulation)
        or per-host payloads (ndarray / sequence of arrays with the
        host dimension first — the values are actually reduced).
        """
        payloads: Optional[np.ndarray] = None
        if isinstance(data, np.ndarray) or (
            isinstance(data, (list, tuple))
            and len(data) > 0
            and isinstance(data[0], np.ndarray)
        ):
            payloads = np.asarray(data)
            if payloads.ndim < 2:
                raise ValueError(
                    "payload arrays need shape (n_hosts, ...); got "
                    f"{payloads.shape}"
                )
            inferred_hosts = payloads.shape[0]
            if n_hosts is not None and n_hosts != inferred_hosts:
                raise ValueError(
                    f"n_hosts={n_hosts} contradicts payload shape "
                    f"{payloads.shape}"
                )
            n_hosts = inferred_hosts
            nbytes: Union[int, float, str] = payloads[0].nbytes
            if dtype is None:
                dtype = str(payloads.dtype)
        else:
            nbytes = data
        request = CollectiveRequest(
            nbytes=nbytes,
            n_hosts=n_hosts if n_hosts is not None else self.n_hosts,
            op=op,
            dtype=dtype or "float32",
            algorithm=algorithm,
            reproducible=reproducible,
            sparse=sparse,
            density=density,
            params={**self._defaults, **params},
        )
        return request, payloads

    # ------------------------------------------------------------------
    # Plan / execute
    # ------------------------------------------------------------------
    def plan(
        self,
        request: Optional[CollectiveRequest] = None,
        /,
        payloads: Optional[np.ndarray] = None,
        **kwargs,
    ) -> CollectivePlan:
        """Resolve and plan ``request``, consulting the plan cache.

        Accepts either a prebuilt :class:`CollectiveRequest` or the
        keyword form ``comm.plan(nbytes=..., algorithm=...)``.
        ``payloads`` (when the caller has them) steer auto selection to
        an algorithm that can actually execute them.
        """
        if request is None:
            data = kwargs.pop("nbytes", None) or kwargs.pop("data", None)
            if data is None:
                raise TypeError("plan() needs a request or nbytes=...")
            for key in EXECUTE_KEYS:      # execute-time knobs never shape a plan
                kwargs.pop(key, None)
            request, inferred = self.make_request(data, **kwargs)
            if payloads is None:
                payloads = inferred
        entry = resolve(request, payloads)

        def factory() -> CollectivePlan:
            self.plans_built += 1
            return build_plan(request, entry)

        key = (entry.name,) + request.signature()
        return self._cache.get_or_build(key, factory)

    def allreduce(
        self,
        data,
        op: Union[str, ReductionOp] = "sum",
        algorithm: str = "auto",
        **kwargs,
    ) -> CollectiveResult:
        """Blocking allreduce; returns the unified result."""
        execute_args = {k: kwargs.pop(k) for k in tuple(kwargs) if k in EXECUTE_KEYS}
        request, payloads = self.make_request(
            data, op=op, algorithm=algorithm, **kwargs
        )
        plan = self.plan(request, payloads=payloads)
        return plan.execute(payloads, **execute_args)

    def iallreduce(
        self,
        data,
        op: Union[str, ReductionOp] = "sum",
        algorithm: str = "auto",
        **kwargs,
    ) -> CollectiveFuture:
        """Non-blocking allreduce; returns a future immediately.

        Planning happens on the issuing thread (so capability errors
        raise synchronously and the plan cache is warmed); the data
        plane runs on the worker pool.
        """
        execute_args = {k: kwargs.pop(k) for k in tuple(kwargs) if k in EXECUTE_KEYS}
        request, payloads = self.make_request(
            data, op=op, algorithm=algorithm, **kwargs
        )
        plan = self.plan(request, payloads=payloads)
        inner = self._executor().submit(plan.execute, payloads, **execute_args)
        return CollectiveFuture(inner, request, plan.algorithm)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Plan-cache counters (hits == executions that skipped planning)."""
        return self._cache.info()

    def clear_cache(self) -> None:
        self._cache.clear()

    @staticmethod
    def algorithms() -> list[dict]:
        """Registry listing: name + declared capabilities per algorithm."""
        out = []
        for entry in iter_algorithms():
            caps = entry.caps
            out.append(
                {
                    "name": entry.name,
                    "dense": caps.dense,
                    "sparse": caps.sparse,
                    "in_network": caps.in_network,
                    "reproducible": caps.reproducible,
                    "ops": caps.ops,
                    "custom_ops": caps.custom_ops,
                    "power_of_two_hosts": caps.power_of_two_hosts,
                    "topologies": caps.topologies,
                    "priority": caps.priority,
                    "description": caps.description,
                }
            )
        return out

    def _executor(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-comm",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (waits for in-flight collectives)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Communicator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
