"""The `Communicator` facade — the library's front door.

One NCCL/torch.distributed-style object serving every allreduce flavor
in the repository through a single request/result shape::

    comm = Communicator(n_hosts=16)
    result = comm.allreduce("1MiB")                      # auto-selected
    result = comm.allreduce("1MiB", algorithm="ring")    # explicit
    future = comm.iallreduce("1MiB")                     # non-blocking
    ...
    future.result()

Plans are cached by request shape (LRU), so the production steady
state — the same allreduce issued every iteration — performs tree
construction, handler selection, and message sizing exactly once.

A communicator is one *tenant* of a :class:`~repro.comm.fabric.Fabric`:
attach several to one fabric (``fabric.communicator(name=...,
weight=...)``) and their in-flight collectives interleave in the
fabric's single event loop, contending for links and switch resources
under per-tenant QoS arbitration.  A lone ``Communicator(...)``
implicitly creates a private fabric on first non-blocking use, so the
single-tenant API (and its results) are unchanged.
"""

from __future__ import annotations

import inspect
from typing import Optional, Union

import numpy as np

from repro.collectives.result import CollectiveResult
from repro.comm.future import CollectiveFuture
from repro.comm.plan import CacheInfo, CollectivePlan, PlanCache, build_plan
from repro.comm.registry import iter_algorithms, resolve
from repro.comm.request import CollectiveRequest
from repro.core.ops import ReductionOp
from repro.network.topology import TOPOLOGIES

#: Keyword arguments of ``allreduce``/``iallreduce`` that tune a single
#: execution rather than the plan (excluded from the cache key).
EXECUTE_KEYS = frozenset({"seed", "jitter", "cold_start", "verify"})


def resolve_topology_hosts(
    topology, topology_params: Optional[dict], n_hosts: int
) -> tuple[int, Optional[dict]]:
    """Reconcile a communicator's host count with its topology choice.

    Returns the effective ``(n_hosts, topology_params)`` pair:

    * a prebuilt :class:`~repro.network.topology.Topology` dictates the
      host count outright;
    * a named family parameterized by ``n_hosts`` (multi-rail,
      fat-tree-with-params) gets the communicator's count forwarded
      into its parameters;
    * a named family whose parameters imply the host count (torus
      dims, dragonfly groups) sizes the communicator instead;
    * the bare default fat tree keeps the legacy request-driven sizing
      (both inputs pass through untouched).

    Unknown family names also pass through — they fail with the full
    catalog at algorithm resolution, not here.
    """
    if topology is not None and not isinstance(topology, str):
        return topology.n_hosts, topology_params
    if isinstance(topology, str) and (topology != "fat-tree" or topology_params):
        cls = TOPOLOGIES.get(topology)
        if cls is not None:       # unknown families fail at resolve()
            params = dict(topology_params or {})
            if "n_hosts" in inspect.signature(cls.__init__).parameters:
                params.setdefault("n_hosts", n_hosts)
                topology_params = params
            n_hosts = cls(**params).n_hosts
    return n_hosts, topology_params


class Communicator:
    """Issues collectives over a fixed set of participants.

    Parameters
    ----------
    n_hosts:
        Default participant count (payload-carrying calls infer it from
        the payload's leading dimension instead).
    topology:
        Wiring for the network-schedule algorithms: a family name from
        :func:`repro.network.available_topologies` (built from
        ``topology_params``) or a prebuilt
        :class:`~repro.network.topology.Topology`.  ``None`` keeps the
        paper's fat tree sized from ``hosts_per_leaf``/``n_spines``.
    routing:
        Path-selection policy (``"shortest"``/``"ecmp"``/
        ``"adaptive"``); default is seeded deterministic ECMP.
    hosts_per_leaf, n_spines:
        Default fat-tree shape when no ``topology`` is given.
    n_clusters, cores_per_cluster:
        Simulated switch dimensions for the PsPIN-level algorithms.
    plan_cache_size:
        LRU capacity of the plan cache (keyed on request shape and
        topology fingerprint).
    fabric:
        Attach this communicator as a tenant of a shared
        :class:`~repro.comm.fabric.Fabric` (whose topology and routing
        it then inherits — passing conflicting wiring raises).  ``None``
        keeps the communicator standalone; a private fabric is created
        implicitly the first time :meth:`iallreduce` needs one.
    name, weight:
        Tenant identity and QoS share in the fabric's link arbitration
        (only meaningful with a shared fabric).
    auto_mode:
        Default selection strategy for ``algorithm="auto"`` requests:
        ``"static"`` (the priority ladder) or ``"cost"`` (the fitted
        cost model of :mod:`repro.comm.planner`, congestion-aware when
        fabric-attached).  Per-call ``auto_mode=...`` overrides.
    """

    def __init__(
        self,
        n_hosts: int = 64,
        *,
        topology=None,
        topology_params: Optional[dict] = None,
        routing: Optional[str] = None,
        routing_seed: int = 0,
        hosts_per_leaf: Optional[int] = None,
        n_spines: int = 4,
        n_clusters: int = 4,
        cores_per_cluster: int = 8,
        plan_cache_size: int = 64,
        fabric=None,
        name: Optional[str] = None,
        weight: float = 1.0,
        auto_mode: Optional[str] = None,
    ) -> None:
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        if fabric is not None:
            if topology is not None or topology_params is not None:
                raise ValueError(
                    "a fabric-attached communicator inherits the fabric's "
                    "topology; do not pass topology/topology_params"
                )
            topology = fabric.topology
            if routing is None:
                routing = fabric.routing
                routing_seed = fabric.routing_seed
        n_hosts, topology_params = resolve_topology_hosts(
            topology, topology_params, n_hosts
        )
        self.n_hosts = n_hosts
        self.name = name
        self.weight = float(weight)
        self._defaults: dict = {
            "n_spines": n_spines,
            "n_clusters": n_clusters,
            "cores_per_cluster": cores_per_cluster,
        }
        if topology is not None:
            self._defaults["topology"] = topology
        if topology_params is not None:
            self._defaults["topology_params"] = topology_params
        if routing is not None:
            self._defaults["routing"] = routing
        if routing_seed:
            self._defaults["routing_seed"] = routing_seed
        if hosts_per_leaf is not None:
            self._defaults["hosts_per_leaf"] = hosts_per_leaf
        if auto_mode is not None:
            self._defaults["auto_mode"] = auto_mode
        self._cache = PlanCache(plan_cache_size)
        self.plans_built = 0
        self._fabric = fabric
        self._attached = fabric is not None
        if fabric is not None:
            self.name = fabric._register(self)

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def make_request(
        self,
        data,
        *,
        op: Union[str, ReductionOp] = "sum",
        algorithm: str = "auto",
        dtype: Optional[str] = None,
        reproducible: bool = False,
        sparse: bool = False,
        density: float = 1.0,
        n_hosts: Optional[int] = None,
        **params,
    ) -> tuple[CollectiveRequest, Optional[np.ndarray]]:
        """Normalize ``data`` into a (request, payloads) pair.

        ``data`` is either a size (int/"64KiB" — size-only simulation)
        or per-host payloads (ndarray / sequence of arrays with the
        host dimension first — the values are actually reduced).

        ``hosts=(...)`` (a placement) restricts the collective to that
        host subset of the topology; it implies (and must agree with)
        ``n_hosts``, and is normalized to a tuple so equal placements
        share one plan-cache entry.
        """
        if params.get("hosts", False) is None:
            params.pop("hosts")           # explicit None = no placement
        if "hosts" in params:
            hosts = tuple(params["hosts"])
            if not hosts:
                raise ValueError("placement hosts must not be empty")
            params["hosts"] = hosts
            if n_hosts is None:
                n_hosts = len(hosts)
            elif n_hosts != len(hosts):
                raise ValueError(
                    f"n_hosts={n_hosts} contradicts placement of "
                    f"{len(hosts)} hosts"
                )
        payloads: Optional[np.ndarray] = None
        if isinstance(data, np.ndarray) or (
            isinstance(data, (list, tuple))
            and len(data) > 0
            and isinstance(data[0], np.ndarray)
        ):
            try:
                payloads = np.asarray(data)
            except ValueError as exc:     # ragged list of arrays
                raise ValueError(
                    "payload arrays must stack into one dense "
                    "(n_hosts, ...) array — every host's array needs the "
                    "same shape and dtype"
                ) from exc
            if payloads.ndim < 2:
                raise ValueError(
                    "payload arrays need shape (n_hosts, ...); got "
                    f"{payloads.shape}"
                )
            inferred_hosts = payloads.shape[0]
            if n_hosts is not None and n_hosts != inferred_hosts:
                raise ValueError(
                    f"n_hosts={n_hosts} contradicts payload shape "
                    f"{payloads.shape}"
                )
            n_hosts = inferred_hosts
            nbytes: Union[int, float, str] = payloads[0].nbytes
            if dtype is None:
                dtype = str(payloads.dtype)
        else:
            nbytes = data
        request = CollectiveRequest(
            nbytes=nbytes,
            n_hosts=n_hosts if n_hosts is not None else self.n_hosts,
            op=op,
            dtype=dtype or "float32",
            algorithm=algorithm,
            reproducible=reproducible,
            sparse=sparse,
            density=density,
            params={**self._defaults, **params},
        )
        return request, payloads

    # ------------------------------------------------------------------
    # Plan / execute
    # ------------------------------------------------------------------
    def plan(
        self,
        request: Optional[CollectiveRequest] = None,
        /,
        payloads: Optional[np.ndarray] = None,
        **kwargs,
    ) -> CollectivePlan:
        """Resolve and plan ``request``, consulting the plan cache.

        Accepts either a prebuilt :class:`CollectiveRequest` or the
        keyword form ``comm.plan(nbytes=..., algorithm=...)``.
        ``payloads`` (when the caller has them) steer auto selection to
        an algorithm that can actually execute them.
        """
        if request is None:
            data = kwargs.pop("nbytes", None) or kwargs.pop("data", None)
            if data is None:
                raise TypeError("plan() needs a request or nbytes=...")
            for key in EXECUTE_KEYS:      # execute-time knobs never shape a plan
                kwargs.pop(key, None)
            request, inferred = self.make_request(data, **kwargs)
            if payloads is None:
                payloads = inferred
        if (
            request.algorithm == "auto"
            and request.params.get("auto_mode") == "cost"
            and "congestion" not in request.params
            and self._fabric is not None
        ):
            # Online re-tuning: fold the fabric's live load regime into
            # the cost model's contention term.  The level is quantized
            # (see planner.tuner), so the cache key only changes when
            # the regime does.
            from repro.comm.planner.tuner import congestion_level

            request.params["congestion"] = congestion_level(self._fabric)
        entry = resolve(request, payloads)

        def factory() -> CollectivePlan:
            self.plans_built += 1
            return build_plan(request, entry)

        key = (entry.name,) + request.signature()
        return self._cache.get_or_build(key, factory)

    def allreduce(
        self,
        data,
        op: Union[str, ReductionOp] = "sum",
        algorithm: str = "auto",
        **kwargs,
    ) -> CollectiveResult:
        """Blocking allreduce; returns the unified result.

        Standalone communicators execute directly (the single-tenant
        fast path, bit-identical to the pre-fabric behavior); tenants
        of a shared fabric issue into the fabric's loop and drive it to
        completion, so blocking calls still contend with other
        tenants' in-flight work.
        """
        if self._attached:
            future = self.iallreduce(data, op=op, algorithm=algorithm, **kwargs)
            result = future.result()
            self._fabric.run()      # drain releases scheduled behind us
            return result
        execute_args = {k: kwargs.pop(k) for k in tuple(kwargs) if k in EXECUTE_KEYS}
        request, payloads = self.make_request(
            data, op=op, algorithm=algorithm, **kwargs
        )
        plan = self.plan(request, payloads=payloads)
        return plan.execute(payloads, **execute_args)

    def iallreduce(
        self,
        data,
        op: Union[str, ReductionOp] = "sum",
        algorithm: str = "auto",
        **kwargs,
    ) -> CollectiveFuture:
        """Non-blocking allreduce; returns a future immediately.

        Planning happens synchronously (so capability errors raise at
        the call site and the plan cache is warmed); the collective's
        events are then issued into the owning fabric's single event
        loop, where they interleave — and contend — with every other
        in-flight collective on the fabric.  ``future.result()`` (or
        ``wait_all``/``wait_any``) drives the loop to completion.
        """
        execute_args = {k: kwargs.pop(k) for k in tuple(kwargs) if k in EXECUTE_KEYS}
        request, payloads = self.make_request(
            data, op=op, algorithm=algorithm, **kwargs
        )
        plan = self.plan(request, payloads=payloads)
        fabric = self._ensure_fabric()
        return fabric.issue(
            self,
            plan,
            payloads,
            execute_args,
            tenant=self.name,
            weight=self.weight,
        )

    # ------------------------------------------------------------------
    # Fabric attachment
    # ------------------------------------------------------------------
    @property
    def fabric(self):
        """The fabric this communicator issues into (None until one
        exists — attach explicitly or call :meth:`iallreduce` once)."""
        return self._fabric

    def _ensure_fabric(self):
        if self._fabric is None:
            from repro.comm.fabric import Fabric

            d = self._defaults
            fabric = Fabric(
                topology=d.get("topology"),
                topology_params=d.get("topology_params"),
                n_hosts=self.n_hosts,
                routing=d.get("routing"),
                routing_seed=d.get("routing_seed", 0),
                hosts_per_leaf=d.get("hosts_per_leaf"),
                n_spines=d.get("n_spines", 4),
            )
            fabric._implicit = True
            self.name = fabric._register(self)
            self._fabric = fabric
        return self._fabric

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Plan-cache counters (hits == executions that skipped planning)."""
        return self._cache.info()

    def clear_cache(self) -> None:
        self._cache.clear()

    @staticmethod
    def algorithms() -> list[dict]:
        """Registry listing: name + declared capabilities per algorithm."""
        out = []
        for entry in iter_algorithms():
            caps = entry.caps
            out.append(
                {
                    "name": entry.name,
                    "dense": caps.dense,
                    "sparse": caps.sparse,
                    "in_network": caps.in_network,
                    "reproducible": caps.reproducible,
                    "ops": caps.ops,
                    "custom_ops": caps.custom_ops,
                    "power_of_two_hosts": caps.power_of_two_hosts,
                    "topologies": caps.topologies,
                    "priority": caps.priority,
                    "description": caps.description,
                }
            )
        return out

    def close(self) -> None:
        """Drain in-flight collectives (drives the fabric loop dry)."""
        if self._fabric is not None:
            self._fabric.run()

    def __enter__(self) -> "Communicator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
