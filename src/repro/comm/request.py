"""Unified collective request type.

A :class:`CollectiveRequest` describes *what* should be reduced — size,
participant count, operator, flexibility requirements (F1 custom ops,
F2 sparse, F3 reproducible) — plus algorithm-specific knobs in
``params``.  It deliberately excludes payload values: two requests with
the same shape are the same request, which is what makes the plan cache
(:mod:`repro.comm.plan`) effective in the production steady state of
repeated identical allreduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

#: fp32 wire size used to convert dense-equivalent bytes to elements
#: for the host-sparse size models (single definition, shared with the
#: SparCML schedule).
from repro.collectives.sparcml import DENSE_ELEMENT_BYTES
from repro.core.ops import BUILTIN_OPS, ReductionOp, get_op
from repro.utils.units import parse_size


@dataclass
class CollectiveRequest:
    """One collective's shape, independent of its payload values.

    Attributes
    ----------
    nbytes:
        Dense-equivalent bytes contributed per host (accepts "64KiB"
        style strings).
    n_hosts:
        Number of participating hosts (the reduction fan-in).
    collective:
        Collective kind; only ``"allreduce"`` is implemented today, the
        field exists so future collectives share the same front door.
    op:
        Reduction operator — a built-in name or a custom
        :class:`~repro.core.ops.ReductionOp` (flexibility axis F1).
    dtype:
        Element type name.
    algorithm:
        Registry algorithm name, or ``"auto"`` for capability-based
        selection.
    reproducible:
        Require bitwise-reproducible aggregation (F3).
    sparse / density:
        Sparse payload (F2) and its non-zero fraction.
    params:
        Algorithm-specific knobs, passed to the planner verbatim.
    """

    nbytes: Union[int, float, str]
    n_hosts: int
    collective: str = "allreduce"
    op: Union[str, ReductionOp] = "sum"
    dtype: str = "float32"
    algorithm: str = "auto"
    reproducible: bool = False
    sparse: bool = False
    density: float = 1.0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nbytes = float(parse_size(self.nbytes))
        if self.nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if not 0.0 < self.density <= 1.0:
            raise ValueError("density must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def operator(self) -> ReductionOp:
        return get_op(self.op)

    @property
    def op_name(self) -> str:
        return self.operator.name

    @property
    def custom_op(self) -> bool:
        """True when ``op`` is not one of the built-in operators."""
        operator = self.operator
        return BUILTIN_OPS.get(operator.name) is not operator

    @property
    def total_elements(self) -> float:
        """Dense vector length implied by ``nbytes`` (fp32 elements)."""
        return self.nbytes / DENSE_ELEMENT_BYTES

    @property
    def topology_family(self) -> str:
        """The wiring family this request runs over.

        ``params["topology"]`` may be a family name or a built
        :class:`~repro.network.topology.Topology`; absent means the
        paper's default fat tree.
        """
        topo = self.params.get("topology")
        if topo is None:
            return "fat-tree"
        if isinstance(topo, str):
            return topo
        return topo.family

    @property
    def topology_aggregates(self) -> bool:
        """Whether the requested fabric offers in-network aggregation."""
        topo = self.params.get("topology")
        if topo is None or isinstance(topo, str):
            return bool(
                (self.params.get("topology_params") or {}).get("aggregation", True)
            )
        return topo.supports_aggregation

    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Hashable shape key for the plan cache.

        Payload-independent: repeated allreduces of the same shape map
        to the same signature regardless of the data they carry.
        """
        operator = self.operator
        op_key: Any = operator.name
        if self.custom_op:
            op_key = (operator.name, id(operator))
        return (
            self.collective,
            self.algorithm,
            self.nbytes,
            self.n_hosts,
            op_key,
            self.dtype,
            self.reproducible,
            self.sparse,
            self.density,
            _freeze(self.params),
        )


def _freeze(value: Any) -> Any:
    """Recursively convert ``value`` into something hashable.

    Containers become tuples.  Objects exposing a ``fingerprint()``
    (topologies) freeze to it — preferring ``live_fingerprint()`` when
    offered, which additionally folds in the current failure state —
    so two equal-but-distinct topology objects key the *same* cached
    plan, while ``fail_link``/``fail_switch`` mutations change the key
    and force a replan over the live (wounded) topology instead of
    serving a stale plan that routes through dead hardware.
    Everything else without a natural hash key (cost models,
    workloads) degrades to identity, which keeps the cache correct
    (same object -> same plan) at the price of a miss when an
    equal-but-distinct object is passed.
    """
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (str, bytes, int, float, bool)) or value is None:
        return value
    fingerprint = getattr(value, "live_fingerprint", None) or getattr(
        value, "fingerprint", None
    )
    if callable(fingerprint):
        return fingerprint()
    return (type(value).__name__, id(value))
