"""Simulation-core benchmark harness (the tracked perf trajectory).

Measures the two workloads the ROADMAP's throughput goal hinges on and
emits machine-readable JSON (``BENCH_simcore.json``) so speedups claimed
today remain verifiable tomorrow:

* **Fig. 11 dense sweep** — switch-level allreduces (single / multi(4) /
  tree aggregation) at paper scale (64 children, 4 simulated clusters),
  each point run through BOTH tiers of the simulation core: the
  packet-train fast path and the per-packet discrete-event path
  (``fast_path=False``).  Payloads are pre-generated and golden
  verification is disabled inside the timed region, so the numbers are
  simulator throughput (packets/second), not workload synthesis.
* **Two-tenant overlap** — two weighted tenants contending on one
  shared fabric (ring + flare_dense schedules with fine chunking),
  measured with the structural network fast paths on (default) and off
  (``REPRO_FASTPATH=0``: no route memoization, no burst sends, no
  uncontended-WFQ bypass).

Speedups are reported two ways:

* ``vs_des_path`` / ``vs_fastpath_off`` — measured live, in-process, on
  the current machine (hardware-independent ratios; this is what CI
  regression-gates).
* ``vs_pre_pr`` — against a recorded reference of the same scenarios
  measured at the pre-PR commit (see
  ``benchmarks/baselines/pre_pr_reference.json``); only meaningful on
  comparable hardware, kept for the historical trajectory.

``REPRO_BENCH_FULL=1`` extends the sweep with the small and the
back-pressured sizes (1 KiB … 512 KiB; at ≥256 KiB the L2 input buffers
fill, the fast path disengages by design, and both tiers take the
per-packet path).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Optional

DENSE_CHILDREN = 64
DENSE_CLUSTERS = 4
DENSE_DTYPE = "int32"
DENSE_ALGOS = ("single", "multi(4)", "tree")
DENSE_SIZES_FAST = ("16KiB", "64KiB", "128KiB")
DENSE_SIZES_FULL = ("1KiB", "4KiB", "16KiB", "64KiB", "128KiB", "512KiB")

OVERLAP_HOSTS = 16
OVERLAP_BYTES = 8 * 1024 * 1024
OVERLAP_SCENARIOS = (
    ("ring", {"sub_chunk_bytes": 8 * 1024.0}),
    ("flare_dense", {"chunk_bytes": 8 * 1024.0}),
)
OVERLAP_WEIGHTS = (4.0, 1.0)

#: Sharded-engine scaling sweep (tentpole PR): a cross-rack transport
#: storm on a fat tree, sequential engine vs the window-synchronized
#: PDES at increasing worker counts.  Send times are staggered on a
#: 3 ns grid so FIFO service order is tie-free and the runs are
#: bitwise-comparable.
SHARD_WORKER_COUNTS = (1, 2, 4, 8)
SHARD_STORM = {
    "n_hosts": 8192, "hosts_per_leaf": 32, "n_spines": 16,
    "msgs_per_host": 8,
}
#: Small storm used for the in-bench parity assertion (full arrival
#: log compared host-by-host, outside the timed region).
SHARD_PARITY = {
    "n_hosts": 512, "hosts_per_leaf": 16, "n_spines": 8,
    "msgs_per_host": 4,
}
#: Scale demonstrator (full mode): a 100k-host fabric, one cross-pod
#: message per host.
SHARD_SCALE = {
    "n_hosts": 102400, "hosts_per_leaf": 64, "n_spines": 32,
    "msgs_per_host": 1,
}


def bench_full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false", "no")


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Dense sweep
# ----------------------------------------------------------------------
def _dense_point(algo: str, size: str, reps: int) -> dict:
    from repro.core.allreduce import make_dense_blocks, plan_switch_allreduce

    plan = plan_switch_allreduce(
        size,
        children=DENSE_CHILDREN,
        algorithm=algo,
        dtype=DENSE_DTYPE,
        n_clusters=DENSE_CLUSTERS,
    )
    data = make_dense_blocks(
        DENSE_CHILDREN, plan.n_blocks, plan.elements_per_packet,
        dtype=DENSE_DTYPE, seed=0,
    )
    packets = plan.n_blocks * DENSE_CHILDREN
    results = {}
    tiers = {}
    for label, fast in (("fast", True), ("des", False)):
        plan.switch_cfg.fast_path = fast
        wall = _best_of(
            lambda: plan.execute(data=data, verify=False, seed=0), reps
        )
        res = plan.execute(data=data, verify=False, seed=0)
        results[label] = res
        tiers[label] = {
            "wall_s": wall,
            "packets_per_s": packets / wall,
            "fast_path_used": res.fast_path_used,
        }
    if results["fast"].makespan_cycles != results["des"].makespan_cycles:
        raise RuntimeError(
            f"parity violation at {algo}/{size}: fast makespan "
            f"{results['fast'].makespan_cycles} != DES "
            f"{results['des'].makespan_cycles}"
        )
    return {
        "algorithm": algo,
        "size": size,
        "packets": packets,
        "makespan_cycles": results["fast"].makespan_cycles,
        "deferred_arrivals": results["des"].deferred_arrivals,
        **tiers,
        "speedup_vs_des_path": tiers["des"]["wall_s"] / tiers["fast"]["wall_s"],
    }


def _run_dense_sweep(reps: int, full: bool) -> dict:
    sizes = DENSE_SIZES_FULL if full else DENSE_SIZES_FAST
    points = []
    for algo in DENSE_ALGOS:
        for size in sizes:
            points.append(_dense_point(algo, size, reps))
    fast_total = sum(p["fast"]["wall_s"] for p in points)
    des_total = sum(p["des"]["wall_s"] for p in points)
    packets_total = sum(p["packets"] for p in points)
    return {
        "children": DENSE_CHILDREN,
        "sim_clusters": DENSE_CLUSTERS,
        "dtype": DENSE_DTYPE,
        "sizes": list(sizes),
        "points": points,
        "fast_wall_s": fast_total,
        "des_wall_s": des_total,
        "fast_packets_per_s": packets_total / fast_total,
        "des_packets_per_s": packets_total / des_total,
        "speedup_vs_des_path": des_total / fast_total,
    }


# ----------------------------------------------------------------------
# Two-tenant overlap
# ----------------------------------------------------------------------
def _overlap_once(algo: str, params: dict) -> int:
    from repro.comm import wait_all
    from repro.comm.fabric import Fabric

    fabric = Fabric(n_hosts=OVERLAP_HOSTS)
    comms = [
        fabric.communicator(name=f"tenant{i}", weight=w)
        for i, w in enumerate(OVERLAP_WEIGHTS)
    ]
    futures = [
        c.iallreduce(OVERLAP_BYTES, algorithm=algo, **params) for c in comms
    ]
    wait_all(futures)
    fabric.run()
    return fabric.sim.events_processed


def _run_overlap(reps: int) -> dict:
    scenarios = []
    for mode_label, env_value in (("fast", None), ("off", "0")):
        saved = os.environ.get("REPRO_FASTPATH")
        if env_value is None:
            os.environ.pop("REPRO_FASTPATH", None)
        else:
            os.environ["REPRO_FASTPATH"] = env_value
        try:
            for algo, params in OVERLAP_SCENARIOS:
                events = _overlap_once(algo, params)   # warm-up + count
                wall = _best_of(lambda: _overlap_once(algo, params), reps)
                scenarios.append(
                    {
                        "algorithm": algo,
                        "mode": mode_label,
                        "params": {k: float(v) for k, v in params.items()},
                        "wall_s": wall,
                        "events": events,
                        "events_per_s": events / wall,
                    }
                )
        finally:
            if saved is None:
                os.environ.pop("REPRO_FASTPATH", None)
            else:
                os.environ["REPRO_FASTPATH"] = saved
    fast_total = sum(s["wall_s"] for s in scenarios if s["mode"] == "fast")
    off_total = sum(s["wall_s"] for s in scenarios if s["mode"] == "off")
    return {
        "tenants": len(OVERLAP_WEIGHTS),
        "weights": list(OVERLAP_WEIGHTS),
        "hosts": OVERLAP_HOSTS,
        "bytes": OVERLAP_BYTES,
        "scenarios": scenarios,
        "fast_wall_s": fast_total,
        "fastpath_off_wall_s": off_total,
        "speedup_vs_fastpath_off": off_total / fast_total,
    }


# ----------------------------------------------------------------------
# Sharded-engine scaling sweep
# ----------------------------------------------------------------------
def _shard_storm(workers: int, cfg: dict, collect: bool = False) -> dict:
    """One transport storm run; ``collect`` gathers the full arrival
    log for parity checking (never inside a timed measurement)."""
    from repro.network import FatTreeTopology, Message
    from repro.pspin.pdes import build_engine

    topo = FatTreeTopology(
        n_hosts=cfg["n_hosts"], hosts_per_leaf=cfg["hosts_per_leaf"],
        n_spines=cfg["n_spines"],
    )
    sim, net = build_engine(
        topo, workers=workers, router="updown", arbitration="fifo",
        coordinator_hosts=False,
    )
    arrivals: list = []
    if collect:
        for h in topo.hosts:
            net.on_deliver(
                h, lambda m, t, h=h: arrivals.append((h, m.src, m.nbytes, t))
            )
    else:
        sink = lambda m, t: None  # noqa: E731
        for h in topo.hosts:
            net.on_deliver(h, sink)
    hosts = topo.hosts
    n = len(hosts)
    k = 0
    for i, src in enumerate(hosts):
        for off in range(1, cfg["msgs_per_host"] + 1):
            net.send(
                Message(src, hosts[(i + off * 37) % n], 4096.0),
                at=3.0 * (k % 97),
            )
            k += 1
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    out = {
        "wall_s": wall,
        "events": sim.events_processed,
        "makespan_ns": sim.now,
    }
    if collect:
        out["arrivals"] = sorted(arrivals)
        out["per_link"] = dict(net.traffic.per_link)
    if hasattr(net, "shutdown"):
        net.shutdown()
    return out


def _run_shard_sweep(reps: int, worker_counts) -> dict:
    parity_ref = _shard_storm(0, SHARD_PARITY, collect=True)
    parity = []
    for w in worker_counts:
        run = _shard_storm(w, SHARD_PARITY, collect=True)
        ok = (
            run["arrivals"] == parity_ref["arrivals"]
            and run["per_link"] == parity_ref["per_link"]
            and run["makespan_ns"] == parity_ref["makespan_ns"]
        )
        parity.append({"workers": w, "bitwise_identical": ok})
        if not ok:
            raise RuntimeError(
                f"PDES parity violation at workers={w}: sharded storm "
                "diverged from the sequential engine"
            )

    base_wall = _best_of(lambda: _shard_storm(0, SHARD_STORM), reps)
    base = _shard_storm(0, SHARD_STORM)
    points = []
    for w in worker_counts:
        wall = _best_of(lambda: _shard_storm(w, SHARD_STORM), reps)
        run = _shard_storm(w, SHARD_STORM)
        if (run["events"], run["makespan_ns"]) != (
            base["events"], base["makespan_ns"]
        ):
            raise RuntimeError(
                f"PDES parity violation at workers={w}: event count or "
                "makespan diverged from the sequential engine"
            )
        speedup = base_wall / wall
        points.append({
            "workers": w,
            "wall_s": wall,
            "events_per_s": run["events"] / wall,
            "speedup_vs_sequential": speedup,
            "parallel_efficiency": speedup / w,
        })
    report = {
        "storm": dict(SHARD_STORM),
        "cpu_count": os.cpu_count(),
        "note": (
            "single-box measurement; the gain is dominated by vectorized "
            "window execution (numpy batches instead of per-event "
            "dispatch), not core-level parallelism"
        ),
        "sequential": {
            "wall_s": base_wall,
            "events": base["events"],
            "events_per_s": base["events"] / base_wall,
            "makespan_ns": base["makespan_ns"],
        },
        "points": points,
        "parity": {"storm": dict(SHARD_PARITY), "checks": parity},
    }
    scale_workers = min(4, max(worker_counts))
    scale = _shard_storm(scale_workers, SHARD_SCALE)
    report["scale_100k"] = {
        "storm": dict(SHARD_SCALE),
        "workers": scale_workers,
        "wall_s": scale["wall_s"],
        "events": scale["events"],
        "events_per_s": scale["events"] / scale["wall_s"],
        "makespan_ns": scale["makespan_ns"],
    }
    return report


# ----------------------------------------------------------------------
# Reference comparison + entry points
# ----------------------------------------------------------------------
def _apply_reference(report: dict, reference: dict) -> None:
    """Attach vs-pre-PR speedups from a recorded reference measurement
    (same scenarios, same methodology, pre-PR tree)."""
    ref_dense = {
        (p["algorithm"], p["size"]): p["wall_s"]
        for p in reference.get("dense_points", [])
    }
    matched_ref = matched_now = 0.0
    for p in report["dense_sweep"]["points"]:
        ref = ref_dense.get((p["algorithm"], p["size"]))
        if ref is not None:
            p["pre_pr_wall_s"] = ref
            p["speedup_vs_pre_pr"] = ref / p["fast"]["wall_s"]
            matched_ref += ref
            matched_now += p["fast"]["wall_s"]
    speedups = {}
    if matched_now:
        speedups["dense_sweep_vs_pre_pr"] = matched_ref / matched_now
    ref_overlap = {
        o["algorithm"]: o["wall_s"] for o in reference.get("overlap", [])
    }
    o_ref = o_now = 0.0
    for s in report["overlap"]["scenarios"]:
        if s["mode"] != "fast":
            continue
        ref = ref_overlap.get(s["algorithm"])
        if ref is not None:
            s["pre_pr_wall_s"] = ref
            s["speedup_vs_pre_pr"] = ref / s["wall_s"]
            o_ref += ref
            o_now += s["wall_s"]
    if o_now:
        speedups["overlap_vs_pre_pr"] = o_ref / o_now
    speedups["reference"] = {
        k: reference.get(k)
        for k in ("commit", "host", "note")
        if reference.get(k) is not None
    }
    report["speedups_vs_pre_pr"] = speedups


def run_simcore_bench(
    reps: int = 3,
    full: Optional[bool] = None,
    reference_path: Optional[str] = None,
    worker_counts=SHARD_WORKER_COUNTS,
) -> dict:
    """Run all scenarios; returns the JSON-serializable report."""
    if full is None:
        full = bench_full_mode()
    from repro.provenance.identity import run_identity

    report = {
        "benchmark": "simcore",
        "version": 2,
        "mode": "full" if full else "fast",
        "reps": reps,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        # Run identity: git SHA + dirty flag, seed-free engine config —
        # makes every BENCH_simcore.json attributable to its tree.
        "identity": run_identity(
            engine={
                "mode": "full" if full else "fast",
                "reps": reps,
                "workers": list(worker_counts or ()),
            },
        ),
        "dense_sweep": _run_dense_sweep(reps, full),
        "overlap": _run_overlap(reps),
    }
    if worker_counts:
        report["shard_sweep"] = _run_shard_sweep(reps, tuple(worker_counts))
    if reference_path is None:
        default_ref = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))),
            "benchmarks", "baselines", "pre_pr_reference.json",
        )
        if os.path.exists(default_ref):
            reference_path = default_ref
    if reference_path and os.path.exists(reference_path):
        with open(reference_path) as fh:
            _apply_reference(report, json.load(fh))
    return report


def check_regression(
    report: dict, baseline_path: str, tolerance: float = 0.30
) -> list[str]:
    """Compare throughput against a checked-in baseline report.

    Returns a list of failure strings (empty = pass).  Gated metrics are
    ratios and rates measured in-process, so they transfer across
    hardware far better than absolute wall clock:

    * the dense sweep's fast-vs-DES speedup must not regress by more
      than ``tolerance`` (the fast path losing its edge);
    * the overlap's fast-vs-off speedup likewise;
    * absolute packets/s may drift with runner hardware but still must
      stay within ``tolerance`` of the baseline *relative to the DES
      path* (both tiers run on the same box, so the ratio is stable).
    """
    with open(baseline_path) as fh:
        base = json.load(fh)
    failures: list[str] = []

    def gate(label: str, now: float, ref: float) -> None:
        if now < ref * (1.0 - tolerance):
            failures.append(
                f"{label}: {now:.3f} is >{tolerance:.0%} below baseline {ref:.3f}"
            )

    gate(
        "dense_sweep.speedup_vs_des_path",
        report["dense_sweep"]["speedup_vs_des_path"],
        base["dense_sweep"]["speedup_vs_des_path"],
    )
    gate(
        "overlap.speedup_vs_fastpath_off",
        report["overlap"]["speedup_vs_fastpath_off"],
        base["overlap"]["speedup_vs_fastpath_off"],
    )
    now_rel = (
        report["dense_sweep"]["fast_packets_per_s"]
        / report["dense_sweep"]["des_packets_per_s"]
    )
    ref_rel = (
        base["dense_sweep"]["fast_packets_per_s"]
        / base["dense_sweep"]["des_packets_per_s"]
    )
    gate("dense_sweep.relative_packets_per_s", now_rel, ref_rel)
    # Sharded-engine speedup ratios (measured vs the sequential engine
    # on the same box, so hardware-stable), per matching worker count.
    now_shard = report.get("shard_sweep")
    ref_shard = base.get("shard_sweep")
    if now_shard and ref_shard:
        ref_by_w = {
            p["workers"]: p["speedup_vs_sequential"]
            for p in ref_shard["points"]
        }
        for p in now_shard["points"]:
            ref = ref_by_w.get(p["workers"])
            if ref is not None:
                gate(
                    f"shard_sweep.speedup@{p['workers']}w",
                    p["speedup_vs_sequential"], ref,
                )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Simulation-core perf harness (see module docstring)."
    )
    parser.add_argument("--out", default="BENCH_simcore.json",
                        help="output JSON path (default BENCH_simcore.json)")
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of repetitions per measurement")
    parser.add_argument("--full", action="store_true",
                        help="full sweep (or REPRO_BENCH_FULL=1)")
    parser.add_argument("--reference", default=None,
                        help="pre-PR reference JSON (default: "
                        "benchmarks/baselines/pre_pr_reference.json)")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="fail (exit 1) on >tolerance regression vs a "
                        "checked-in baseline report")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="cap the sharded-engine sweep at N workers "
                        "(default: the full 1/2/4/8 sweep; 0 skips it)")
    args = parser.parse_args(argv)

    if args.workers is None:
        worker_counts = SHARD_WORKER_COUNTS
    else:
        worker_counts = tuple(
            w for w in SHARD_WORKER_COUNTS if w <= args.workers
        )
    report = run_simcore_bench(
        reps=args.reps,
        full=True if args.full else None,
        reference_path=args.reference,
        worker_counts=worker_counts,
    )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    dense = report["dense_sweep"]
    overlap = report["overlap"]
    print(f"[simcore] dense sweep: {dense['fast_packets_per_s'] / 1e3:.0f}k pkt/s "
          f"fast vs {dense['des_packets_per_s'] / 1e3:.0f}k pkt/s DES "
          f"=> {dense['speedup_vs_des_path']:.2f}x")
    print(f"[simcore] two-tenant overlap: {overlap['fast_wall_s'] * 1e3:.0f} ms "
          f"fast vs {overlap['fastpath_off_wall_s'] * 1e3:.0f} ms off "
          f"=> {overlap['speedup_vs_fastpath_off']:.2f}x")
    shard = report.get("shard_sweep")
    if shard:
        seq_rate = shard["sequential"]["events_per_s"]
        print(f"[simcore] shard sweep (sequential {seq_rate / 1e3:.0f}k ev/s):")
        for p in shard["points"]:
            print(f"[simcore]   {p['workers']}w: "
                  f"{p['events_per_s'] / 1e3:.0f}k ev/s "
                  f"=> {p['speedup_vs_sequential']:.2f}x "
                  f"(efficiency {p['parallel_efficiency']:.2f})")
        scale = shard.get("scale_100k")
        if scale:
            print(f"[simcore] 100k-host scale run: {scale['events']} events "
                  f"in {scale['wall_s']:.1f} s "
                  f"({scale['events_per_s'] / 1e3:.0f}k ev/s)")
    for key, value in sorted(report.get("speedups_vs_pre_pr", {}).items()):
        if isinstance(value, float):
            print(f"[simcore] {key}: {value:.2f}x")
    print(f"[simcore] report written to {args.out}")
    if args.check_against:
        failures = check_regression(report, args.check_against, args.tolerance)
        if failures:
            for f in failures:
                print(f"[simcore] REGRESSION {f}", file=sys.stderr)
            return 1
        print(f"[simcore] no regression vs {args.check_against} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
