"""Planner acceptance bench: cost-mode auto vs fixed vs static auto.

Sweeps the acceptance grid — topology family x message size x tenant
count on 16 hosts — and measures, per point, the shared-fabric
makespan of

* every **fixed** issuable dense algorithm (ring, swing, butterfly,
  flare_dense) at its default knobs — what a user gets by naming the
  algorithm explicitly,
* the **static** auto baseline: the highest-static-priority
  fabric-issuable candidate (the pre-planner behavior restricted to
  algorithms that actually contend on the wire), default knobs,
* the **cost** auto planner: tenants created with
  ``auto_mode="cost"``, plain ``algorithm="auto"`` requests, live
  congestion telemetry folded in between issues.

``check(rows)`` encodes the acceptance gate (CI's planner-smoke job):
cost-auto within 5% of the best fixed algorithm on *every* point, and
strictly faster than the static baseline on at least three points.

Makespan is the fabric drain time: all tenants issue at t=0 and the
clock when the last future settles is the number a shared cluster
cares about.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.comm.fabric import Fabric
from repro.comm.future import wait_all
from repro.comm.planner import ISSUABLE
from repro.comm.planner.calibrate import topology_params
from repro.comm.registry import match_algorithms
from repro.comm.request import CollectiveRequest

GRID_FAMILIES = ("fat-tree", "dragonfly", "torus")
GRID_SIZES = ("64KiB", "1MiB", "16MiB")
GRID_TENANTS = (1, 8)
GRID_HOSTS = 16
FIXED_ALGORITHMS = ("ring", "swing", "butterfly", "flare_dense")

#: cost-auto may be at most this much slower than the best fixed
#: algorithm on any grid point.
SLACK = 1.05
#: ... and must strictly beat the static baseline on at least this
#: many points.
MIN_WINS = 3


def _fabric(family: str, n_hosts: int) -> Fabric:
    return Fabric(
        topology=family,
        topology_params=topology_params(family, n_hosts),
        n_hosts=n_hosts,
    )


def static_issuable_pick(family: str, n_hosts: int, size) -> str:
    """The static auto baseline: highest-priority candidate among the
    fabric-issuable algorithms (atomic switch backends excluded — they
    model a lone switch with no wire time, so their 'makespan' is not
    comparable to a network schedule's)."""
    request = CollectiveRequest(
        nbytes=size,
        n_hosts=n_hosts,
        params={
            "topology": family,
            "topology_params": topology_params(family, n_hosts),
        },
    )
    for entry in match_algorithms(request):
        if entry.name in ISSUABLE:
            return entry.name
    raise RuntimeError(f"no issuable algorithm for {family}/{size}")


def measure_fixed(
    family: str, n_hosts: int, size, tenants: int, algorithm: str
) -> float:
    """Fabric makespan (ns) of ``tenants`` concurrent collectives all
    running ``algorithm`` at default knobs."""
    fabric = _fabric(family, n_hosts)
    comms = [fabric.communicator(name=f"t{i}") for i in range(tenants)]
    futures = [c.iallreduce(size, algorithm=algorithm) for c in comms]
    wait_all(futures)
    return fabric.now


def measure_cost_auto(
    family: str, n_hosts: int, size, tenants: int
) -> tuple[float, list[str]]:
    """Fabric makespan of ``tenants`` cost-mode auto collectives, plus
    the algorithms the planner picked (issue order)."""
    fabric = _fabric(family, n_hosts)
    comms = [
        fabric.communicator(name=f"t{i}", auto_mode="cost")
        for i in range(tenants)
    ]
    futures = [c.iallreduce(size, algorithm="auto") for c in comms]
    wait_all(futures)
    picks = [e["algorithm"] for e in fabric.timeline()]
    return fabric.now, picks


def run_point(family: str, size, tenants: int, n_hosts: int = GRID_HOSTS) -> dict:
    """Measure one grid point; returns a comparable row."""
    fixed = {
        alg: measure_fixed(family, n_hosts, size, tenants, alg)
        for alg in FIXED_ALGORITHMS
    }
    static_alg = static_issuable_pick(family, n_hosts, size)
    static_ns = fixed.get(static_alg)
    if static_ns is None:
        static_ns = measure_fixed(family, n_hosts, size, tenants, static_alg)
    cost_ns, picks = measure_cost_auto(family, n_hosts, size, tenants)
    best_alg = min(fixed, key=fixed.get)
    return {
        "family": family,
        "size": str(size),
        "tenants": tenants,
        "n_hosts": n_hosts,
        "fixed_ns": fixed,
        "best_fixed": best_alg,
        "best_fixed_ns": fixed[best_alg],
        "static_algorithm": static_alg,
        "static_ns": static_ns,
        "cost_ns": cost_ns,
        "cost_picks": picks,
    }


def run_grid(
    *,
    families=GRID_FAMILIES,
    sizes=GRID_SIZES,
    tenants=GRID_TENANTS,
    n_hosts: int = GRID_HOSTS,
    log=None,
) -> list[dict]:
    say = log or (lambda *_: None)
    rows = []
    for family in families:
        for size in sizes:
            for n_tenants in tenants:
                row = run_point(family, size, n_tenants, n_hosts)
                rows.append(row)
                say(
                    f"{family:>9s} {row['size']:>6s} x{n_tenants}: "
                    f"cost={row['cost_ns']:>12.0f} "
                    f"(picks {'/'.join(sorted(set(row['cost_picks'])))}) "
                    f"best_fixed={row['best_fixed']}"
                    f"={row['best_fixed_ns']:>12.0f} "
                    f"static={row['static_algorithm']}"
                    f"={row['static_ns']:>12.0f}"
                )
    return rows


def check(rows: list[dict], *, slack: float = SLACK, min_wins: int = MIN_WINS):
    """The acceptance gate.  Returns (ok, problems, wins)."""
    problems = []
    wins = 0
    for row in rows:
        tag = f"{row['family']}/{row['size']}/x{row['tenants']}"
        if row["cost_ns"] > slack * row["best_fixed_ns"]:
            problems.append(
                f"{tag}: cost-auto {row['cost_ns']:.0f} ns is "
                f"{row['cost_ns'] / row['best_fixed_ns']:.2f}x the best "
                f"fixed ({row['best_fixed']} "
                f"{row['best_fixed_ns']:.0f} ns) — over the {slack:.2f}x "
                f"slack"
            )
        if row["cost_ns"] < row["static_ns"]:
            wins += 1
    if wins < min_wins:
        problems.append(
            f"cost-auto beat the static baseline on only {wins} grid "
            f"points (need >= {min_wins})"
        )
    return (not problems), problems, wins


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro planner bench",
        description="planner acceptance grid: cost auto vs fixed vs static",
    )
    parser.add_argument("--hosts", type=int, default=GRID_HOSTS)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write rows + verdict JSON")
    parser.add_argument("--no-check", action="store_true",
                        help="measure only; skip the acceptance gate")
    args = parser.parse_args(argv)

    rows = run_grid(n_hosts=args.hosts, log=print)
    ok, problems, wins = check(rows)
    print(f"\ncost-auto beat the static baseline on {wins}/{len(rows)} "
          f"grid points")
    for p in problems:
        print(f"FAIL: {p}")
    if args.out:
        payload = {
            "benchmark": "planner-grid",
            "hosts": args.hosts,
            "rows": rows,
            "wins_vs_static": wins,
            "ok": ok,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[planner bench JSON written to {args.out}]")
    if args.no_check:
        return 0
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
