"""Service-mode tenant-scaling benchmark (``BENCH_service.json``).

Scales the number of *concurrent tenants* sharing one fabric through
:class:`repro.service.engine.FabricService` (default 4 → 64 → 512) and
records, per scale point, where the serving stack starts to bend:

* **pool admission** — queue depth, per-resource rejection counts
  (slots / memory / quota), mean and max queue wait;
* **arbitration** — per-class iteration percentiles and the weighted
  Jain fairness index (contention shows up as p99 divergence long
  before anything errors);
* **plan cache** — hit rate and evictions (tenant diversity at scale
  evicts plans faster than they amortize).

The report names the **first saturating resource**: the admission
resource that dominates queueing at the smallest scale point where any
queueing occurs at all (or the first soft signal — fairness droop or
cache thrash — when the pools never fill).  All simulated time is
deterministic; ``wall_s`` measures the simulator itself and is the only
hardware-dependent number.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Optional

SCALE_POINTS = (4, 64, 512)
FABRIC_HOSTS = 32
MAX_PER_SWITCH = 2
JOB_BYTES = 256.0 * 1024
JOB_HOSTS = 8
ITERATIONS = 2
GAP_NS = 20_000.0
ARRIVAL_SPACING_NS = 1_000.0
FAIRNESS_FLOOR = 0.5


def _make_trace(n_tenants: int) -> dict:
    """A burst of ``n_tenants`` 8-host training jobs, two QoS classes,
    arrivals 1 us apart so concurrency ~= the tenant count."""
    return {
        "schema_version": 1,
        "classes": {"prod": {"weight": 4.0}, "batch": {"weight": 1.0}},
        "jobs": [
            {
                "tenant": "prod" if i % 2 == 0 else "batch",
                "arrival": float(i * ARRIVAL_SPACING_NS),
                "size": JOB_BYTES,
                "algorithm": "flare_dense" if i % 2 == 0 else "ring",
                "gap": GAP_NS,
                "iterations": ITERATIONS,
                "n_hosts": JOB_HOSTS,
            }
            for i in range(n_tenants)
        ],
    }


def _scale_point(
    n_tenants: int, queue_policy: str, provenance_db: Optional[str] = None
) -> dict:
    from repro.comm.fabric import Fabric
    from repro.service import FabricService, TraceWorkload

    fabric = Fabric(
        n_hosts=FABRIC_HOSTS,
        max_allreduces_per_switch=MAX_PER_SWITCH,
        provenance_db=provenance_db,
        run_label=f"service-bench/{n_tenants}t/{queue_policy}",
    )
    service = FabricService(
        fabric,
        TraceWorkload(_make_trace(n_tenants)),
        scheduler="pack",
        queue_policy=queue_policy,
    )
    t0 = time.perf_counter()
    report = service.run()
    wall = time.perf_counter() - t0
    fabric.shutdown()
    queue = report["queue"]
    cache = report["plan_cache"]
    return {
        "tenants": n_tenants,
        "queue_policy": queue_policy,
        "run_id": fabric.run_id,
        "wall_s": wall,
        "sim_ms": report["now_ns"] / 1e6,
        "events": fabric.sim.events_processed,
        "events_per_s": fabric.sim.events_processed / wall if wall else None,
        "jobs_completed": report["jobs"]["completed"],
        "starved_jobs": len(report["starved_jobs"]),
        "fairness": report["fairness"],
        "classes": {
            name: {
                k: cls[k]
                for k in ("p50_ns", "p95_ns", "p99_ns", "goodput_gbps")
            }
            for name, cls in report["classes"].items()
        },
        "queue": {
            "enqueued": queue["enqueued"],
            "mean_wait_ns": queue["mean_wait_ns"],
            "max_wait_ns": queue["max_wait_ns"],
            "mean_depth": queue["mean_depth"],
            "reasons": queue["reasons"],
        },
        "plan_cache": {
            "hit_rate": cache["hit_rate"],
            "evictions": cache["evictions"],
            "currsize": cache["currsize"],
        },
        "utilization": report["utilization"],
    }


def _first_saturating_resource(points: list[dict]) -> dict:
    """Name the resource that gives out first as tenants scale."""
    for p in points:
        reasons = p["queue"]["reasons"]
        if reasons:
            resource = max(sorted(reasons), key=lambda r: reasons[r])
            return {
                "resource": resource,
                "at_tenants": p["tenants"],
                "evidence": dict(reasons),
                "detail": (
                    f"admission queueing first appears at {p['tenants']} "
                    f"tenants, dominated by {resource!r} rejections"
                ),
            }
    # Pools never filled: fall back to the softer signals.
    for p in points:
        if p["fairness"] < FAIRNESS_FLOOR:
            return {
                "resource": "arbitration",
                "at_tenants": p["tenants"],
                "evidence": {"fairness": p["fairness"]},
                "detail": "weighted fairness drooped before any pool filled",
            }
        if p["plan_cache"]["evictions"] > 0:
            return {
                "resource": "plan_cache",
                "at_tenants": p["tenants"],
                "evidence": {"evictions": p["plan_cache"]["evictions"]},
                "detail": "plan-cache evictions before any pool filled",
            }
    return {
        "resource": None,
        "at_tenants": None,
        "evidence": {},
        "detail": "no resource saturated across the sweep",
    }


def run_service_bench(
    scales: tuple = SCALE_POINTS,
    queue_policies: tuple = ("wfq", "fifo"),
    provenance_db: Optional[str] = None,
) -> dict:
    """Run the sweep; returns the JSON-serializable report."""
    from repro.provenance.identity import run_identity

    points = []
    for n in scales:
        for policy in queue_policies:
            points.append(_scale_point(n, policy, provenance_db))
    wfq_points = [p for p in points if p["queue_policy"] == "wfq"]
    return {
        "benchmark": "service",
        "version": 1,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        # Run identity: every perf artifact is attributable to the
        # exact tree and configuration that produced it.
        "identity": run_identity(
            engine={"scales": list(scales), "queues": list(queue_policies)},
        ),
        "provenance_db": provenance_db,
        "config": {
            "fabric_hosts": FABRIC_HOSTS,
            "max_allreduces_per_switch": MAX_PER_SWITCH,
            "job_bytes": JOB_BYTES,
            "job_hosts": JOB_HOSTS,
            "iterations": ITERATIONS,
            "scales": list(scales),
            "queue_policies": list(queue_policies),
        },
        "points": points,
        "first_saturating_resource": _first_saturating_resource(wfq_points),
    }


def check_health(report: dict) -> list[str]:
    """Invariant gate for CI: every job completes, nothing starves,
    fairness holds the floor at every scale point."""
    failures = []
    for p in report["points"]:
        tag = f"{p['tenants']} tenants/{p['queue_policy']}"
        if p["starved_jobs"]:
            failures.append(f"{tag}: {p['starved_jobs']} starved jobs")
        if p["jobs_completed"] != p["tenants"]:
            failures.append(
                f"{tag}: {p['jobs_completed']}/{p['tenants']} jobs completed"
            )
        if p["fairness"] < FAIRNESS_FLOOR:
            failures.append(
                f"{tag}: fairness {p['fairness']:.3f} below {FAIRNESS_FLOOR}"
            )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Service-mode tenant-scaling benchmark (see module docstring)."
    )
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path (default BENCH_service.json)")
    parser.add_argument("--scales", default=None,
                        help="comma-separated tenant counts (default 4,64,512)")
    parser.add_argument("--queues", default="wfq,fifo",
                        help="comma-separated queue policies to sweep")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) on starvation, lost jobs, or "
                        "fairness below the floor")
    parser.add_argument("--provenance-db", default=None, metavar="PATH",
                        help="record every scale point into this sqlite "
                        "provenance database (flare-repro prov ... to read)")
    args = parser.parse_args(argv)

    scales = (
        tuple(int(s) for s in args.scales.split(","))
        if args.scales else SCALE_POINTS
    )
    policies = tuple(q.strip() for q in args.queues.split(",") if q.strip())
    report = run_service_bench(scales, policies, provenance_db=args.provenance_db)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for p in report["points"]:
        print(f"[service] {p['tenants']:4d} tenants [{p['queue_policy']}]: "
              f"{p['wall_s']:6.2f}s wall, {p['sim_ms']:8.2f} ms simulated, "
              f"{p['queue']['enqueued']:5d} queued "
              f"(mean wait {p['queue']['mean_wait_ns'] / 1e3:7.0f} us), "
              f"fairness {p['fairness']:.3f}, "
              f"cache hit {p['plan_cache']['hit_rate']:.0%}")
    sat = report["first_saturating_resource"]
    print(f"[service] first saturating resource: {sat['resource']} "
          f"({sat['detail']})")
    print(f"[service] report written to {args.out}")
    if args.check:
        failures = check_health(report)
        if failures:
            for f in failures:
                print(f"[service] FAIL {f}", file=sys.stderr)
            return 1
        print("[service] health gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
