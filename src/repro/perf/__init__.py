"""Performance tracking: the simulation-core benchmark harness."""

from repro.perf.simcore import run_simcore_bench  # noqa: F401
