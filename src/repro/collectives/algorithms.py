"""In-memory allreduce algorithm implementations.

These run the *actual algorithms* on numpy arrays — each "process" is a
list entry — and serve as golden models for the network schedules and
as the host-based baselines' functional reference.  They deliberately
mirror the communication structure (who combines what, in which order),
so floating-point results match what a real MPI implementation of each
algorithm would produce.
"""

from __future__ import annotations

import numpy as np


def _check(arrays: list[np.ndarray]) -> int:
    if not arrays:
        raise ValueError("need at least one process")
    n = len(arrays[0])
    for a in arrays:
        if len(a) != n:
            raise ValueError("all processes must contribute equal-length vectors")
    return n


def ring_allreduce(arrays: list[np.ndarray]) -> list[np.ndarray]:
    """Ring (Rabenseifner/bandwidth-optimal) allreduce.

    Phase 1 (reduce-scatter): P-1 steps; in step s, rank i sends segment
    (i - s) mod P to rank i+1 and accumulates the segment it receives.
    Phase 2 (allgather): the fully reduced segments circulate P-1 steps.
    Each rank sends 2(P-1)/P * Z elements total.
    """
    _check(arrays)
    P = len(arrays)
    if P == 1:
        return [arrays[0].copy()]
    work = [a.astype(a.dtype, copy=True) for a in arrays]
    segments = [np.array_split(w, P) for w in work]
    # Reduce-scatter.
    for step in range(P - 1):
        incoming = []
        for i in range(P):
            seg = (i - step) % P
            incoming.append((i, ( i + 1) % P, seg))
        for src, dst, seg in incoming:
            segments[dst][seg] = segments[dst][seg] + segments[src][seg]
    # After P-1 steps, rank i holds the full sum of segment (i+1) mod P.
    # Allgather.
    for step in range(P - 1):
        for i in range(P):
            seg = (i + 1 - step) % P
            segments[(i + 1) % P][seg] = segments[i][seg].copy()
    return [np.concatenate(segs) for segs in segments]


def recursive_doubling_allreduce(arrays: list[np.ndarray]) -> list[np.ndarray]:
    """Recursive doubling: log2(P) rounds of full-vector pairwise sums.

    Requires a power-of-two process count (classic restriction).
    """
    _check(arrays)
    P = len(arrays)
    if P & (P - 1):
        raise ValueError("recursive doubling needs a power-of-two process count")
    work = [a.copy() for a in arrays]
    dist = 1
    while dist < P:
        nxt = [None] * P
        for i in range(P):
            partner = i ^ dist
            nxt[i] = work[i] + work[partner]
        work = nxt
        dist <<= 1
    return work


def rabenseifner_allreduce(arrays: list[np.ndarray]) -> list[np.ndarray]:
    """Rabenseifner: recursive-halving reduce-scatter + doubling allgather."""
    _check(arrays)
    P = len(arrays)
    if P & (P - 1):
        raise ValueError("rabenseifner (halving/doubling) needs power-of-two P")
    work = [a.copy() for a in arrays]
    n = len(work[0])
    # Reduce-scatter by recursive halving: track each rank's [lo, hi).
    lo = [0] * P
    hi = [n] * P
    dist = P // 2
    while dist >= 1:
        # Pairs split their common range; the lower rank keeps the lower
        # half.  Use pre-round copies so the pairwise exchange is
        # symmetric and order-independent.
        snapshot = [w.copy() for w in work]
        for i in range(P):
            partner = i ^ dist
            mid = (lo[i] + hi[i]) // 2
            if i < partner:
                # Keep lower half; add partner's lower half.
                work[i][lo[i]:mid] += snapshot[partner][lo[i]:mid]
                hi[i] = mid
            else:
                work[i][mid:hi[i]] += snapshot[partner][mid:hi[i]]
                lo[i] = mid
        dist //= 2
    # Allgather by recursive doubling.
    dist = 1
    while dist < P:
        snapshot = [(w.copy(), lo[i], hi[i]) for i, w in enumerate(work)]
        for i in range(P):
            partner = i ^ dist
            plo, phi = snapshot[partner][1], snapshot[partner][2]
            work[i][plo:phi] = snapshot[partner][0][plo:phi]
            lo[i] = min(lo[i], plo)
            hi[i] = max(hi[i], phi)
        dist <<= 1
    return work


def sparcml_allreduce(
    sparse_inputs: list[tuple[np.ndarray, np.ndarray]],
    span: int,
) -> list[np.ndarray]:
    """SparCML-style sparse allreduce (SSAR, recursive doubling).

    Each process contributes ``(indices, values)``; log2(P) rounds of
    pairwise sparse-sum exchange (index union, values added on overlap).
    Returns the dense result per process — identical everywhere, equal
    to the dense elementwise sum.
    """
    if not sparse_inputs:
        raise ValueError("need at least one process")
    P = len(sparse_inputs)
    if P & (P - 1):
        raise ValueError("SSAR recursive doubling needs power-of-two P")
    dense = []
    for idx, vals in sparse_inputs:
        d = np.zeros(span, dtype=vals.dtype if len(vals) else np.float32)
        if len(idx):
            np.add.at(d, idx, vals)
        dense.append(d)
    # Sparse combine == dense sum on the union; recursive doubling of
    # dense representations keeps the model simple while moving exactly
    # the union sizes the schedule layer accounts for.
    dist = 1
    work = dense
    while dist < P:
        work = [work[i] + work[i ^ dist] for i in range(P)]
        dist <<= 1
    return work
