"""In-network sparse allreduce on the fat tree (Fig. 15, "Flare Sparse").

Same tree pipeline as the dense version, but message sizes shrink with
sparsity and grow with densification level by level: hosts send their
sparsified vectors (nnz x 8 B), leaves forward the rack union, the root
multicasts the global union.  This captures the two effects Fig. 15
credits Flare sparse with: far fewer bytes than dense in-network
allreduce, and far fewer hops than host-based sparse (each datum
crosses the tree once instead of bouncing between hosts log P times).

Per-level sizes come from the densification model; the Fig. 15 driver
can instead pass exact per-level non-zero counts measured from the
synthetic ResNet-50 gradient data.
"""

from __future__ import annotations

import warnings

from repro.collectives.result import CollectiveResult
from repro.network.simulator import Message, NetworkSimulator
from repro.network.trees import EmbeddedTree, embed_reduction_tree
from repro.network.topology import FatTreeTopology
from repro.sparse.densify import expected_union

SPARSE_ELEMENT_BYTES = 8


def sparse_level_bytes(
    topology: FatTreeTopology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
) -> tuple[float, float, float]:
    """(host, leaf, root) per-stream bytes under the bucket model."""
    n_buckets = total_elements / bucket_span
    hosts_per_leaf = topology.hosts_per_leaf
    n_hosts = topology.n_hosts
    host_nnz = n_buckets * nnz_per_bucket
    leaf_nnz = n_buckets * expected_union(bucket_span, nnz_per_bucket, hosts_per_leaf)
    root_nnz = n_buckets * expected_union(bucket_span, nnz_per_bucket, n_hosts)
    return (
        host_nnz * SPARSE_ELEMENT_BYTES,
        leaf_nnz * SPARSE_ELEMENT_BYTES,
        root_nnz * SPARSE_ELEMENT_BYTES,
    )


def simulate_flare_sparse_allreduce(
    topology: FatTreeTopology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    n_chunks: int = 64,
    agg_latency_ns_per_chunk: float = 4000.0,
    level_bytes: tuple[float, float, float] | None = None,
    tree: EmbeddedTree | None = None,
) -> CollectiveResult:
    """Simulate one Flare in-network sparse allreduce.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("flare_sparse"
        algorithm); prefer ``Communicator.allreduce(..., sparse=True)``.
    """
    warnings.warn(
        "simulate_flare_sparse_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='flare_sparse') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    return legacy_execute(
        "flare_sparse",
        nbytes=total_elements * 4,
        n_hosts=topology.n_hosts,
        sparse=True,
        params={
            "topology": topology,
            "bucket_span": bucket_span,
            "nnz_per_bucket": nnz_per_bucket,
            "n_chunks": n_chunks,
            "agg_latency_ns_per_chunk": agg_latency_ns_per_chunk,
            "level_bytes": level_bytes,
            "tree": tree,
        },
    )


def _simulate_flare_sparse_allreduce(
    topology: FatTreeTopology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    n_chunks: int = 64,
    agg_latency_ns_per_chunk: float = 4000.0,
    level_bytes: tuple[float, float, float] | None = None,
    tree: EmbeddedTree | None = None,
) -> CollectiveResult:
    """Flare in-network sparse schedule implementation."""
    net = NetworkSimulator(topology)
    tree = tree or embed_reduction_tree(topology)
    hosts = tree.all_hosts()
    P = len(hosts)
    if level_bytes is None:
        level_bytes = sparse_level_bytes(
            topology, total_elements, bucket_span, nnz_per_bucket
        )
    host_bytes, leaf_bytes, root_bytes = level_bytes
    host_chunk = host_bytes / n_chunks
    leaf_chunk = leaf_bytes / n_chunks
    root_chunk = root_bytes / n_chunks

    leaf_counts: dict[tuple[str, int], int] = {}
    root_counts: dict[int, int] = {}
    host_received: dict[str, int] = {h: 0 for h in hosts}
    done_hosts = 0
    finish_time = [0.0]

    def on_leaf(leaf: str):
        hosts_here = len(tree.hosts_of[leaf])

        def deliver(msg: Message, now: float) -> None:
            direction, chunk = msg.tag[0], msg.tag[1]
            if direction == "up":
                key = (leaf, chunk)
                leaf_counts[key] = leaf_counts.get(key, 0) + 1
                if leaf_counts[key] == hosts_here:
                    net.send(
                        Message(leaf, tree.root, leaf_chunk, tag=("up", chunk)),
                        at=now + agg_latency_ns_per_chunk,
                    )
            else:
                for h in tree.hosts_of[leaf]:
                    net.send(
                        Message(leaf, h, root_chunk, tag=("down", chunk)), at=now
                    )

        return deliver

    def on_root(msg: Message, now: float) -> None:
        chunk = msg.tag[1]
        root_counts[chunk] = root_counts.get(chunk, 0) + 1
        if root_counts[chunk] == len(tree.leaves):
            for leaf in tree.leaves:
                net.send(
                    Message(tree.root, leaf, root_chunk, tag=("down", chunk)),
                    at=now + agg_latency_ns_per_chunk,
                )

    def on_host(host: str):
        def deliver(msg: Message, now: float) -> None:
            nonlocal done_hosts
            host_received[host] += 1
            if host_received[host] == n_chunks:
                done_hosts += 1
                finish_time[0] = max(finish_time[0], now)

        return deliver

    for leaf in tree.leaves:
        net.on_deliver(leaf, on_leaf(leaf))
    net.on_deliver(tree.root, on_root)
    for h in hosts:
        net.on_deliver(h, on_host(h))
    for h in hosts:
        leaf = topology.leaf_of(h)
        for c in range(n_chunks):
            net.send(Message(h, leaf, host_chunk, tag=("up", c)), at=0.0)
    net.run()
    if done_hosts != P:
        raise RuntimeError(f"flare sparse incomplete: {done_hosts}/{P}")
    return CollectiveResult(
        name="Flare sparse",
        n_hosts=P,
        vector_bytes=total_elements * 4,
        time_ns=finish_time[0],
        traffic_bytes_hops=net.traffic.bytes_hops,
        sent_bytes_per_host=host_bytes,
        extra={
            "host_bytes": host_bytes,
            "leaf_bytes": leaf_bytes,
            "root_bytes": root_bytes,
        },
    )
