"""In-network sparse allreduce on the network simulator (Fig. 15,
"Flare Sparse").

Same tree pipeline as the dense version, but message sizes shrink with
sparsity and grow with densification level by level: hosts send their
sparsified vectors (nnz x 8 B), each tree switch forwards the union of
its subtree, the root multicasts the global union.  This captures the
two effects Fig. 15 credits Flare sparse with: far fewer bytes than
dense in-network allreduce, and far fewer hops than host-based sparse
(each datum crosses the tree once instead of bouncing between hosts
log P times).

Per-switch sizes come from the densification model applied to each
switch's *subtree host count*, which generalizes the fat tree's
(host, leaf, root) ladder to trees of any depth over any topology; the
Fig. 15 driver can instead pass exact per-level non-zero counts
measured from the synthetic ResNet-50 gradient data.
"""

from __future__ import annotations

import warnings

from repro.collectives.result import CollectiveResult
from repro.network.simulator import Message, NetworkSimulator
from repro.network.trees import AggregationTree, EmbeddedTree, as_aggregation_tree
from repro.network.topology import Topology
from repro.sparse.densify import expected_union

SPARSE_ELEMENT_BYTES = 8


def sparse_level_bytes(
    topology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
) -> tuple[float, float, float]:
    """(host, leaf, root) per-stream bytes under the bucket model, for
    the two-level fat tree."""
    n_buckets = total_elements / bucket_span
    hosts_per_leaf = topology.hosts_per_leaf
    n_hosts = topology.n_hosts
    host_nnz = n_buckets * nnz_per_bucket
    leaf_nnz = n_buckets * expected_union(bucket_span, nnz_per_bucket, hosts_per_leaf)
    root_nnz = n_buckets * expected_union(bucket_span, nnz_per_bucket, n_hosts)
    return (
        host_nnz * SPARSE_ELEMENT_BYTES,
        leaf_nnz * SPARSE_ELEMENT_BYTES,
        root_nnz * SPARSE_ELEMENT_BYTES,
    )


def sparse_tree_bytes(
    tree: AggregationTree,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
) -> tuple[float, dict[str, float]]:
    """(host bytes, per-switch upstream bytes) for any aggregation tree.

    A switch forwards the expected index union over the hosts of its
    subtree; the root's value is also the downstream multicast size.
    """
    n_buckets = total_elements / bucket_span
    host_bytes = n_buckets * nnz_per_bucket * SPARSE_ELEMENT_BYTES
    up_bytes = {
        s: n_buckets
        * expected_union(bucket_span, nnz_per_bucket, tree.subtree_hosts(s))
        * SPARSE_ELEMENT_BYTES
        for s in tree.switches()
    }
    return host_bytes, up_bytes


def simulate_flare_sparse_allreduce(
    topology: Topology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    n_chunks: int = 64,
    agg_latency_ns_per_chunk: float = 4000.0,
    level_bytes: tuple[float, float, float] | None = None,
    tree: "EmbeddedTree | AggregationTree | None" = None,
) -> CollectiveResult:
    """Simulate one Flare in-network sparse allreduce.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("flare_sparse"
        algorithm); prefer ``Communicator.allreduce(..., sparse=True)``.
    """
    warnings.warn(
        "simulate_flare_sparse_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='flare_sparse') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    return legacy_execute(
        "flare_sparse",
        nbytes=total_elements * 4,
        n_hosts=topology.n_hosts,
        sparse=True,
        params={
            "topology": topology,
            "bucket_span": bucket_span,
            "nnz_per_bucket": nnz_per_bucket,
            "n_chunks": n_chunks,
            "agg_latency_ns_per_chunk": agg_latency_ns_per_chunk,
            "level_bytes": level_bytes,
            "tree": tree,
        },
    )


def _simulate_flare_sparse_allreduce(
    topology: Topology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    n_chunks: int = 64,
    agg_latency_ns_per_chunk: float = 4000.0,
    level_bytes: tuple[float, float, float] | None = None,
    tree: "EmbeddedTree | AggregationTree | None" = None,
    router=None,
    routing_seed: int = 0,
) -> CollectiveResult:
    """Flare sparse schedule on a private simulator (one collective)."""
    net = NetworkSimulator(topology, router=router, routing_seed=routing_seed)
    done: list[CollectiveResult] = []
    issue_flare_sparse_allreduce(
        net,
        total_elements,
        bucket_span=bucket_span,
        nnz_per_bucket=nnz_per_bucket,
        n_chunks=n_chunks,
        agg_latency_ns_per_chunk=agg_latency_ns_per_chunk,
        level_bytes=level_bytes,
        tree=tree,
        on_complete=done.append,
    )
    net.run()
    if not done:
        raise RuntimeError("flare sparse incomplete: not all hosts finished")
    return done[0]


def issue_flare_sparse_allreduce(
    net: NetworkSimulator,
    total_elements: float,
    *,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    n_chunks: int = 64,
    agg_latency_ns_per_chunk: float = 4000.0,
    level_bytes: tuple[float, float, float] | None = None,
    tree: "EmbeddedTree | AggregationTree | None" = None,
    flow: object = None,
    base_time: float = 0.0,
    on_complete,
) -> None:
    """Issue one Flare in-network sparse allreduce into a simulator.

    Events start at ``base_time`` under flow id ``flow``;
    ``on_complete(result)`` fires inside the event loop once every host
    received the densified multicast, with times relative to
    ``base_time`` and traffic read from the flow's own accounting.
    """
    topology = net.topology
    atree = as_aggregation_tree(tree, topology)
    hosts = atree.all_hosts()
    P = len(hosts)
    if level_bytes is not None:
        # The measured (host, leaf, root) ladder only describes a
        # two-level tree; deeper/shallower trees use the subtree model.
        if atree.depth() != 2:
            raise ValueError(
                "level_bytes describes a two-level tree; this tree has "
                f"depth {atree.depth()} — pass bucket parameters instead"
            )
        host_bytes, leaf_b, root_b = level_bytes
        up_bytes = {
            s: (root_b if atree.parent_of(s) is None else leaf_b)
            for s in atree.switches()
        }
    else:
        host_bytes, up_bytes = sparse_tree_bytes(
            atree, total_elements, bucket_span, nnz_per_bucket
        )
    down_bytes = up_bytes[atree.root]
    host_chunk = host_bytes / n_chunks
    down_chunk = down_bytes / n_chunks

    #: Contributions keyed by sender: fan-in completion is counted per
    #: distinct child, so duplicate deliveries under fault injection
    #: cannot complete a chunk early (Sec. 4.1 bitmap property).
    up_parts: dict[tuple[str, int], set] = {}
    host_received: dict[str, int] = {h: 0 for h in hosts}
    #: Dedup guards; armed-ness is checked at delivery time (faults may
    #: be armed after issue, before the loop runs).
    host_dedup: set = set()
    down_dedup: set = set()
    state = {"done_hosts": 0, "finish": base_time}

    def send_down(switch: str, chunk: int, at: float) -> None:
        # One burst event for the whole multicast fan-out of this chunk.
        net.send_burst(
            [
                Message(switch, peer, down_chunk, tag=("down", chunk), flow=flow)
                for peer in (
                    *atree.children_of.get(switch, ()),
                    *atree.hosts_of.get(switch, ()),
                )
            ],
            at=at,
        )

    def on_switch(switch: str):
        fan_in = atree.fan_in(switch)
        parent = atree.parent_of(switch)
        up_chunk = up_bytes[switch] / n_chunks

        def deliver(msg: Message, now: float) -> None:
            direction, chunk = msg.tag[0], msg.tag[1]
            if direction == "up":
                key = (switch, chunk)
                parts = up_parts.get(key)
                if parts is None:
                    parts = up_parts[key] = set()
                if msg.src in parts:
                    return       # duplicate contribution
                parts.add(msg.src)
                if len(parts) == fan_in:
                    if parent is None:
                        send_down(switch, chunk, now + agg_latency_ns_per_chunk)
                    else:
                        net.send(
                            Message(
                                switch, parent, up_chunk,
                                tag=("up", chunk), flow=flow,
                            ),
                            at=now + agg_latency_ns_per_chunk,
                        )
            else:
                if net.faults is not None:
                    key = (switch, chunk)
                    if key in down_dedup:
                        return
                    down_dedup.add(key)
                send_down(switch, chunk, now)

        return deliver

    def finished() -> CollectiveResult:
        # Representative per-level sizes for reporting: host, first
        # non-root switch level, root.
        first_leaf = next(
            (s for s in atree.switches() if atree.parent_of(s) is not None),
            atree.root,
        )
        stats = net.flow_stats(flow)
        return CollectiveResult(
            name="Flare sparse",
            n_hosts=P,
            vector_bytes=total_elements * 4,
            time_ns=state["finish"] - base_time,
            traffic_bytes_hops=stats.bytes_hops,
            sent_bytes_per_host=host_bytes,
            extra={
                "host_bytes": host_bytes,
                "leaf_bytes": up_bytes[first_leaf],
                "root_bytes": down_bytes,
                "tree_root": atree.root,
                "tree_depth": atree.depth(),
                **net.traffic_extra(flow=flow),
            },
        )

    def on_host(host: str):
        def deliver(msg: Message, now: float) -> None:
            if net.faults is not None:
                key = (host, msg.tag[1])
                if key in host_dedup:
                    return
                host_dedup.add(key)
            host_received[host] += 1
            if host_received[host] == n_chunks:
                state["done_hosts"] += 1
                state["finish"] = max(state["finish"], now)
                if state["done_hosts"] == P:
                    on_complete(finished())

        return deliver

    for switch in atree.switches():
        net.on_deliver(switch, on_switch(switch), flow=flow)
    for h in hosts:
        net.on_deliver(h, on_host(h), flow=flow)
    # Every host's upward chunk train leaves at once: one burst event.
    net.send_burst(
        [
            Message(h, atree.attach_of(h), host_chunk, tag=("up", c), flow=flow)
            for h in hosts
            for c in range(n_chunks)
        ],
        at=base_time,
    )
