"""Host-based and in-network collectives.

Two layers:

* :mod:`repro.collectives.algorithms` — in-memory implementations of
  the allreduce algorithms (ring, Rabenseifner, recursive doubling,
  SparCML sparse) operating on real numpy arrays.  These are the golden
  models: every schedule below moves exactly the bytes these algorithms
  move.
* Network *schedules* (``ring``, ``sparcml``, ``flare_dense``,
  ``flare_sparse``) — event-driven simulations of the same algorithms on
  :class:`repro.network.NetworkSimulator`, producing the completion
  times and traffic volumes of Fig. 15.

All of them are registered in the :mod:`repro.comm` algorithm registry;
the ``simulate_*`` entry points below remain as deprecation shims
delegating there.  Prefer ``repro.comm.Communicator``.
"""

from repro.collectives.algorithms import (
    ring_allreduce,
    rabenseifner_allreduce,
    recursive_doubling_allreduce,
    sparcml_allreduce,
)
from repro.collectives.result import CollectiveResult
from repro.collectives.ring import simulate_ring_allreduce
from repro.collectives.sparcml import simulate_sparcml_allreduce
from repro.collectives.flare_dense import simulate_flare_dense_allreduce
from repro.collectives.flare_sparse import simulate_flare_sparse_allreduce

__all__ = [
    "ring_allreduce",
    "rabenseifner_allreduce",
    "recursive_doubling_allreduce",
    "sparcml_allreduce",
    "CollectiveResult",
    "simulate_ring_allreduce",
    "simulate_sparcml_allreduce",
    "simulate_flare_dense_allreduce",
    "simulate_flare_sparse_allreduce",
]
