"""Event-driven ring allreduce on the network simulator.

The host-based dense baseline of Fig. 15: 2(P-1) pipelined steps, each
moving Z/P bytes to the ring successor.  Ranks map onto the fat tree in
host-id order, so most ring hops stay inside a rack (1-hop neighbor via
the shared leaf) and one hop per rack crosses the spine — the locality a
sane MPI rank mapping would give.

A rank sends its step-s+1 message as soon as it has received the step-s
message from its predecessor (per-rank dependency, no global barrier),
which is how real ring pipelines behave and what makes the completion
time ~2 Z / link_rate rather than 2(P-1) full latencies.

Payload execution: pass ``payloads`` (one array per rank) and the
schedule carries the *actual data* through the ring — reduce-scatter
accumulates in fixed ring order (segment q combines ranks q, q+1, ...,
wrapping), allgather distributes the reduced segments — so the final
vectors are bitwise identical on every host and deterministic run to
run, independent of event timing, retransmissions, or duplicate
deliveries.  Timing is unchanged: data rides the same messages the
size-only simulation sends.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.collectives.result import CollectiveResult
from repro.core.ops import get_op
from repro.network.simulator import Message, NetworkSimulator
from repro.network.topology import FatTreeTopology


def split_slices(n_elements: int, n_parts: int) -> list[slice]:
    """Contiguous ``np.array_split``-compatible slices of a vector."""
    sizes = [n_elements // n_parts + (1 if i < n_elements % n_parts else 0)
             for i in range(n_parts)]
    out, start = [], 0
    for size in sizes:
        out.append(slice(start, start + size))
        start += size
    return out


def combine_payloads(op, acc: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``acc ⊕ values`` without mutating either input (messages may be
    duplicated by fault injection; in-place combines would corrupt)."""
    out = acc.copy()
    get_op(op).combine_into(out, values)
    return out


def simulate_ring_allreduce(
    topology: FatTreeTopology,
    vector_bytes: float,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
) -> CollectiveResult:
    """Simulate one ring allreduce over all hosts of the topology.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("ring"
        algorithm); prefer ``Communicator.allreduce``.
    """
    warnings.warn(
        "simulate_ring_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='ring') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    return legacy_execute(
        "ring",
        nbytes=vector_bytes,
        n_hosts=topology.n_hosts,
        params={
            "topology": topology,
            "sub_chunk_bytes": sub_chunk_bytes,
            "host_reduce_bytes_per_ns": host_reduce_bytes_per_ns,
        },
    )


def _simulate_ring_allreduce(
    topology: FatTreeTopology,
    vector_bytes: float,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
    router=None,
    routing_seed: int = 0,
    payloads=None,
    op="sum",
    hosts=None,
) -> CollectiveResult:
    """Ring-allreduce schedule on a private simulator (one collective)."""
    net = NetworkSimulator(topology, router=router, routing_seed=routing_seed)
    done: list[CollectiveResult] = []
    issue_ring_allreduce(
        net,
        vector_bytes,
        sub_chunk_bytes=sub_chunk_bytes,
        host_reduce_bytes_per_ns=host_reduce_bytes_per_ns,
        payloads=payloads,
        op=op,
        hosts=hosts,
        on_complete=done.append,
    )
    net.run()
    if not done:
        raise RuntimeError("ring incomplete: not all hosts finished")
    return done[0]


def issue_ring_allreduce(
    net: NetworkSimulator,
    vector_bytes: float,
    *,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
    flow: object = None,
    base_time: float = 0.0,
    payloads=None,
    op="sum",
    hosts=None,
    on_complete,
) -> None:
    """Issue one ring allreduce into a (possibly shared) simulator.

    Each Z/P segment is further cut into sub-chunks; a rank forwards
    sub-chunk k of step s+1 as soon as it has received sub-chunk k of
    step s.  Without this, store-and-forward would charge a full
    segment serialization per hop per step (2-4x the real cost) — MPI
    ring implementations pipeline exactly this way.

    ``host_reduce_bytes_per_ns`` optionally charges host-side reduction
    compute per received byte during the reduce-scatter phase (0 =
    compute fully overlapped, the bandwidth-dominated regime).

    With ``payloads`` (one array per rank, any shape) the messages
    carry real data and the result's ``extra["output"]`` holds the
    reduced vector; duplicate deliveries (fault injection) are
    deduplicated, so the output is bitwise stable under chaos.

    Events are injected at ``base_time`` under flow id ``flow``;
    ``on_complete(result)`` fires inside the event loop when the last
    host finishes, with times measured relative to ``base_time`` and
    traffic read from the flow's own accounting — so several issued
    collectives can interleave in one loop and still report per-tenant
    results.

    ``hosts`` restricts the ring to a participant subset in the given
    order (placement: a tenant's job rings only its placed hosts, which
    still contend on shared links with everyone else); default is every
    topology host in id order.
    """
    topology = net.topology
    if hosts is None:
        hosts = topology.hosts
    else:
        hosts = list(hosts)
        known = set(topology.hosts)
        for h in hosts:
            if h not in known:
                raise ValueError(f"unknown host {h}")
    P = len(hosts)
    if P < 2:
        raise ValueError("ring needs at least two hosts")
    seg_bytes = vector_bytes / P
    n_sub = max(1, int(round(seg_bytes / sub_chunk_bytes)))
    sub_bytes = seg_bytes / n_sub
    total_steps = 2 * (P - 1)

    state = {"done_hosts": 0, "finish": base_time}
    #: Per-host deliveries (each host receives one message per step per
    #: sub-chunk; completion = all of them, so late retransmissions of
    #: mid-collective chunks are always waited for).
    expected = total_steps * n_sub
    recv_count = {h: 0 for h in hosts}
    #: Dedup guard; consulted whenever faults are armed *at delivery
    #: time* (arming may happen after issue, before the loop runs).
    dedup: set = set()

    # ------------------------------------------------------------------
    # Payload plumbing (None = size-only timing simulation)
    # ------------------------------------------------------------------
    carry = payloads is not None
    if carry:
        arrays = [np.ascontiguousarray(np.asarray(p)).ravel() for p in payloads]
        if len(arrays) != P:
            raise ValueError(f"got {len(arrays)} payloads for {P} hosts")
        n_elements = arrays[0].size
        shape = np.asarray(payloads[0]).shape
        seg_slices = split_slices(n_elements, P)
        sub_slices = {
            q: split_slices(seg_slices[q].stop - seg_slices[q].start, n_sub)
            for q in range(P)
        }
        outputs = [np.empty_like(arrays[0]) for _ in range(P)]

        def seg_part(rank: int, q: int, k: int) -> np.ndarray:
            """Rank's own input for sub-chunk k of segment q."""
            seg = arrays[rank][seg_slices[q]]
            return seg[sub_slices[q][k]]

        def write_out(rank: int, q: int, k: int, data: np.ndarray) -> None:
            base = seg_slices[q].start
            sub = sub_slices[q][k]
            outputs[rank][base + sub.start:base + sub.stop] = data

    def successor(i: int) -> str:
        return hosts[(i + 1) % P]

    def send_sub(i: int, step: int, sub: int, at: float, data=None) -> None:
        net.send(
            Message(
                src=hosts[i],
                dst=successor(i),
                nbytes=sub_bytes,
                tag=("ring", step, sub),
                payload=data,
                flow=flow,
            ),
            at=at,
        )

    def finished() -> CollectiveResult:
        stats = net.flow_stats(flow)
        extra = {
            "sub_chunks_per_segment": n_sub,
            **net.traffic_extra(flow=flow),
        }
        if carry:
            for other in outputs[1:]:
                if not np.array_equal(outputs[0], other):
                    raise AssertionError(
                        "ring allreduce diverged: hosts disagree on the "
                        "reduced vector"
                    )
            extra["output"] = outputs[0].reshape(shape)
        return CollectiveResult(
            name="host-dense (ring)",
            n_hosts=P,
            vector_bytes=vector_bytes,
            time_ns=state["finish"] - base_time,
            traffic_bytes_hops=stats.bytes_hops,
            sent_bytes_per_host=seg_bytes * total_steps,
            extra=extra,
        )

    rank_of = {h: i for i, h in enumerate(hosts)}

    def on_deliver(msg: Message, now: float) -> None:
        _kind, step, sub = msg.tag
        receiver = msg.dst
        if net.faults is not None:
            key = (receiver, step, sub)
            if key in dedup:
                return        # spurious duplicate (Sec. 4.1 bitmap)
            dedup.add(key)
        i = rank_of[receiver]
        compute = 0.0
        if host_reduce_bytes_per_ns > 0 and step < P - 1:
            compute = sub_bytes / host_reduce_bytes_per_ns
        data = None
        if carry:
            q = (i - step - 1) % P     # segment this message carries
            if step < P - 1:
                # Reduce-scatter reception: fold in our own contribution
                # (fixed ring order q, q+1, ... — deterministic).
                data = combine_payloads(op, msg.payload, seg_part(i, q, sub))
                if step == P - 2:
                    write_out(i, q, sub, data)   # fully reduced here
            else:
                data = msg.payload               # allgather: forward as-is
                write_out(i, q, sub, data)
        if step + 1 < total_steps:
            send_sub(i, step + 1, sub, now + compute, data)
        recv_count[receiver] += 1
        if recv_count[receiver] == expected:
            state["done_hosts"] += 1
            state["finish"] = max(state["finish"], now + compute)
            if state["done_hosts"] == P:
                on_complete(finished())

    for h in hosts:
        net.on_deliver(h, on_deliver, flow=flow)
    # Initial step-0 sub-chunk trains of every rank leave at one instant:
    # one burst event serializes them in issue order (identical timing to
    # per-message events, minus the per-event heap traffic).
    net.send_burst(
        [
            Message(
                src=hosts[i],
                dst=successor(i),
                nbytes=sub_bytes,
                tag=("ring", 0, sub),
                payload=seg_part(i, i % P, sub) if carry else None,
                flow=flow,
            )
            for i in range(P)
            for sub in range(n_sub)
        ],
        at=base_time,
    )
