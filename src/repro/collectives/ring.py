"""Event-driven ring allreduce on the network simulator.

The host-based dense baseline of Fig. 15: 2(P-1) pipelined steps, each
moving Z/P bytes to the ring successor.  Ranks map onto the fat tree in
host-id order, so most ring hops stay inside a rack (1-hop neighbor via
the shared leaf) and one hop per rack crosses the spine — the locality a
sane MPI rank mapping would give.

A rank sends its step-s+1 message as soon as it has received the step-s
message from its predecessor (per-rank dependency, no global barrier),
which is how real ring pipelines behave and what makes the completion
time ~2 Z / link_rate rather than 2(P-1) full latencies.
"""

from __future__ import annotations

import warnings

from repro.collectives.result import CollectiveResult
from repro.network.simulator import Message, NetworkSimulator
from repro.network.topology import FatTreeTopology


def simulate_ring_allreduce(
    topology: FatTreeTopology,
    vector_bytes: float,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
) -> CollectiveResult:
    """Simulate one ring allreduce over all hosts of the topology.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("ring"
        algorithm); prefer ``Communicator.allreduce``.
    """
    warnings.warn(
        "simulate_ring_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='ring') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    return legacy_execute(
        "ring",
        nbytes=vector_bytes,
        n_hosts=topology.n_hosts,
        params={
            "topology": topology,
            "sub_chunk_bytes": sub_chunk_bytes,
            "host_reduce_bytes_per_ns": host_reduce_bytes_per_ns,
        },
    )


def _simulate_ring_allreduce(
    topology: FatTreeTopology,
    vector_bytes: float,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
    router=None,
    routing_seed: int = 0,
) -> CollectiveResult:
    """Ring-allreduce schedule on a private simulator (one collective)."""
    net = NetworkSimulator(topology, router=router, routing_seed=routing_seed)
    done: list[CollectiveResult] = []
    issue_ring_allreduce(
        net,
        vector_bytes,
        sub_chunk_bytes=sub_chunk_bytes,
        host_reduce_bytes_per_ns=host_reduce_bytes_per_ns,
        on_complete=done.append,
    )
    net.run()
    if not done:
        raise RuntimeError("ring incomplete: not all hosts finished")
    return done[0]


def issue_ring_allreduce(
    net: NetworkSimulator,
    vector_bytes: float,
    *,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
    flow: object = None,
    base_time: float = 0.0,
    on_complete,
) -> None:
    """Issue one ring allreduce into a (possibly shared) simulator.

    Each Z/P segment is further cut into sub-chunks; a rank forwards
    sub-chunk k of step s+1 as soon as it has received sub-chunk k of
    step s.  Without this, store-and-forward would charge a full
    segment serialization per hop per step (2-4x the real cost) — MPI
    ring implementations pipeline exactly this way.

    ``host_reduce_bytes_per_ns`` optionally charges host-side reduction
    compute per received byte during the reduce-scatter phase (0 =
    compute fully overlapped, the bandwidth-dominated regime).

    Events are injected at ``base_time`` under flow id ``flow``;
    ``on_complete(result)`` fires inside the event loop when the last
    host finishes, with times measured relative to ``base_time`` and
    traffic read from the flow's own accounting — so several issued
    collectives can interleave in one loop and still report per-tenant
    results.
    """
    topology = net.topology
    hosts = topology.hosts
    P = len(hosts)
    if P < 2:
        raise ValueError("ring needs at least two hosts")
    seg_bytes = vector_bytes / P
    n_sub = max(1, int(round(seg_bytes / sub_chunk_bytes)))
    sub_bytes = seg_bytes / n_sub
    total_steps = 2 * (P - 1)

    state = {"done_hosts": 0, "finish": base_time}
    last_received = {h: 0 for h in hosts}   # sub-chunks of the final step

    def successor(i: int) -> str:
        return hosts[(i + 1) % P]

    def send_sub(i: int, step: int, sub: int, at: float) -> None:
        net.send(
            Message(
                src=hosts[i],
                dst=successor(i),
                nbytes=sub_bytes,
                tag=("ring", step, sub),
                flow=flow,
            ),
            at=at,
        )

    def finished() -> CollectiveResult:
        stats = net.flow_stats(flow)
        return CollectiveResult(
            name="host-dense (ring)",
            n_hosts=P,
            vector_bytes=vector_bytes,
            time_ns=state["finish"] - base_time,
            traffic_bytes_hops=stats.bytes_hops,
            sent_bytes_per_host=seg_bytes * total_steps,
            extra={
                "sub_chunks_per_segment": n_sub,
                **net.traffic_extra(flow=flow),
            },
        )

    rank_of = {h: i for i, h in enumerate(hosts)}

    def on_deliver(msg: Message, now: float) -> None:
        _kind, step, sub = msg.tag
        receiver = msg.dst
        i = rank_of[receiver]
        compute = 0.0
        if host_reduce_bytes_per_ns > 0 and step < P - 1:
            compute = sub_bytes / host_reduce_bytes_per_ns
        if step + 1 < total_steps:
            send_sub(i, step + 1, sub, now + compute)
        else:
            last_received[receiver] += 1
            if last_received[receiver] == n_sub:
                state["done_hosts"] += 1
                state["finish"] = max(state["finish"], now + compute)
                if state["done_hosts"] == P:
                    on_complete(finished())

    for h in hosts:
        net.on_deliver(h, on_deliver, flow=flow)
    # Initial step-0 sub-chunk trains of every rank leave at one instant:
    # one burst event serializes them in issue order (identical timing to
    # per-message events, minus the per-event heap traffic).
    net.send_burst(
        [
            Message(
                src=hosts[i],
                dst=successor(i),
                nbytes=sub_bytes,
                tag=("ring", 0, sub),
                flow=flow,
            )
            for i in range(P)
            for sub in range(n_sub)
        ],
        at=base_time,
    )
