"""Event-driven halving/doubling allreduces on the network simulator.

One engine, two partner schedules:

* ``butterfly`` — the classic recursive halving/doubling: at step *s*
  rank *i* exchanges with ``i XOR 2**s``, halving the responsibility
  set every step (log2(P) reduce-scatter steps + log2(P) allgather
  steps, each host moving 2 Z (P-1)/P bytes total — the bandwidth-
  optimal volume of Rabenseifner's algorithm, expressed as a network
  schedule instead of an in-memory reduction).

* ``swing`` — the torus-friendly variant (Swing, arXiv 2401.09356):
  the step-*s* partner sits at logical distance
  ``|1 - (-2)**(s+1)| / 3`` (1, 1, 3, 5, 11, 21, ...), even ranks
  hopping forward and odd ranks backward.  On a ring/torus rank
  mapping this keeps *every* exchange short — distance ``2**s`` of the
  butterfly becomes distance ``~2**s / 3`` — which is exactly why
  Swing beats halving/doubling on torus fabrics while moving the same
  byte volume.

Both schedules are expressed through *block sets*: ``T(j, s)`` is the
set of vector blocks rank *j* is responsible for before reduce-scatter
step *s*, defined by the recursion ``T(j, L) = {j}``;
``T(j, s) = T(j, s+1) ∪ T(partner(j, s), s+1)``.  At reduce-scatter
step *s* rank *i* ships the blocks its partner keeps
(``T(partner, s+1)``) and retains ``T(i, s+1)``; the allgather replays
the steps in reverse with the same partners, shipping the blocks rank
*i* has fully reduced so far.  The engine validates the partition
properties of the recursion at plan time, so a partner function that
does not form a perfect exchange schedule fails loudly instead of
silently corrupting sums.

Payload execution mirrors :mod:`repro.collectives.ring`: pass
``payloads`` and the messages carry real block data, combined in a
fixed structural order — the outputs are bitwise identical on every
host and stable under fault-injected duplicates (per-step dedup
bitmap, Sec. 4.1 of the paper).
"""

from __future__ import annotations

import math

import numpy as np

from repro.collectives.result import CollectiveResult
from repro.collectives.ring import combine_payloads, split_slices
from repro.network.simulator import Message, NetworkSimulator
from repro.network.topology import Topology


# ----------------------------------------------------------------------
# Partner schedules
# ----------------------------------------------------------------------
def butterfly_partner(rank: int, step: int, n_ranks: int) -> int:
    """Hypercube exchange: flip bit ``step``."""
    return rank ^ (1 << step)


def swing_distance(step: int) -> int:
    """Swing's *signed* step-``s`` partner distance
    ``(1 - (-2)**(s+1)) / 3``: +1, -1, +3, -5, +11, -21, ...

    The alternating sign is essential — it is what swings consecutive
    exchanges to opposite sides of the logical ring so the distances
    compose into full coverage (an unsigned 1, 1, 3, 5, ... would pair
    the same ranks twice and never mix the halves).
    """
    return (1 - (-2) ** (step + 1)) // 3


def swing_partner(rank: int, step: int, n_ranks: int) -> int:
    """Swing exchange: even ranks hop ``+delta``, odd ranks ``-delta``.

    ``delta`` is always odd, so an even rank's partner is always odd
    and vice versa — every step is a perfect matching.
    """
    delta = swing_distance(step)
    if rank % 2 == 0:
        return (rank + delta) % n_ranks
    return (rank - delta) % n_ranks


PARTNER_FUNCTIONS = {
    "butterfly": butterfly_partner,
    "swing": swing_partner,
}


def block_sets(partner_fn, n_ranks: int) -> list[list[frozenset]]:
    """``T[s][j]`` — blocks rank ``j`` owns before reduce-scatter step
    ``s`` — for ``s`` in ``0..L`` (``L = log2(n_ranks)``).

    Validates the schedule: every step must be a perfect matching
    (``partner(partner(i)) == i``, never self), partners' level-``s+1``
    sets must be disjoint (no double-counted contributions), and
    ``T[0]`` must be the full block set (every contribution reaches
    every block).  Raises ``ValueError`` otherwise.
    """
    if n_ranks < 2 or n_ranks & (n_ranks - 1):
        raise ValueError(f"halving/doubling needs a power-of-two rank count, got {n_ranks}")
    L = int(math.log2(n_ranks))
    T: list[list[frozenset]] = [[frozenset()] * n_ranks for _ in range(L + 1)]
    T[L] = [frozenset({j}) for j in range(n_ranks)]
    for s in range(L - 1, -1, -1):
        for j in range(n_ranks):
            p = partner_fn(j, s, n_ranks)
            if p == j or not 0 <= p < n_ranks:
                raise ValueError(f"step {s}: rank {j} pairs with {p}")
            if partner_fn(p, s, n_ranks) != j:
                raise ValueError(f"step {s}: pairing {j}<->{p} is not symmetric")
            if T[s + 1][j] & T[s + 1][p]:
                raise ValueError(
                    f"step {s}: ranks {j} and {p} both own blocks "
                    f"{sorted(T[s + 1][j] & T[s + 1][p])}"
                )
            T[s][j] = T[s + 1][j] | T[s + 1][p]
    full = frozenset(range(n_ranks))
    for j in range(n_ranks):
        if T[0][j] != full:
            raise ValueError(
                f"rank {j} only reaches blocks {sorted(T[0][j])}; the "
                "partner schedule does not cover all ranks"
            )
    return T


# ----------------------------------------------------------------------
# Simulation entry points
# ----------------------------------------------------------------------
def _simulate_halving_allreduce(
    topology: Topology,
    vector_bytes: float,
    *,
    variant: str,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
    router=None,
    routing_seed: int = 0,
    payloads=None,
    op="sum",
    hosts=None,
) -> CollectiveResult:
    """One halving/doubling allreduce on a private simulator."""
    net = NetworkSimulator(topology, router=router, routing_seed=routing_seed)
    done: list[CollectiveResult] = []
    issue_halving_allreduce(
        net,
        vector_bytes,
        variant=variant,
        sub_chunk_bytes=sub_chunk_bytes,
        host_reduce_bytes_per_ns=host_reduce_bytes_per_ns,
        payloads=payloads,
        op=op,
        hosts=hosts,
        on_complete=done.append,
    )
    net.run()
    if not done:
        raise RuntimeError(f"{variant} incomplete: not all hosts finished")
    return done[0]


def issue_halving_allreduce(
    net: NetworkSimulator,
    vector_bytes: float,
    *,
    variant: str,
    sub_chunk_bytes: float = 128 * 1024,
    host_reduce_bytes_per_ns: float = 0.0,
    flow: object = None,
    base_time: float = 0.0,
    payloads=None,
    op="sum",
    hosts=None,
    on_complete,
) -> None:
    """Issue one swing/butterfly allreduce into a (possibly shared)
    simulator.

    2 log2(P) steps: reduce-scatter halves each rank's block
    responsibility per step (step-``s`` messages carry ``Z / 2**(s+1)``
    bytes), then the allgather replays the steps in reverse with the
    same partners.  A rank sends its step-``k+1`` message only after
    receiving *all* sub-chunks of step ``k`` — the per-step dependency
    real (unpipelined) halving/doubling has — while sub-chunks within a
    step pipeline over multi-hop paths.

    ``variant`` names a partner schedule from ``PARTNER_FUNCTIONS``
    (``"swing"`` or ``"butterfly"``).  The remaining contract —
    ``flow``/``base_time`` issue semantics, payload carriage with
    dedup under fault injection, ``hosts`` placement subsets,
    ``on_complete(result)`` from inside the event loop — matches
    :func:`repro.collectives.ring.issue_ring_allreduce`.
    """
    partner_fn = PARTNER_FUNCTIONS[variant]
    topology = net.topology
    if hosts is None:
        hosts = topology.hosts
    else:
        hosts = list(hosts)
        known = set(topology.hosts)
        for h in hosts:
            if h not in known:
                raise ValueError(f"unknown host {h}")
    P = len(hosts)
    T = block_sets(partner_fn, P)          # validates P and the schedule
    L = int(math.log2(P))
    total_steps = 2 * L
    block_bytes = vector_bytes / P

    #: Unified step index k: reduce-scatter steps are k = 0..L-1
    #: (s = k), allgather steps are k = L..2L-1 replaying s = 2L-1-k.
    def rs_level(k: int) -> int:
        return k if k < L else 2 * L - 1 - k

    #: Blocks rank i *receives* at unified step k (what it sends is the
    #: mirror: the partner's receive set).
    def recv_blocks(i: int, k: int) -> tuple:
        s = rs_level(k)
        if k < L:                          # reduce-scatter: keep T[s+1][i]
            return tuple(sorted(T[s + 1][i]))
        p = partner_fn(i, s, P)            # allgather: partner's done set
        return tuple(sorted(T[s + 1][p]))

    step_bytes = [block_bytes * len(T[rs_level(k) + 1][0]) for k in range(total_steps)]
    n_sub = [
        max(1, int(round(b / sub_chunk_bytes))) if sub_chunk_bytes > 0 else 1
        for b in step_bytes
    ]

    state = {"done_hosts": 0, "finish": base_time}
    expected = sum(n_sub)
    recv_count = {h: 0 for h in hosts}
    #: Per-(rank, step) sub-chunk assembly: distinct subs seen so far,
    #: and their payload parts when data is carried.
    step_subs: dict[tuple, set] = {}
    step_parts: dict[tuple, dict] = {}
    dedup: set = set()

    # ------------------------------------------------------------------
    # Payload plumbing (None = size-only timing simulation)
    # ------------------------------------------------------------------
    carry = payloads is not None
    if carry:
        arrays = [
            np.ascontiguousarray(np.asarray(p)).ravel().copy() for p in payloads
        ]
        if len(arrays) != P:
            raise ValueError(f"got {len(arrays)} payloads for {P} hosts")
        n_elements = arrays[0].size
        shape = np.asarray(payloads[0]).shape
        blk_slices = split_slices(n_elements, P)

        def gather(i: int, blocks: tuple) -> np.ndarray:
            return np.concatenate([arrays[i][blk_slices[b]] for b in blocks])

        def scatter(i: int, blocks: tuple, data: np.ndarray, fold: bool) -> None:
            off = 0
            for b in blocks:
                sl = blk_slices[b]
                width = sl.stop - sl.start
                part = data[off:off + width]
                if fold:
                    arrays[i][sl] = combine_payloads(op, part, arrays[i][sl])
                else:
                    arrays[i][sl] = part
                off += width

    rank_of = {h: i for i, h in enumerate(hosts)}

    def send_step(i: int, k: int, at: float) -> None:
        """Ship rank i's step-k message (as n_sub[k] sub-chunks)."""
        s = rs_level(k)
        p = partner_fn(i, s, P)
        blocks = recv_blocks(p, k)         # what the partner receives
        sub_bytes = step_bytes[k] / n_sub[k]
        if carry:
            data = gather(i, blocks)
            parts = split_slices(data.size, n_sub[k])
        for sub in range(n_sub[k]):
            net.send(
                Message(
                    src=hosts[i],
                    dst=hosts[p],
                    nbytes=sub_bytes,
                    tag=(variant, k, sub),
                    payload=data[parts[sub]] if carry else None,
                    flow=flow,
                ),
                at=at,
            )

    def finished() -> CollectiveResult:
        stats = net.flow_stats(flow)
        extra = {
            "steps": total_steps,
            "step_bytes": list(step_bytes),
            **net.traffic_extra(flow=flow),
        }
        if carry:
            for other in arrays[1:]:
                if not np.array_equal(arrays[0], other):
                    raise AssertionError(
                        f"{variant} allreduce diverged: hosts disagree on "
                        "the reduced vector"
                    )
            extra["output"] = arrays[0].reshape(shape)
        return CollectiveResult(
            name=f"host-dense ({variant})",
            n_hosts=P,
            vector_bytes=vector_bytes,
            time_ns=state["finish"] - base_time,
            traffic_bytes_hops=stats.bytes_hops,
            sent_bytes_per_host=sum(step_bytes),
            extra=extra,
        )

    #: Next step each rank may *process*.  Ranks progress at different
    #: rates (no global barrier), so a fast partner's step-k message
    #: can arrive before this rank finished step k-1; it buffers until
    #: the rank's own pipeline catches up — processing out of order
    #: would gather/fold partials that miss earlier contributions.
    progress = {i: 0 for i in range(P)}

    def _drain(i: int, now: float) -> None:
        t = now
        while progress[i] < total_steps:
            k = progress[i]
            if len(step_subs.get((i, k), ())) < n_sub[k]:
                return
            compute = 0.0
            if host_reduce_bytes_per_ns > 0 and k < L:
                compute = step_bytes[k] / host_reduce_bytes_per_ns
            t += compute
            if carry:
                parts = step_parts.pop((i, k))
                data = np.concatenate([parts[j] for j in range(n_sub[k])])
                scatter(i, recv_blocks(i, k), data, fold=k < L)
            progress[i] = k + 1
            if k + 1 < total_steps:
                send_step(i, k + 1, t)
        state["done_hosts"] += 1
        state["finish"] = max(state["finish"], t)
        if state["done_hosts"] == P:
            on_complete(finished())

    def on_deliver(msg: Message, now: float) -> None:
        _kind, k, sub = msg.tag
        receiver = msg.dst
        if net.faults is not None:
            key = (receiver, k, sub)
            if key in dedup:
                return                     # spurious duplicate (Sec. 4.1 bitmap)
            dedup.add(key)
        i = rank_of[receiver]
        seen = step_subs.setdefault((i, k), set())
        if sub in seen:
            return                         # duplicate outside fault mode too
        seen.add(sub)
        if carry:
            step_parts.setdefault((i, k), {})[sub] = msg.payload
        recv_count[receiver] += 1
        if recv_count[receiver] == expected or k == progress[i]:
            _drain(i, now)

    for h in hosts:
        net.on_deliver(h, on_deliver, flow=flow)
    # Every rank's step-0 exchange leaves at the issue instant.
    for i in range(P):
        send_step(i, 0, base_time)
