"""Common result type for network-simulated collectives."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CollectiveResult:
    """Timing and traffic outcome of one simulated collective."""

    name: str
    n_hosts: int
    vector_bytes: float          # dense-equivalent bytes per host
    time_ns: float
    traffic_bytes_hops: float    # sum over links of bytes carried
    sent_bytes_per_host: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def traffic_gib(self) -> float:
        return self.traffic_bytes_hops / (1024**3)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.time_ms:.2f} ms, "
            f"{self.traffic_gib:.2f} GiB traffic"
        )
