"""Common result type for simulated collectives.

:class:`CollectiveResult` is the one result shape every algorithm in
the registry (:mod:`repro.comm`) returns: the network schedules fill it
directly, while the switch-level PsPIN drivers wrap their native result
(kept in :attr:`CollectiveResult.raw`) so detailed counters stay
reachable through the unified API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import MIB


@dataclass
class CollectiveResult:
    """Timing and traffic outcome of one simulated collective."""

    name: str
    n_hosts: int
    vector_bytes: float          # dense-equivalent bytes per host
    time_ns: float
    traffic_bytes_hops: float    # sum over links of bytes carried
    sent_bytes_per_host: float = 0.0
    extra: dict = field(default_factory=dict)
    #: Registry algorithm that produced this result ("" for direct calls).
    algorithm: str = ""
    #: Reduction operator name.
    op: str = "sum"
    #: Native backend result (e.g. ``SwitchAllreduceResult``) when the
    #: algorithm has a richer result type than this common shape.
    raw: object = None

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def traffic_gib(self) -> float:
        return self.traffic_bytes_hops / (1024**3)

    def summary(self) -> str:
        text = (
            f"{self.name}: {self.time_ms:.2f} ms, "
            f"{self.traffic_gib:.2f} GiB traffic"
        )
        if self.sent_bytes_per_host > 0:
            text += f", {self.sent_bytes_per_host / MIB:.2f} MiB sent/host"
        max_link = self.extra.get("max_link_bytes", 0.0)
        if max_link > 0:
            text += f", max-link {max_link / MIB:.2f} MiB"
            routing = self.extra.get("routing")
            if routing:
                text += f" ({routing})"
        return text
