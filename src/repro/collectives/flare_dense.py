"""In-network dense allreduce on the fat tree (Fig. 15, "Flare Dense").

Hosts stream their vector as chunks to the leaf switch; each leaf
aggregates a chunk once all its hosts delivered it and forwards one
aggregated chunk to the root spine; the root aggregates the leaves and
multicasts the result down the tree.  Every host therefore sends Z and
receives Z — the 2x wire saving over host-based ring (which moves ~2Z
per host) that Sec. 1 derives.

The per-chunk aggregation latency at a switch defaults to the PsPIN
model's cost for the chunk (1 ns/byte/core spread over the cores a
chunk's packets occupy ~ pipelined behind the link, so the knob mainly
adds pipeline depth, not bandwidth loss).
"""

from __future__ import annotations

import warnings

from repro.collectives.result import CollectiveResult
from repro.network.simulator import Message, NetworkSimulator
from repro.network.trees import EmbeddedTree, embed_reduction_tree
from repro.network.topology import FatTreeTopology


def simulate_flare_dense_allreduce(
    topology: FatTreeTopology,
    vector_bytes: float,
    chunk_bytes: float = 1024 * 1024,
    agg_latency_ns_per_chunk: float = 2000.0,
    tree: EmbeddedTree | None = None,
) -> CollectiveResult:
    """Simulate one Flare in-network dense allreduce.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("flare_dense"
        algorithm); prefer ``Communicator.allreduce``.
    """
    warnings.warn(
        "simulate_flare_dense_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='flare_dense') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    return legacy_execute(
        "flare_dense",
        nbytes=vector_bytes,
        n_hosts=topology.n_hosts,
        params={
            "topology": topology,
            "chunk_bytes": chunk_bytes,
            "agg_latency_ns_per_chunk": agg_latency_ns_per_chunk,
            "tree": tree,
        },
    )


def _simulate_flare_dense_allreduce(
    topology: FatTreeTopology,
    vector_bytes: float,
    chunk_bytes: float = 1024 * 1024,
    agg_latency_ns_per_chunk: float = 2000.0,
    tree: EmbeddedTree | None = None,
) -> CollectiveResult:
    """Flare in-network dense schedule implementation."""
    net = NetworkSimulator(topology)
    tree = tree or embed_reduction_tree(topology)
    hosts = tree.all_hosts()
    P = len(hosts)
    n_chunks = max(1, int(round(vector_bytes / chunk_bytes)))
    actual_chunk = vector_bytes / n_chunks

    leaf_counts: dict[tuple[str, int], int] = {}
    root_counts: dict[int, int] = {}
    host_received: dict[str, int] = {h: 0 for h in hosts}
    done_hosts = 0
    finish_time = [0.0]

    def on_leaf(leaf: str):
        hosts_here = len(tree.hosts_of[leaf])

        def deliver(msg: Message, now: float) -> None:
            direction, chunk = msg.tag[0], msg.tag[1]
            if direction == "up":
                key = (leaf, chunk)
                leaf_counts[key] = leaf_counts.get(key, 0) + 1
                if leaf_counts[key] == hosts_here:
                    net.send(
                        Message(leaf, tree.root, actual_chunk, tag=("up", chunk)),
                        at=now + agg_latency_ns_per_chunk,
                    )
            else:  # downward multicast to this rack's hosts
                for h in tree.hosts_of[leaf]:
                    net.send(
                        Message(leaf, h, actual_chunk, tag=("down", chunk)),
                        at=now,
                    )

        return deliver

    def on_root(msg: Message, now: float) -> None:
        _direction, chunk = msg.tag[0], msg.tag[1]
        root_counts[chunk] = root_counts.get(chunk, 0) + 1
        if root_counts[chunk] == len(tree.leaves):
            for leaf in tree.leaves:
                net.send(
                    Message(tree.root, leaf, actual_chunk, tag=("down", chunk)),
                    at=now + agg_latency_ns_per_chunk,
                )

    def on_host(host: str):
        def deliver(msg: Message, now: float) -> None:
            nonlocal done_hosts
            host_received[host] += 1
            if host_received[host] == n_chunks:
                done_hosts += 1
                finish_time[0] = max(finish_time[0], now)

        return deliver

    for leaf in tree.leaves:
        net.on_deliver(leaf, on_leaf(leaf))
    net.on_deliver(tree.root, on_root)
    for h in hosts:
        net.on_deliver(h, on_host(h))

    for h in hosts:
        leaf = topology.leaf_of(h)
        for c in range(n_chunks):
            net.send(Message(h, leaf, actual_chunk, tag=("up", c)), at=0.0)
    net.run()
    if done_hosts != P:
        raise RuntimeError(f"flare dense incomplete: {done_hosts}/{P}")
    return CollectiveResult(
        name="Flare dense",
        n_hosts=P,
        vector_bytes=vector_bytes,
        time_ns=finish_time[0],
        traffic_bytes_hops=net.traffic.bytes_hops,
        sent_bytes_per_host=vector_bytes,
        extra={"n_chunks": n_chunks},
    )
