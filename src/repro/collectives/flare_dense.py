"""In-network dense allreduce on the network simulator (Fig. 15,
"Flare Dense").

Hosts stream their vector as chunks to their edge switch; each tree
switch aggregates a chunk once all its children (attached hosts and
child switches) delivered it and forwards one aggregated chunk to its
parent; the root aggregates and multicasts the result down the tree.
Every host therefore sends Z and receives Z — the 2x wire saving over
host-based ring (which moves ~2Z per host) that Sec. 1 derives.

The schedule runs over *any* :class:`repro.network.trees.AggregationTree`
— the classic two-level fat-tree embedding, a deep XGFT, a BFS tree
over a dragonfly or torus — under any routing policy; tree edges are
always single topology links, so hop accounting stays exact.

The per-chunk aggregation latency at a switch defaults to the PsPIN
model's cost for the chunk (1 ns/byte/core spread over the cores a
chunk's packets occupy ~ pipelined behind the link, so the knob mainly
adds pipeline depth, not bandwidth loss).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.collectives.result import CollectiveResult
from repro.collectives.ring import combine_payloads, split_slices
from repro.network.simulator import Message, NetworkSimulator
from repro.network.trees import AggregationTree, EmbeddedTree, as_aggregation_tree
from repro.network.topology import Topology


def simulate_flare_dense_allreduce(
    topology: Topology,
    vector_bytes: float,
    chunk_bytes: float = 1024 * 1024,
    agg_latency_ns_per_chunk: float = 2000.0,
    tree: "EmbeddedTree | AggregationTree | None" = None,
) -> CollectiveResult:
    """Simulate one Flare in-network dense allreduce.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("flare_dense"
        algorithm); prefer ``Communicator.allreduce``.
    """
    warnings.warn(
        "simulate_flare_dense_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='flare_dense') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    return legacy_execute(
        "flare_dense",
        nbytes=vector_bytes,
        n_hosts=topology.n_hosts,
        params={
            "topology": topology,
            "chunk_bytes": chunk_bytes,
            "agg_latency_ns_per_chunk": agg_latency_ns_per_chunk,
            "tree": tree,
        },
    )


def _simulate_flare_dense_allreduce(
    topology: Topology,
    vector_bytes: float,
    chunk_bytes: float = 1024 * 1024,
    agg_latency_ns_per_chunk: float = 2000.0,
    tree: "EmbeddedTree | AggregationTree | None" = None,
    router=None,
    routing_seed: int = 0,
    payloads=None,
    op="sum",
) -> CollectiveResult:
    """Flare dense schedule on a private simulator (one collective)."""
    net = NetworkSimulator(topology, router=router, routing_seed=routing_seed)
    done: list[CollectiveResult] = []
    issue_flare_dense_allreduce(
        net,
        vector_bytes,
        chunk_bytes=chunk_bytes,
        agg_latency_ns_per_chunk=agg_latency_ns_per_chunk,
        tree=tree,
        payloads=payloads,
        op=op,
        on_complete=done.append,
    )
    net.run()
    if not done:
        raise RuntimeError("flare dense incomplete: not all hosts finished")
    return done[0]


def issue_flare_dense_allreduce(
    net: NetworkSimulator,
    vector_bytes: float,
    *,
    chunk_bytes: float = 1024 * 1024,
    agg_latency_ns_per_chunk: float = 2000.0,
    tree: "EmbeddedTree | AggregationTree | None" = None,
    flow: object = None,
    base_time: float = 0.0,
    payloads=None,
    op="sum",
    on_complete,
) -> None:
    """Issue one Flare in-network dense allreduce into a simulator.

    Events start at ``base_time`` under flow id ``flow``;
    ``on_complete(result)`` fires inside the event loop once every host
    received the full multicast, with times relative to ``base_time``
    and traffic read from the flow's own accounting (see
    :func:`repro.collectives.ring.issue_ring_allreduce`).

    With ``payloads`` the chunks carry real data: every tree switch
    combines its children in a *fixed canonical order* (attached hosts
    first, child switches after, both in tree order), so the reduction
    is bitwise deterministic regardless of arrival order, duplicate
    deliveries, or retransmissions — the in-network analogue of the
    reproducible tree aggregation of the PsPIN backend.
    """
    atree = as_aggregation_tree(tree, net.topology)
    hosts = atree.all_hosts()
    P = len(hosts)
    n_chunks = max(1, int(round(vector_bytes / chunk_bytes)))
    actual_chunk = vector_bytes / n_chunks

    #: Per-(switch, chunk) contributions by sender — counting by sender
    #: (not by message) makes fan-in immune to duplicate deliveries.
    up_parts: dict[tuple[str, int], dict] = {}
    host_received: dict[str, int] = {h: 0 for h in hosts}
    #: Dedup guards; consulted whenever faults are armed *at delivery
    #: time* (arming may happen after issue, before the loop runs).
    host_dedup: set = set()
    #: Duplicate "down" messages must not re-trigger subtree multicasts.
    down_dedup: set = set()
    state = {"done_hosts": 0, "finish": base_time}

    carry = payloads is not None
    if carry:
        arrays = [np.ascontiguousarray(np.asarray(p)).ravel() for p in payloads]
        if len(arrays) != P:
            raise ValueError(f"got {len(arrays)} payloads for {P} hosts")
        shape = np.asarray(payloads[0]).shape
        chunk_slices = split_slices(arrays[0].size, n_chunks)
        input_of = {h: arrays[i] for i, h in enumerate(hosts)}
        outputs = {h: np.empty_like(arrays[0]) for h in hosts}

    def reduce_chunk(switch: str, chunk: int) -> "np.ndarray | None":
        """Fold one chunk's contributions in canonical member order."""
        if not carry:
            return None
        parts = up_parts[(switch, chunk)]
        members = (*atree.hosts_of.get(switch, ()),
                   *atree.children_of.get(switch, ()))
        acc = parts[members[0]]
        for member in members[1:]:
            acc = combine_payloads(op, acc, parts[member])
        return acc

    def send_down(switch: str, chunk: int, at: float, data=None) -> None:
        # One burst event for the whole multicast fan-out of this chunk.
        net.send_burst(
            [
                Message(switch, peer, actual_chunk, tag=("down", chunk),
                        payload=data, flow=flow)
                for peer in (
                    *atree.children_of.get(switch, ()),
                    *atree.hosts_of.get(switch, ()),
                )
            ],
            at=at,
        )

    def on_switch(switch: str):
        fan_in = atree.fan_in(switch)
        parent = atree.parent_of(switch)

        def deliver(msg: Message, now: float) -> None:
            direction, chunk = msg.tag[0], msg.tag[1]
            if direction == "up":
                key = (switch, chunk)
                parts = up_parts.get(key)
                if parts is None:
                    parts = up_parts[key] = {}
                if msg.src in parts:
                    return       # duplicate contribution, already folded
                parts[msg.src] = msg.payload if carry else True
                if len(parts) == fan_in:
                    data = reduce_chunk(switch, chunk)
                    if parent is None:   # root: turn around, multicast
                        send_down(switch, chunk,
                                  now + agg_latency_ns_per_chunk, data)
                    else:
                        net.send(
                            Message(
                                switch, parent, actual_chunk,
                                tag=("up", chunk), payload=data, flow=flow,
                            ),
                            at=now + agg_latency_ns_per_chunk,
                        )
            else:   # downward multicast continues through the subtree
                if net.faults is not None:
                    key = (switch, chunk)
                    if key in down_dedup:
                        return
                    down_dedup.add(key)
                send_down(switch, chunk, now, msg.payload)

        return deliver

    def finished() -> CollectiveResult:
        stats = net.flow_stats(flow)
        extra = {
            "n_chunks": n_chunks,
            "tree_root": atree.root,
            "tree_depth": atree.depth(),
            **net.traffic_extra(flow=flow),
        }
        if carry:
            first = outputs[hosts[0]]
            for h in hosts[1:]:
                if not np.array_equal(first, outputs[h]):
                    raise AssertionError(
                        "flare dense allreduce diverged: hosts disagree on "
                        "the reduced vector"
                    )
            extra["output"] = first.reshape(shape)
        return CollectiveResult(
            name="Flare dense",
            n_hosts=P,
            vector_bytes=vector_bytes,
            time_ns=state["finish"] - base_time,
            traffic_bytes_hops=stats.bytes_hops,
            sent_bytes_per_host=vector_bytes,
            extra=extra,
        )

    def on_host(host: str):
        def deliver(msg: Message, now: float) -> None:
            chunk = msg.tag[1]
            if net.faults is not None:
                key = (host, chunk)
                if key in host_dedup:
                    return
                host_dedup.add(key)
            if carry:
                outputs[host][chunk_slices[chunk]] = msg.payload
            host_received[host] += 1
            if host_received[host] == n_chunks:
                state["done_hosts"] += 1
                state["finish"] = max(state["finish"], now)
                if state["done_hosts"] == P:
                    on_complete(finished())

        return deliver

    for switch in atree.switches():
        net.on_deliver(switch, on_switch(switch), flow=flow)
    for h in hosts:
        net.on_deliver(h, on_host(h), flow=flow)

    # Every host's upward chunk train leaves at once: one burst event.
    net.send_burst(
        [
            Message(h, atree.attach_of(h), actual_chunk, tag=("up", c),
                    payload=input_of[h][chunk_slices[c]] if carry else None,
                    flow=flow)
            for h in hosts
            for c in range(n_chunks)
        ],
        at=base_time,
    )
