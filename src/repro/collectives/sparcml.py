"""SparCML host-based sparse allreduce on the network simulator.

The Fig. 15 "Host-Based Sparse" baseline: SparCML's split allreduce
(SSAR) — recursive-halving reduce-scatter over the index space followed
by recursive-doubling allgather, with sparse (index, value) messages
whose sizes grow as the partial aggregates densify.  Like SparCML, a
message switches to dense representation when the sparse encoding would
exceed the dense bytes of its range.

Message sizes derive from the densification model
(:mod:`repro.sparse.densify`): after combining m hosts, a range holding
fraction f of the index space carries ``f * span * (1 - (1-p)^m)``
expected non-zeros.  The Fig. 15 driver feeds the bucket-top-1 profile
(span 512, one survivor per host per bucket).
"""

from __future__ import annotations

import math
import warnings

from repro.collectives.result import CollectiveResult
from repro.network.simulator import Message, NetworkSimulator
from repro.network.topology import FatTreeTopology
from repro.sparse.densify import expected_union

#: Sparse wire bytes per element (index + value).
SPARSE_ELEMENT_BYTES = 8
DENSE_ELEMENT_BYTES = 4


def sparcml_round_bytes(
    n_hosts: int,
    total_elements: float,
    bucket_span: int,
    nnz_per_bucket: float,
    dense_switch: bool = True,
) -> list[float]:
    """Per-round message sizes (bytes) for SSAR halving-doubling.

    Returns ``2 * log2(P)`` sizes: reduce-scatter rounds then allgather
    rounds.  ``total_elements`` is the dense vector length; sparsity
    follows the bucket model (``nnz_per_bucket`` survivors per
    ``bucket_span`` elements per host).
    """
    if n_hosts & (n_hosts - 1):
        raise ValueError("SSAR needs a power-of-two host count")
    k = int(math.log2(n_hosts))
    n_buckets = total_elements / bucket_span
    sizes: list[float] = []
    # Reduce-scatter (halving): before round r each rank has combined
    # 2^r hosts over a range fraction 2^-r; it ships half of that range.
    for r in range(k):
        union_per_bucket = expected_union(bucket_span, nnz_per_bucket, 2**r)
        nnz_in_range = n_buckets * union_per_bucket * (2.0 ** -r)
        ship = nnz_in_range / 2.0
        sparse_bytes = ship * SPARSE_ELEMENT_BYTES
        dense_bytes = total_elements * (2.0 ** -(r + 1)) * DENSE_ELEMENT_BYTES
        sizes.append(min(sparse_bytes, dense_bytes) if dense_switch else sparse_bytes)
    # Allgather (doubling): rank holds fully reduced fraction 2^r / P.
    final_union = expected_union(bucket_span, nnz_per_bucket, n_hosts)
    final_nnz = n_buckets * final_union
    for r in range(k):
        ship = final_nnz * (2.0**r) / n_hosts
        sparse_bytes = ship * SPARSE_ELEMENT_BYTES
        dense_bytes = total_elements * (2.0**r) / n_hosts * DENSE_ELEMENT_BYTES
        sizes.append(min(sparse_bytes, dense_bytes) if dense_switch else sparse_bytes)
    return sizes


def simulate_sparcml_allreduce(
    topology: FatTreeTopology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    dense_switch: bool = True,
    host_reduce_bytes_per_ns: float = 2.5,
) -> CollectiveResult:
    """Simulate SSAR over all hosts of the topology.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("sparcml"
        algorithm); prefer ``Communicator.allreduce(..., sparse=True)``.
    """
    warnings.warn(
        "simulate_sparcml_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='sparcml') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    return legacy_execute(
        "sparcml",
        nbytes=total_elements * DENSE_ELEMENT_BYTES,
        n_hosts=topology.n_hosts,
        sparse=True,
        params={
            "topology": topology,
            "bucket_span": bucket_span,
            "nnz_per_bucket": nnz_per_bucket,
            "dense_switch": dense_switch,
            "host_reduce_bytes_per_ns": host_reduce_bytes_per_ns,
        },
    )


def _simulate_sparcml_allreduce(
    topology: FatTreeTopology,
    total_elements: float,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    dense_switch: bool = True,
    host_reduce_bytes_per_ns: float = 2.5,
    round_bytes: list[float] | None = None,
    router=None,
    routing_seed: int = 0,
    hosts=None,
) -> CollectiveResult:
    """SSAR schedule implementation.

    ``host_reduce_bytes_per_ns`` charges host-side sparse summation per
    received byte during the reduce-scatter rounds (default 2.5 B/ns ~
    2.5 GB/s): merging sparse (index, value) streams is CPU-bound in
    SparCML's own evaluation, unlike the streaming dense adds of the
    ring, so it is *not* defaulted to free.  Allgather rounds only copy
    and are not charged.  ``round_bytes`` lets a plan inject the
    per-round sizes it computed once.
    """
    net = NetworkSimulator(topology, router=router, routing_seed=routing_seed)
    done: list[CollectiveResult] = []
    issue_sparcml_allreduce(
        net,
        total_elements,
        bucket_span=bucket_span,
        nnz_per_bucket=nnz_per_bucket,
        dense_switch=dense_switch,
        host_reduce_bytes_per_ns=host_reduce_bytes_per_ns,
        round_bytes=round_bytes,
        hosts=hosts,
        on_complete=done.append,
    )
    net.run()
    if not done:
        raise RuntimeError("SSAR incomplete: not all hosts finished")
    return done[0]


def issue_sparcml_allreduce(
    net: NetworkSimulator,
    total_elements: float,
    *,
    bucket_span: int = 512,
    nnz_per_bucket: float = 1.0,
    dense_switch: bool = True,
    host_reduce_bytes_per_ns: float = 2.5,
    round_bytes: list[float] | None = None,
    flow: object = None,
    base_time: float = 0.0,
    hosts=None,
    on_complete,
) -> None:
    """Issue one SSAR allreduce into a (possibly shared) simulator.

    Events start at ``base_time`` under flow id ``flow``;
    ``on_complete(result)`` fires inside the event loop when the final
    allgather round lands everywhere, with times relative to
    ``base_time`` and traffic read from the flow's own accounting.

    ``hosts`` restricts the exchange to a participant subset in the
    given order (placement); must still be a power of two.  Default:
    every topology host in id order.
    """
    topology = net.topology
    if hosts is None:
        hosts = topology.hosts
    else:
        hosts = list(hosts)
        known = set(topology.hosts)
        for h in hosts:
            if h not in known:
                raise ValueError(f"unknown host {h}")
    P = len(hosts)
    sizes = round_bytes if round_bytes is not None else sparcml_round_bytes(
        P, total_elements, bucket_span, nnz_per_bucket, dense_switch
    )
    k = len(sizes) // 2
    #: Pairwise exchange distances: halving P/2..1, then doubling 1..P/2.
    distances = [P >> (r + 1) for r in range(k)] + [1 << r for r in range(k)]
    total_rounds = len(sizes)

    #: Pipeline granularity: rounds are cut into sub-chunks so a large
    #: round message does not pay full store-and-forward serialization
    #: per hop; the *round barrier* stays (next round's content derives
    #: from the merged data, so it cannot start early).
    sub_chunk_bytes = 128 * 1024.0

    progressed: dict[str, int] = {h: 0 for h in hosts}   # rounds finished
    subs_received: dict[tuple[str, int], int] = {}
    state = {"done_hosts": 0, "finish": base_time}
    #: Under fault injection duplicated sub-chunks must not advance the
    #: round barrier early (the Sec. 4.1 bitmap property, host-side);
    #: armed-ness is checked at delivery time (arming may follow issue).
    dedup: set = set()

    def send_round(i: int, rnd: int, at: float) -> None:
        partner = i ^ distances[rnd]
        n_sub = max(1, int(round(sizes[rnd] / sub_chunk_bytes)))
        sub_bytes = sizes[rnd] / n_sub
        # One burst event per round's sub-chunk train (same timing as
        # per-message events, issued back-to-back at one instant).
        net.send_burst(
            [
                Message(
                    hosts[i], hosts[partner], sub_bytes,
                    tag=("ssar", rnd, s, n_sub), flow=flow,
                )
                for s in range(n_sub)
            ],
            at=at,
        )

    def finished() -> CollectiveResult:
        stats = net.flow_stats(flow)
        return CollectiveResult(
            name="host-sparse (SparCML)",
            n_hosts=P,
            vector_bytes=total_elements * DENSE_ELEMENT_BYTES,
            time_ns=state["finish"] - base_time,
            traffic_bytes_hops=stats.bytes_hops,
            sent_bytes_per_host=sum(sizes),
            extra={"round_bytes": sizes, **net.traffic_extra(flow=flow)},
        )

    def on_deliver(msg: Message, now: float) -> None:
        _kind, rnd, _sub, n_sub = msg.tag
        receiver = msg.dst
        if net.faults is not None:
            seen = (receiver, rnd, _sub)
            if seen in dedup:
                return
            dedup.add(seen)
        key = (receiver, rnd)
        subs_received[key] = subs_received.get(key, 0) + 1
        if subs_received[key] < n_sub:
            return
        i = rank_of[receiver]
        progressed[receiver] = rnd + 1
        compute = 0.0
        if host_reduce_bytes_per_ns > 0 and rnd < k:
            compute = sizes[rnd] / host_reduce_bytes_per_ns
        if rnd + 1 < total_rounds:
            send_round(i, rnd + 1, now + compute)
        else:
            state["done_hosts"] += 1
            state["finish"] = max(state["finish"], now + compute)
            if state["done_hosts"] == P:
                on_complete(finished())

    rank_of = {h: i for i, h in enumerate(hosts)}
    for h in hosts:
        net.on_deliver(h, on_deliver, flow=flow)
    for i in range(P):
        send_round(i, 0, base_time)
