"""Figure 13: modeled sparse-allreduce bandwidth, hash vs array storage,
for 64..512 KiB sparsified data at 10% density, all four designs.

Paper shapes: sparse bandwidth sits well below the dense ~4 Tbps
(costlier per-element handling + 8 B/element wire format); array
storage outruns hash storage; the algorithm ordering mirrors the dense
Fig. 10 (tree best at small sizes, single catching up with size).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FlareConfig
from repro.sparse.models import sparse_design_point
from repro.utils.tables import series_block
from repro.utils.units import parse_size

SIZES = ("64KiB", "256KiB", "512KiB")
DESIGNS = (("single", 1), ("multi", 2), ("multi", 4), ("tree", 1))
DENSITY = 0.10


@dataclass
class Fig13Result:
    sizes: list[str] = field(default_factory=list)
    density: float = DENSITY
    #: bandwidth[storage][algorithm] -> [Tbps] aligned with sizes
    bandwidth: dict = field(default_factory=dict)


def run(fast: bool = False) -> Fig13Result:
    result = Fig13Result(sizes=list(SIZES))
    for storage in ("hash", "array"):
        per_algo: dict[str, list[float]] = {}
        for algo, b in DESIGNS:
            bws = []
            label = None
            for size in SIZES:
                cfg = FlareConfig(
                    children=64, subset_size=8, data_bytes=parse_size(size)
                )
                point = sparse_design_point(cfg, algo, storage, DENSITY, n_buffers=b)
                label = point.algorithm
                bws.append(point.bandwidth_tbps)
            per_algo[label] = bws
        result.bandwidth[storage] = per_algo
    return result


def render(result: Fig13Result) -> str:
    blocks = []
    for storage, per_algo in result.bandwidth.items():
        blocks.append(
            series_block(
                f"Figure 13: modeled sparse bandwidth (Tbps), {storage} storage, "
                f"density {result.density:.0%}",
                "size (sparsified)", result.sizes,
                {k: [round(v, 2) for v in vs] for k, vs in per_algo.items()},
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run()))
