"""Figure 14: simulated sparse allreduce — bandwidth, per-block memory,
and extra traffic vs data density (20% / 10% / 1%), hash vs array.

Paper shapes: hash bandwidth and memory are flat across densities;
array is faster and spill-free but its block memory grows as 1/density
until it no longer fits Flare's working-memory partition (no array bars
at 1%); hash spilling costs extra traffic, worst at 20% density where
it roughly doubles the switch's output ("spilling doubles the network
traffic").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm import Communicator
from repro.sparse.allreduce import SparseAllreduceResult
from repro.utils.tables import ascii_table

DENSITIES = (0.20, 0.10, 0.01)


@dataclass
class Fig14Result:
    densities: list[float] = field(default_factory=list)
    results: dict = field(default_factory=dict)  # storage -> [SparseAllreduceResult]


def run(fast: bool = False, seed: int = 0, correlation: float = 0.0) -> Fig14Result:
    """Run the density sweep.

    ``correlation`` biases hosts toward shared non-zero positions
    (top-k-gradient-like); 0 is the uniform worst case.  The allreduce
    size follows the paper's 1 MiB experiment, scaled down in fast mode.
    """
    # Paper uses 1 MiB; 256 KiB keeps the open-loop in-flight block
    # count inside the working-memory partition at 64 children while
    # preserving every density shape (bandwidths are size-flat).
    size = "64KiB" if fast else "256KiB"
    children = 16 if fast else 64
    n_clusters = 2 if fast else 4
    out = Fig14Result(densities=list(DENSITIES))
    comm = Communicator(n_hosts=children, n_clusters=n_clusters)
    for storage in ("hash", "array"):
        rs: list[SparseAllreduceResult] = []
        for density in DENSITIES:
            rs.append(
                comm.allreduce(
                    size,
                    algorithm="flare_switch_sparse",
                    sparse=True,
                    density=density,
                    storage=storage,
                    correlation=correlation,
                    seed=seed,
                ).raw
            )
        out.results[storage] = rs
    return out


def render(result: Fig14Result) -> str:
    rows = []
    for storage, rs in result.results.items():
        for r in rs:
            if r.feasible:
                rows.append([
                    storage, f"{r.density:.0%}",
                    round(r.bandwidth_tbps, 2),
                    round(r.block_memory_bytes / 1024, 1),
                    round(r.extra_traffic_pct, 0),
                ])
            else:
                rows.append([
                    storage, f"{r.density:.0%}", "-",
                    round(r.block_memory_bytes / 1024, 1),
                    "- (does not fit memory)",
                ])
    return ascii_table(
        ["storage", "density", "band (Tbps)", "block mem (KiB)", "extra traffic (%)"],
        rows,
        title="Figure 14: simulated sparse allreduce vs density",
    )


if __name__ == "__main__":
    print(render(run()))
