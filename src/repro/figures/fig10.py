"""Figure 10: modeled bandwidth and memory for all four aggregation
designs at S=C across data sizes 64..512 KiB.

Paper shapes: tree is flat at ~optimal bandwidth; multi(4) recovers
before multi(2) before single as staggered sending gains room; at
512 KiB single edges ahead (no buffer-management overhead); memory is
single < multi(2) < multi(4) ~ tree, all a few MiB at most.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FlareConfig
from repro.core.models import evaluate_design
from repro.utils.tables import series_block
from repro.utils.units import bytes_to_mib, parse_size

SIZES = ("64KiB", "128KiB", "256KiB", "512KiB")
DESIGNS = (("single", 1), ("multi", 2), ("multi", 4), ("tree", 1))


@dataclass
class Fig10Result:
    sizes: list[str] = field(default_factory=list)
    bandwidth: dict = field(default_factory=dict)     # label -> [Tbps]
    memory: dict = field(default_factory=dict)        # label -> [MiB]


def run(fast: bool = False) -> Fig10Result:
    result = Fig10Result(sizes=list(SIZES))
    for algo, b in DESIGNS:
        bws, mems = [], []
        label = None
        for size in SIZES:
            cfg = FlareConfig(children=64, subset_size=8, data_bytes=parse_size(size))
            point = evaluate_design(cfg, algo, n_buffers=b)
            label = point.algorithm
            bws.append(point.bandwidth_tbps)
            # Total memory: input buffers + working memory, the paper's
            # "Memory (MiB)" panel aggregates what the reduction holds.
            mems.append(bytes_to_mib(point.working_memory_bytes))
        result.bandwidth[label] = bws
        result.memory[label] = mems
    return result


def render(result: Fig10Result) -> str:
    top = series_block(
        "Figure 10 (left): modeled bandwidth (Tbps), S=C",
        "size", result.sizes,
        {k: [round(v, 2) for v in vs] for k, vs in result.bandwidth.items()},
    )
    bottom = series_block(
        "Figure 10 (right): modeled working memory (MiB)",
        "size", result.sizes,
        {k: [round(v, 3) for v in vs] for k, vs in result.memory.items()},
    )
    return top + "\n\n" + bottom


if __name__ == "__main__":
    print(render(run()))
