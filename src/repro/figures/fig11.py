"""Figure 11: simulated switch bandwidth vs data size (left) and
elements/second per data type (right), against SwitchML and SHARP.

Left panel (int32, sizes 1 KiB .. 1 MiB): only tree aggregation beats
SwitchML's 1.6 Tbps at small sizes (cold i-cache + contention hurt
single/multi); single buffer wins at >= 512 KiB, exceeding SHARP's
3.2 Tbps line.

Right panel (1 MiB): Flare's SIMD cores double the element rate for
int16 and quadruple it for int8; SwitchML is flat (fixed elements per
packet) and absent for float.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.sharp import SHARPModel
from repro.baselines.switchml import SwitchMLModel
from repro.comm import Communicator
from repro.utils.tables import series_block
from repro.utils.units import parse_size

#: Full mode stops at 512 KiB: the open-loop driver's working-memory
#: admission stalls make the 1 MiB tree point pathologically slow to
#: simulate; the curves are flat past 512 KiB (see EXPERIMENTS.md).
SIZES_FULL = ("1KiB", "4KiB", "64KiB", "512KiB")
SIZES_FAST = ("1KiB", "4KiB", "64KiB")
DTYPES = ("int32", "int16", "int8", "float32")


@dataclass
class Fig11Result:
    sizes: list[str] = field(default_factory=list)
    bandwidth: dict = field(default_factory=dict)       # algo -> [Tbps]
    switchml_tbps: float = 1.6
    sharp_tbps: float = 3.2
    dtypes: list[str] = field(default_factory=list)
    elements_per_s: dict = field(default_factory=dict)  # system -> [el/s]


def run(fast: bool = False, seed: int = 0) -> Fig11Result:
    sizes = SIZES_FAST if fast else SIZES_FULL
    children = 16 if fast else 64
    n_clusters = 2 if fast else 4
    result = Fig11Result(sizes=list(sizes))
    switchml = SwitchMLModel()
    sharp = SHARPModel()
    result.switchml_tbps = switchml.bandwidth_tbps("int32")
    result.sharp_tbps = sharp.bandwidth_tbps("int32")

    comm = Communicator(n_hosts=children, n_clusters=n_clusters)
    for algo in ("single", "multi(4)", "tree"):
        bws = []
        for size in sizes:
            r = comm.allreduce(
                parse_size(size),
                algorithm="flare_switch",
                aggregation=algo,
                dtype="int32",
                seed=seed,
                cold_start=True,
            ).raw
            bws.append(r.bandwidth_tbps)
        result.bandwidth[algo] = bws

    # Right panel: elements/s at a large size per dtype (paper: 1 MiB;
    # 512 KiB here, already on the flat part of the curve).
    big = "64KiB" if fast else "512KiB"
    result.dtypes = list(DTYPES)
    flare_rates, switchml_rates = [], []
    for dtype in DTYPES:
        r = comm.allreduce(
            parse_size(big),
            algorithm="flare_switch",
            aggregation="single",
            dtype=dtype,
            seed=seed,
            cold_start=False,
        ).raw
        flare_rates.append(r.elements_per_second)
        switchml_rates.append(switchml.elements_per_second(dtype))
    result.elements_per_s = {"Flare": flare_rates, "SwitchML": switchml_rates}
    return result


def render(result: Fig11Result) -> str:
    series = {k: [round(v, 2) for v in vs] for k, vs in result.bandwidth.items()}
    series["SwitchML (ref)"] = [round(result.switchml_tbps, 2)] * len(result.sizes)
    series["SHARP (ref)"] = [round(result.sharp_tbps, 2)] * len(result.sizes)
    left = series_block(
        "Figure 11 (left): simulated bandwidth (Tbps), int32",
        "size", result.sizes, series,
    )
    right = series_block(
        "Figure 11 (right): elements aggregated per second (largest size)",
        "dtype", result.dtypes,
        {k: [f"{v:.2e}" for v in vs] for k, vs in result.elements_per_s.items()},
    )
    return left + "\n\n" + right


if __name__ == "__main__":
    print(render(run()))
