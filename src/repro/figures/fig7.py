"""Figure 7: single-buffer aggregation — modeled bandwidth, input-buffer
occupancy, and working-memory occupancy, for S=1 vs S=C at 8/64/512 KiB.

Paper shapes to reproduce:
* S=1 sustains ~4.1 Tbps at every size but costs ~32 MiB of input
  buffers at 8 KiB;
* S=C collapses to ~1.2 Tbps at 8 KiB (buffer contention) and recovers
  to ~4.1 Tbps by 512 KiB (staggered sending stretches delta_c past L);
* working memory stays well under 1 MiB everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FlareConfig
from repro.core.models import evaluate_design
from repro.utils.tables import ascii_table
from repro.utils.units import bytes_to_mib, parse_size

SIZES = ("8KiB", "64KiB", "512KiB")


@dataclass
class Fig7Result:
    sizes: list[str] = field(default_factory=list)
    #: series[S][metric] -> list aligned with sizes
    series: dict = field(default_factory=dict)


def run(fast: bool = False) -> Fig7Result:
    """Evaluate the Fig. 7 model grid (closed-form; fast already)."""
    result = Fig7Result(sizes=list(SIZES))
    for label, subset in (("S=1", 1), ("S=C", 8)):
        bw, inbuf, wmem = [], [], []
        for size in SIZES:
            cfg = FlareConfig(
                children=64,
                subset_size=subset,
                data_bytes=parse_size(size),
            )
            point = evaluate_design(cfg, "single")
            bw.append(point.bandwidth_tbps)
            inbuf.append(bytes_to_mib(point.input_buffer_bytes))
            wmem.append(bytes_to_mib(point.working_memory_bytes))
        result.series[label] = {
            "bandwidth_tbps": bw,
            "input_buffer_mib": inbuf,
            "working_memory_mib": wmem,
        }
    return result


def render(result: Fig7Result) -> str:
    rows = []
    for i, size in enumerate(result.sizes):
        row = [size]
        for label in ("S=1", "S=C"):
            s = result.series[label]
            row += [
                round(s["bandwidth_tbps"][i], 2),
                round(s["input_buffer_mib"][i], 2),
                round(s["working_memory_mib"][i], 3),
            ]
        rows.append(row)
    return ascii_table(
        ["size",
         "S=1 band(Tbps)", "S=1 inbuf(MiB)", "S=1 wmem(MiB)",
         "S=C band(Tbps)", "S=C inbuf(MiB)", "S=C wmem(MiB)"],
        rows,
        title="Figure 7: single-buffer aggregation (modeled)",
    )


if __name__ == "__main__":
    print(render(run()))
