"""Table 1: the capability comparison (qualitative)."""

from __future__ import annotations

from repro.baselines.capability import CAPABILITY_MATRIX, capability_table, flare_dominates


def run(fast: bool = False):
    """Returns the capability matrix (no simulation involved)."""
    return CAPABILITY_MATRIX


def render(_result=None) -> str:
    return capability_table()


def verify() -> bool:
    """Flare must be the unique system providing F1+F2+F3."""
    return flare_dominates()


if __name__ == "__main__":
    print(render())
