"""Figure 15: 64-node end-to-end comparison on a 2-level fat tree —
completion time and total network traffic for host-based dense (ring),
Flare dense, host-based sparse (SparCML), and Flare sparse, on
ResNet-50-like sparsified gradients (100 MiB/host, bucket-512 top-1).

Paper shapes: in-network dense halves both the time and the traffic of
host-based dense; host-based sparse is competitive with in-network
dense on time; Flare sparse wins both metrics outright (paper: >=35%
faster than SparCML, ~43% faster than Flare dense, with order-of-
magnitude traffic reduction).

The per-level sparse message sizes come from the *measured* index
unions of the synthetic gradient workload (not just the analytic
densification bound), so the host-overlap structure flows through to
the traffic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.result import CollectiveResult
from repro.comm import Communicator
from repro.data.buckets import bucket_top1_sparsify, bucket_union_counts
from repro.data.resnet50 import iter_host_gradients, resnet50_parameter_count
from repro.utils.tables import ascii_table
from repro.utils.units import MIB

BUCKET = 512


@dataclass
class Fig15Result:
    results: list[CollectiveResult] = field(default_factory=list)
    union_counts: list[float] = field(default_factory=list)  # host/leaf/root
    bytes_per_host: float = 0.0

    def by_name(self, prefix: str) -> CollectiveResult:
        for r in self.results:
            if r.name.startswith(prefix):
                return r
        raise KeyError(prefix)


def run(fast: bool = False, seed: int = 0, shared_fraction: float = 0.7) -> Fig15Result:
    n_hosts = 64
    if fast:
        n_params = 2_000_000            # ~8 MiB/host
    else:
        n_params = resnet50_parameter_count()   # full model, ~100 MiB/host
    vector_bytes = float(n_params * 4)
    total_elements = float(n_params)

    # Sparsify per host (streamed — one 100 MiB vector resident at a
    # time) and measure index unions at each tree level.
    per_host_indices = []
    for _h, grad in iter_host_gradients(
        n_hosts=n_hosts, seed=seed, shared_fraction=shared_fraction,
        n_params=n_params,
    ):
        idx, _vals = bucket_top1_sparsify(grad, BUCKET)
        per_host_indices.append(idx)
    unions = bucket_union_counts(per_host_indices, [1, 8, 64])
    host_nnz, leaf_nnz, root_nnz = unions
    level_bytes = (host_nnz * 8.0, leaf_nnz * 8.0, root_nnz * 8.0)
    # Effective per-bucket survivors for the SparCML size model, from
    # the measured global union (keeps both sparse systems on the same
    # overlap structure).
    n_buckets = total_elements / BUCKET
    eff_union_per_bucket = root_nnz / n_buckets

    # The paper's wiring, pinned explicitly: XGFT(2; 8,8; 1,4) fat tree
    # with deterministic seeded ECMP (the default policy, spelled out
    # here so figure parity survives future routing-default changes).
    comm = Communicator(
        n_hosts=n_hosts, hosts_per_leaf=8, n_spines=4, routing="ecmp"
    )
    results = [
        comm.allreduce(vector_bytes, algorithm="ring"),
        comm.allreduce(vector_bytes, algorithm="flare_dense"),
        comm.allreduce(
            vector_bytes, algorithm="sparcml", sparse=True,
            bucket_span=BUCKET,
            nnz_per_bucket=_invert_union(BUCKET, eff_union_per_bucket, n_hosts),
        ),
        comm.allreduce(
            vector_bytes, algorithm="flare_sparse", sparse=True,
            bucket_span=BUCKET, level_bytes=level_bytes,
        ),
    ]
    return Fig15Result(
        results=results, union_counts=unions, bytes_per_host=vector_bytes
    )


def _invert_union(span: int, union_target: float, n_hosts: int) -> float:
    """Find nnz/bucket whose n_hosts-union matches the measured one.

    The union model u = s(1-(1-p)^m) inverts in closed form.
    """
    frac = min(max(union_target / span, 1e-9), 0.999999)
    p = 1.0 - (1.0 - frac) ** (1.0 / n_hosts)
    return p * span


def render(result: Fig15Result) -> str:
    rows = [
        [r.name, round(r.time_ms, 2), round(r.traffic_gib, 2)]
        for r in result.results
    ]
    table = ascii_table(
        ["system", "time (ms)", "traffic (GiB)"],
        rows,
        title=(
            "Figure 15: 64-node allreduce on 2-level fat tree "
            f"({result.bytes_per_host / MIB:.0f} MiB/host, "
            "bucket-512 top-1 sparsified gradients)"
        ),
    )
    h, l, r_ = result.union_counts
    note = (
        f"measured nnz: host {h:.3g}, rack-union {l:.3g}, "
        f"global-union {r_:.3g} "
        f"(densification x{r_ / h:.1f} hosts->root)"
    )
    return table + "\n" + note


if __name__ == "__main__":
    print(render(run()))
