"""Experiment runners: one module per paper table/figure.

Each module exposes ``run(fast=False)`` returning a structured result
and ``render(result)`` producing the paper-style text table; running a
module as a script prints the rendered table.  The benchmark harness in
``benchmarks/`` wraps these with pytest-benchmark and asserts the
expected qualitative shapes.

``fast=True`` shrinks simulated scales (fewer children / smaller
vectors) for CI-speed smoke runs; the shapes the paper reports must
hold in both modes.
"""

__all__ = ["fig7", "fig10", "fig11", "fig13", "fig14", "fig15", "table1"]
