"""Multi-switch (hierarchical) in-network allreduce (paper Fig. 1).

Composes several PsPIN behavioral switches into the paper's recursive
aggregation: leaf switches aggregate their hosts and forward one stream
to a root switch, which aggregates the leaves and multicasts the fully
reduced data back down.  All switches share one discrete-event clock,
so end-to-end cycle counts compose, and the data path is exact — the
root's output is checked against the numpy golden sum over every host.

This is the switch-level (cycle-domain) counterpart of the chunk-level
``repro.collectives.flare_dense`` schedule: use this one to study
switch-internal behaviour across tree levels (e.g. sparse
densification hitting the root, Sec. 7's "hash at the leaves, array at
the root" guidance), and the network one for end-to-end times at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.manager import NetworkManager
from repro.core.ops import get_op
from repro.core.staggered import arrival_stream
from repro.pspin.costs import CostModel
from repro.pspin.engine import Simulator
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig


@dataclass
class TwoLevelResult:
    """Outcome of a two-level in-network allreduce."""

    makespan_cycles: float
    blocks_completed: int
    outputs: dict[int, np.ndarray] = field(default_factory=dict)
    leaf_egress_packets: int = 0
    root_egress_packets: int = 0


def run_two_level_allreduce(
    n_leaves: int = 4,
    hosts_per_leaf: int = 8,
    n_blocks: int = 8,
    elements_per_packet: int = 256,
    dtype: str = "float32",
    algorithm: str | None = None,
    reproducible: bool = False,
    op: str = "sum",
    n_clusters: int = 2,
    inter_switch_latency: float = 500.0,
    seed: int = 0,
    data: np.ndarray | None = None,
    verify: bool = True,
) -> TwoLevelResult:
    """Aggregate across leaf switches and a root switch, end to end.

    ``data`` has shape (n_leaves * hosts_per_leaf, n_blocks, elements);
    random integers when omitted.  The root multicasts the result to its
    children; we capture one copy per block for verification.
    """
    n_hosts = n_leaves * hosts_per_leaf
    if data is None:
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 7, size=(n_hosts, n_blocks, elements_per_packet)).astype(dtype)

    sim = Simulator()
    cost_model = CostModel()

    def mk() -> PsPINSwitch:
        return PsPINSwitch(
            SwitchConfig(n_clusters=n_clusters, cost_model=cost_model), sim=sim
        )

    leaves = {i: mk() for i in range(1, n_leaves + 1)}
    root = mk()
    switches: dict[int, PsPINSwitch] = {0: root, **leaves}

    manager = NetworkManager()
    tree = manager.two_level_tree(
        hosts_per_leaf={
            leaf_id: list(range((leaf_id - 1) * hosts_per_leaf, leaf_id * hosts_per_leaf))
            for leaf_id in leaves
        },
        root_switch=0,
    )
    installed = manager.install(
        tree,
        switches,
        data_bytes=n_blocks * elements_per_packet * data.dtype.itemsize,
        dtype_name=dtype,
        reproducible=reproducible,
        op=get_op(op),
        algorithm=algorithm,
    )
    allreduce_id = installed.allreduce_id

    # Wire leaf egress into the root: the leaf's aggregate for block b
    # arrives at the root on the port matching the leaf's index.
    leaf_counters = {"packets": 0}

    def make_uplink(leaf_index: int):
        def uplink(time: float, packet: SwitchPacket) -> None:
            leaf_counters["packets"] += 1
            root.inject(
                SwitchPacket(
                    allreduce_id=allreduce_id,
                    block_id=packet.block_id,
                    port=leaf_index,
                    payload=packet.payload,
                ),
                at=time + inter_switch_latency,
            )

        return uplink

    for idx, leaf_id in enumerate(sorted(leaves)):
        leaves[leaf_id].egress_callback = make_uplink(idx)

    # Hosts inject into their leaf switch, staggered per leaf.
    delta = SwitchConfig(n_clusters=n_clusters).packet_interarrival_cycles(
        elements_per_packet * data.dtype.itemsize
    ) * (64 / n_clusters)
    for idx, leaf_id in enumerate(sorted(leaves)):
        stream = arrival_stream(
            n_hosts=hosts_per_leaf, n_blocks=n_blocks, delta=delta,
            staggered=True, jitter=1.0, seed=seed + leaf_id,
        )
        base = idx * hosts_per_leaf
        for sp in stream:
            leaves[leaf_id].inject(
                SwitchPacket(
                    allreduce_id=allreduce_id,
                    block_id=sp.block,
                    port=sp.host,
                    payload=data[base + sp.host, sp.block],
                ),
                at=sp.time,
            )

    sim.run()
    makespan = sim.now

    outputs: dict[int, np.ndarray] = {}
    for _t, pkt in root.egress:
        outputs.setdefault(pkt.block_id, pkt.payload)
    if verify:
        operator = get_op(op)
        for b in range(n_blocks):
            golden = data[0, b].copy()
            for h in range(1, n_hosts):
                operator.combine_into(golden, data[h, b])
            got = outputs.get(b)
            if got is None:
                raise AssertionError(f"block {b} never reached the root")
            if np.issubdtype(golden.dtype, np.integer):
                assert np.array_equal(got, golden), f"block {b} mismatch"
            else:
                assert np.allclose(got, golden, rtol=1e-5), f"block {b} mismatch"

    root_handler_name = None
    for name in ("flare-single", "flare-multi2", "flare-multi4", "flare-tree"):
        if name in root._handlers:
            root_handler_name = name
            break
    blocks_done = (
        root.handler(root_handler_name).blocks_completed
        if root_handler_name
        else 0
    )
    return TwoLevelResult(
        makespan_cycles=makespan,
        blocks_completed=blocks_done,
        outputs=outputs,
        leaf_egress_packets=leaf_counters["packets"],
        root_egress_packets=len(root.egress),
    )
