"""Multi-switch (hierarchical) in-network allreduce (paper Fig. 1).

Composes several PsPIN behavioral switches into the paper's recursive
aggregation: every switch on an aggregation tree aggregates its
directly attached hosts plus its child switches and forwards one
stream to its parent; the root aggregates and multicasts the fully
reduced data back down.  All switches share one discrete-event clock,
so end-to-end cycle counts compose, and the data path is exact — the
root's output is checked against the numpy golden sum over every host.

The tree comes from :class:`repro.network.trees.TreePlanner`, so the
same engine runs the classic two-level fat-tree shape
(:func:`run_two_level_allreduce`), a deep XGFT, or a BFS tree over a
dragonfly or torus (:func:`run_tree_allreduce`) — switch-level
behaviour across tree levels (e.g. sparse densification hitting the
root, Sec. 7's "hash at the leaves, array at the root" guidance) on
any wiring.  Use the chunk-level ``repro.collectives.flare_dense``
schedule instead for end-to-end times at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.manager import NetworkManager
from repro.core.ops import get_op
from repro.core.staggered import arrival_stream
from repro.network.topology import FatTreeTopology, Topology
from repro.network.trees import AggregationTree, TreePlanner, as_aggregation_tree
from repro.pspin.costs import CostModel
from repro.pspin.engine import Simulator
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig


@dataclass
class TreeAllreduceResult:
    """Outcome of an in-network allreduce over an aggregation tree."""

    makespan_cycles: float
    blocks_completed: int
    outputs: dict[int, np.ndarray] = field(default_factory=dict)
    uplink_packets: int = 0          # child-switch -> parent aggregates
    root_egress_packets: int = 0
    tree: AggregationTree = None
    n_switches: int = 0


@dataclass
class TwoLevelResult:
    """Outcome of a two-level in-network allreduce (legacy shape)."""

    makespan_cycles: float
    blocks_completed: int
    outputs: dict[int, np.ndarray] = field(default_factory=dict)
    leaf_egress_packets: int = 0
    root_egress_packets: int = 0


def run_tree_allreduce(
    topology: Topology | None = None,
    tree: AggregationTree | None = None,
    root: str | None = None,
    n_blocks: int = 8,
    elements_per_packet: int = 256,
    dtype: str = "float32",
    algorithm: str | None = None,
    reproducible: bool = False,
    op: str = "sum",
    n_clusters: int = 2,
    inter_switch_latency: float = 500.0,
    seed: int = 0,
    data: np.ndarray | None = None,
    verify: bool = True,
) -> TreeAllreduceResult:
    """Aggregate across the switches of an aggregation tree, end to end.

    Provide ``topology`` (the tree is planned, optionally rooted at
    ``root``) or a prebuilt ``tree``.  ``data`` has shape
    (n_hosts, n_blocks, elements) with hosts in ``tree.all_hosts()``
    order; random integers when omitted.  The root multicasts the
    result to its children; we capture one copy per block for
    verification.
    """
    if tree is None:
        if topology is None:
            raise ValueError("need a topology or a prebuilt tree")
        tree = TreePlanner(topology).plan(root=root)
    elif topology is not None:
        tree = as_aggregation_tree(tree, topology)
    hosts = tree.all_hosts()
    n_hosts = len(hosts)
    if data is None:
        rng = np.random.default_rng(seed)
        data = rng.integers(
            0, 7, size=(n_hosts, n_blocks, elements_per_packet)
        ).astype(dtype)

    sim = Simulator()
    cost_model = CostModel()

    def mk() -> PsPINSwitch:
        return PsPINSwitch(
            SwitchConfig(n_clusters=n_clusters, cost_model=cost_model), sim=sim
        )

    # Integer switch ids: root is 0, the rest follow tree BFS order —
    # for the two-level fat-tree shape this reproduces the historical
    # numbering (root 0, leaves 1..n) and its per-leaf stream seeds.
    tree_switches = tree.switches()
    id_of = {name: i for i, name in enumerate(tree_switches)}
    switches: dict[int, PsPINSwitch] = {i: mk() for i in range(len(tree_switches))}
    root_switch = switches[0]

    # Per-switch ordered children: attached hosts first, then child
    # switches; the position is the ingress port.
    def ordered_children(name: str) -> list[str]:
        return list(tree.hosts_of.get(name, ())) + list(
            tree.children_of.get(name, ())
        )

    manager = NetworkManager()
    rtree = manager.tree_from_aggregation(tree, id_of)
    installed = manager.install(
        rtree,
        switches,
        data_bytes=n_blocks * elements_per_packet * data.dtype.itemsize,
        dtype_name=dtype,
        reproducible=reproducible,
        op=get_op(op),
        algorithm=algorithm,
    )
    allreduce_id = installed.allreduce_id

    # Wire every child switch's egress into its parent: the child's
    # aggregate for block b arrives on the port matching its position
    # among the parent's children.
    uplink_counter = {"packets": 0}

    def make_uplink(parent: PsPINSwitch, port: int):
        def uplink(time: float, packet: SwitchPacket) -> None:
            uplink_counter["packets"] += 1
            parent.inject(
                SwitchPacket(
                    allreduce_id=allreduce_id,
                    block_id=packet.block_id,
                    port=port,
                    payload=packet.payload,
                ),
                at=time + inter_switch_latency,
            )

        return uplink

    for name in tree_switches:
        parent_name = tree.parent_of(name)
        if parent_name is None:
            continue
        port = ordered_children(parent_name).index(name)
        switches[id_of[name]].egress_callback = make_uplink(
            switches[id_of[parent_name]], port
        )

    # Hosts inject into their attach switch, staggered per switch.
    row_of = {h: i for i, h in enumerate(hosts)}
    delta = SwitchConfig(n_clusters=n_clusters).packet_interarrival_cycles(
        elements_per_packet * data.dtype.itemsize
    ) * (64 / n_clusters)
    for name in tree_switches:
        attached = tree.hosts_of.get(name, ())
        if not attached:
            continue
        stream = arrival_stream(
            n_hosts=len(attached), n_blocks=n_blocks, delta=delta,
            staggered=True, jitter=1.0, seed=seed + id_of[name],
        )
        for sp in stream:
            switches[id_of[name]].inject(
                SwitchPacket(
                    allreduce_id=allreduce_id,
                    block_id=sp.block,
                    port=sp.host,
                    payload=data[row_of[attached[sp.host]], sp.block],
                ),
                at=sp.time,
            )

    sim.run()
    makespan = sim.now

    outputs: dict[int, np.ndarray] = {}
    for _t, pkt in root_switch.egress:
        outputs.setdefault(pkt.block_id, pkt.payload)
    if verify:
        operator = get_op(op)
        for b in range(n_blocks):
            golden = data[0, b].copy()
            for h in range(1, n_hosts):
                operator.combine_into(golden, data[h, b])
            got = outputs.get(b)
            if got is None:
                raise AssertionError(f"block {b} never reached the root")
            if np.issubdtype(golden.dtype, np.integer):
                assert np.array_equal(got, golden), f"block {b} mismatch"
            else:
                assert np.allclose(got, golden, rtol=1e-5), f"block {b} mismatch"

    root_handler_name = None
    for name in ("flare-single", "flare-multi2", "flare-multi4", "flare-tree"):
        if name in root_switch._handlers:
            root_handler_name = name
            break
    blocks_done = (
        root_switch.handler(root_handler_name).blocks_completed
        if root_handler_name
        else 0
    )
    return TreeAllreduceResult(
        makespan_cycles=makespan,
        blocks_completed=blocks_done,
        outputs=outputs,
        uplink_packets=uplink_counter["packets"],
        root_egress_packets=len(root_switch.egress),
        tree=tree,
        n_switches=len(tree_switches),
    )


def run_two_level_allreduce(
    n_leaves: int = 4,
    hosts_per_leaf: int = 8,
    n_blocks: int = 8,
    elements_per_packet: int = 256,
    dtype: str = "float32",
    algorithm: str | None = None,
    reproducible: bool = False,
    op: str = "sum",
    n_clusters: int = 2,
    inter_switch_latency: float = 500.0,
    seed: int = 0,
    data: np.ndarray | None = None,
    verify: bool = True,
) -> TwoLevelResult:
    """The classic shape: leaves aggregate their racks, one root
    aggregates the leaves (now a thin wrapper over the tree engine)."""
    topology = FatTreeTopology(
        n_hosts=n_leaves * hosts_per_leaf,
        hosts_per_leaf=hosts_per_leaf,
        n_spines=1,
    )
    r = run_tree_allreduce(
        topology=topology,
        n_blocks=n_blocks,
        elements_per_packet=elements_per_packet,
        dtype=dtype,
        algorithm=algorithm,
        reproducible=reproducible,
        op=op,
        n_clusters=n_clusters,
        inter_switch_latency=inter_switch_latency,
        seed=seed,
        data=data,
        verify=verify,
    )
    return TwoLevelResult(
        makespan_cycles=r.makespan_cycles,
        blocks_completed=r.blocks_completed,
        outputs=r.outputs,
        leaf_egress_packets=r.uplink_packets,
        root_egress_packets=r.root_egress_packets,
    )
