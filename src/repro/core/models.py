"""Closed-form performance and occupancy models (paper Secs. 4-6).

These are the equations behind the paper's *modeled* figures (Fig. 7,
Fig. 10, Fig. 13).  Symbols follow Table 2:

====  ==========================================================
K     number of cores in the switch
S     cores per scheduling subset
C     cores per cluster
P     packets per block (= children of the switch in the tree)
delta         mean interarrival of packets to the switch (cycles)
delta_c       mean interarrival of packets *within* a block
delta_k       mean interarrival of a burst's packets to one core
tau           mean service time of a core (cycles/packet)
L     cycles to aggregate one packet once inside the critical section
M     buffers used per block
Q     max per-core queue length;  script-Q = (Q+1)K packets in switch
====  ==========================================================

Key equations implemented here:

* ``delta_k = min(S * delta_c, K * delta)``                     (Sec. 5)
* ``Q = (P/S) * (1 - delta_k / tau)``; ``script_Q = (Q+1)K``    (Eq. 1)
* ``B = min(K/tau, 1/delta)`` packets/cycle                     (Sec. 4.1)
* ``latency = (P-1) delta_c + (Q+1) tau``                       (Sec. 5)
* ``R = M * (B/P) * latency`` working-memory buffers            (Sec. 4.3)
* single-buffer tau (Eq. 2), multi-buffer tau (Sec. 6.2),
  tree tau (Sec. 6.3).

A note on Eq. 2's contended service time: the paper derives
``tau = (sum_{i=1..C} i L) / C`` and reports it as ``L (C-1)/2``; the sum
actually evaluates to ``L (C+1)/2``.  We implement the paper's *stated*
closed form (``L (S-1)/2`` for a subset of S contenders, floored at L so
a 1- or 2-core subset is never modeled faster than uncontended) because
the paper's plotted curves are consistent with it; the derivation
discrepancy is half a service time and does not change any shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import FlareConfig


@dataclass(frozen=True)
class ModelInputs:
    """Raw symbol values consumed by the closed-form models."""

    K: int              # cores
    S: int              # subset size
    C: int              # cores per cluster
    P: int              # packets per block (children)
    delta: float        # packet interarrival (cycles)
    delta_c: float      # intra-block interarrival (cycles)
    L: float            # in-critical-section aggregation cycles per packet
    copy_cycles: float = 0.0   # DMA copy cost (tree aggregation)
    packet_bytes: int = 1024
    clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.S < 1 or self.S > self.K:
            raise ValueError(f"S={self.S} must be in [1, K={self.K}]")
        if self.P < 1:
            raise ValueError("P must be >= 1")
        if self.delta <= 0 or self.delta_c < self.delta:
            raise ValueError("need delta > 0 and delta_c >= delta")


# ----------------------------------------------------------------------
# Service-time models (tau) per aggregation design
# ----------------------------------------------------------------------
def contended_tau(L: float, contenders: float) -> float:
    """Paper Eq. 2 contended branch: ``L (S-1)/2`` floored at ``L``."""
    return max(L, L * (contenders - 1) / 2.0)


def effective_contenders(S: int, L: float, spacing: float) -> float:
    """Expected concurrent handlers per aggregation buffer.

    Eq. 2 gives the worst case (all S cores of the subset collide).  The
    expected degree interpolates with the fraction of a service time the
    packets overlap: spaced ``spacing`` apart, a handler overlaps the
    ``max(0, 1 - spacing/L)`` fraction of its predecessors, so

        C_eff = 1 + (S - 1) * max(0, 1 - spacing / L)

    which recovers Eq. 2's bound at spacing=0 and the uncontended case
    at spacing >= L.  Multi-buffer aggregation widens the spacing by B
    (a conflict needs all B buffers busy), producing Fig. 10's "the
    higher the number of buffers, the higher the bandwidth for smaller
    messages" ordering.
    """
    overlap = max(0.0, 1.0 - spacing / L)
    return 1.0 + (S - 1) * overlap


def single_buffer_tau(m: ModelInputs, graded: bool = True) -> tuple[float, bool]:
    """Service time for single-buffer aggregation (Sec. 6.1, Eq. 2).

    Returns ``(tau, contended)``.  Contention disappears when packets of
    a block are serialized onto one core (S=1) or spaced at least a
    service time apart (delta_c >= L, achievable via staggered sending
    for large enough data).  ``graded=False`` uses Eq. 2's worst-case
    branch verbatim instead of the expected-contention interpolation.
    """
    if m.S == 1 or m.delta_c >= m.L:
        return m.L, False
    if graded:
        return contended_tau(m.L, effective_contenders(m.S, m.L, m.delta_c)), True
    return contended_tau(m.L, m.S), True


def multi_buffer_tau(
    m: ModelInputs, n_buffers: int, graded: bool = True
) -> tuple[float, bool]:
    """Service time for B-buffer aggregation (Sec. 6.2).

    The contention condition relaxes by a factor B ("the probability
    that two running handlers need to access the same buffer decreases
    proportionally with B" — we substitute B*delta_c for delta_c), and
    the last handler folds the other B-1 buffers together at (B-1)L
    extra cycles, amortized to (B-1)L/P per packet.
    """
    if n_buffers < 1:
        raise ValueError("n_buffers must be >= 1")
    merge_overhead = (n_buffers - 1) * m.L / m.P
    spacing = n_buffers * m.delta_c
    if m.S == 1 or spacing >= m.L:
        return m.L + merge_overhead, False
    if graded:
        tau = contended_tau(m.L, effective_contenders(m.S, m.L, spacing))
    else:
        tau = contended_tau(m.L, m.S)
    return tau + merge_overhead, True


def tree_tau(m: ModelInputs) -> tuple[float, bool]:
    """Service time for tree aggregation (Sec. 6.3) — never contended.

    Each packet is DMA-copied into its own buffer (64 cycles/KiB rather
    than the ~1024-cycle aggregation); P-1 pairwise merges are spread
    over the P handlers, so the per-packet average is (P-1)L/P plus the
    copy.
    """
    tau = m.copy_cycles + (m.P - 1) * m.L / m.P
    return tau, False


def tree_buffers_per_block(P: int) -> float:
    """M for tree aggregation: (P-1)/log2(P) live buffers on average."""
    if P <= 1:
        return 1.0
    return (P - 1) / math.log2(P)


# ----------------------------------------------------------------------
# Shared occupancy/throughput equations
# ----------------------------------------------------------------------
def bandwidth_packets_per_cycle(K: int, tau: float, delta: float) -> float:
    """``B = min(K/tau, 1/delta)`` — compute-bound vs line-rate-bound."""
    return min(K / tau, 1.0 / delta)


def burst_interarrival(m: ModelInputs) -> float:
    """``delta_k = min(S delta_c, K delta)`` (Sec. 5)."""
    return min(m.S * m.delta_c, m.K * m.delta)


def queue_length(m: ModelInputs, tau: float) -> float:
    """Max per-core queue build-up during a burst (derivation of Eq. 1)."""
    dk = burst_interarrival(m)
    return max(0.0, (m.P / m.S) * (1.0 - dk / tau))


def input_buffer_packets(m: ModelInputs, tau: float) -> float:
    """Eq. 1: ``script_Q = (Q+1) K`` — max packets resident in the switch."""
    return (queue_length(m, tau) + 1.0) * m.K


def block_latency_cycles(m: ModelInputs, tau: float) -> float:
    """``latency = (P-1) delta_c + (Q+1) tau`` (Sec. 5)."""
    return (m.P - 1) * m.delta_c + (queue_length(m, tau) + 1.0) * tau


def working_memory_buffers(m: ModelInputs, tau: float, buffers_per_block: float) -> float:
    """Little's law: ``R = M * (B/P) * latency`` buffers (Sec. 4.3)."""
    bw_blocks = bandwidth_packets_per_cycle(m.K, tau, m.delta) / m.P
    return buffers_per_block * bw_blocks * block_latency_cycles(m, tau)


def max_staggered_interarrival(delta: float, blocks: int) -> float:
    """Upper bound on delta_c achievable by staggered sending (Sec. 5).

    ``delta <= delta_c <= delta * Z/N``: with only ``blocks`` distinct
    blocks in flight, hosts can spread a block's packets at most over the
    whole per-host sending window.
    """
    return delta * max(1, blocks)


# ----------------------------------------------------------------------
# High-level evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignPoint:
    """Model outputs for one (algorithm, configuration) pair."""

    algorithm: str
    tau: float
    contended: bool
    bandwidth_packets_per_cycle: float
    bandwidth_tbps: float
    queue_length: float
    input_buffer_packets: float
    input_buffer_bytes: float
    latency_cycles: float
    buffers_per_block: float
    working_buffers: float
    working_memory_bytes: float


def _inputs_from_config(cfg: FlareConfig, L: float | None = None) -> ModelInputs:
    L_eff = L if L is not None else cfg.aggregation_cycles
    return ModelInputs(
        K=cfg.n_cores,
        S=int(cfg.subset_size or cfg.cores_per_cluster),
        C=cfg.cores_per_cluster,
        P=cfg.children,
        delta=cfg.delta,
        delta_c=max(cfg.delta, min(cfg.delta_c, L_eff)),
        L=L_eff,
        copy_cycles=cfg.cost_model.copy_cycles(cfg.packet_bytes),
        packet_bytes=cfg.packet_bytes,
        clock_ghz=cfg.cost_model.clock_ghz,
    )


def single_buffer_model(cfg: FlareConfig) -> DesignPoint:
    """Evaluate Sec. 6.1 single-buffer aggregation for a configuration."""
    return evaluate_design(cfg, "single")


def multi_buffer_model(cfg: FlareConfig, n_buffers: int) -> DesignPoint:
    """Evaluate Sec. 6.2 multi-buffer aggregation with B buffers."""
    return evaluate_design(cfg, "multi", n_buffers=n_buffers)


def tree_model(cfg: FlareConfig) -> DesignPoint:
    """Evaluate Sec. 6.3 tree aggregation."""
    return evaluate_design(cfg, "tree")


def evaluate_design(
    cfg: FlareConfig,
    algorithm: str,
    n_buffers: int = 1,
    L: float | None = None,
) -> DesignPoint:
    """Run the full model pipeline for one aggregation design.

    ``L`` may override the dense per-packet aggregation cost — the
    sparse models (Fig. 13) reuse the same pipeline with the sparse
    storage costs from :mod:`repro.sparse`.

    Staggered sending caps delta_c at L: raising it further only delays
    blocks without reducing contention (Sec. 6.1), so the config-level
    bound ``delta * Z/N`` is clamped here.
    """
    m = _inputs_from_config(cfg, L=L)
    if algorithm == "single":
        tau, contended = single_buffer_tau(m)
        mem_buffers = 1.0
        name = "single"
    elif algorithm == "multi":
        tau, contended = multi_buffer_tau(m, n_buffers)
        mem_buffers = float(n_buffers)
        name = f"multi({n_buffers})"
    elif algorithm == "tree":
        tau, contended = tree_tau(m)
        mem_buffers = tree_buffers_per_block(m.P)
        name = "tree"
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    bw = bandwidth_packets_per_cycle(m.K, tau, m.delta)
    q = queue_length(m, tau)
    in_pkts = input_buffer_packets(m, tau)
    latency = block_latency_cycles(m, tau)
    work_buffers = working_memory_buffers(m, tau, mem_buffers)
    bw_tbps = bw * m.packet_bytes * 8.0 * m.clock_ghz * 1e9 / 1e12
    return DesignPoint(
        algorithm=name,
        tau=tau,
        contended=contended,
        bandwidth_packets_per_cycle=bw,
        bandwidth_tbps=bw_tbps,
        queue_length=q,
        input_buffer_packets=in_pkts,
        input_buffer_bytes=in_pkts * m.packet_bytes,
        latency_cycles=latency,
        buffers_per_block=mem_buffers,
        working_buffers=work_buffers,
        working_memory_bytes=work_buffers * m.packet_bytes,
    )
