"""Aggregation-algorithm selection (paper Sec. 6.4).

"To optimize both compute and memory resources, Flare uses single
buffer aggregation if the size of the data to be reduced is larger than
512KiB, multi buffers with 4 buffers if larger than 256KiB, with 2
buffers if larger than 128KiB, and tree aggregation otherwise.  When
reproducibility of floating-point summation is required, Flare always
uses tree aggregation."

We implement that ladder literally (``paper`` mode).  The contention
model of Sec. 6.2 — B*delta_c >= L makes B buffers contention-free —
would instead assign multi(2) to (256, 512] KiB and multi(4) to
(128, 256] KiB (the *larger* B compensating the *smaller* delta_c);
``model`` mode selects that way.  Both are exposed because the paper's
prose and its own Eq.-2-based reasoning disagree by a swap of the two
multi-buffer bands (documented in DESIGN.md); the bandwidth difference
between the two assignments is the (B-1)L/P merge overhead, well under
2% at P=64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ops import ReductionOp, get_op
from repro.utils.units import KIB, parse_size

#: Algorithm identifiers used across handlers, models, and experiments.
ALGORITHMS = ("single", "multi(2)", "multi(4)", "tree")


@dataclass(frozen=True)
class AlgorithmChoice:
    """A selected aggregation design."""

    algorithm: str          # "single" | "multi" | "tree"
    n_buffers: int          # B (1 for single, irrelevant for tree)
    reason: str

    @property
    def label(self) -> str:
        if self.algorithm == "multi":
            return f"multi({self.n_buffers})"
        return self.algorithm


def select_algorithm(
    data_bytes: int | str,
    reproducible: bool = False,
    op: "str | ReductionOp" = "sum",
    mode: str = "paper",
) -> AlgorithmChoice:
    """Pick the aggregation design for a reduction of ``data_bytes``.

    Parameters
    ----------
    data_bytes:
        Size of the data each host contributes (Z * element size).
    reproducible:
        Request bitwise-reproducible floating-point aggregation (F3);
        forces tree aggregation.
    op:
        The reduction operator; non-commutative or non-associative
        custom operators force tree aggregation too, since only the
        fixed combine structure gives them well-defined semantics.
    mode:
        ``"paper"`` (Sec. 6.4 ladder as written) or ``"model"``
        (Eq.-2-consistent band assignment) — see module docstring.
    """
    size = parse_size(data_bytes)
    operator = get_op(op)
    if reproducible:
        return AlgorithmChoice("tree", 0, "reproducibility requested (F3)")
    if not (operator.commutative and operator.associative):
        return AlgorithmChoice(
            "tree", 0, f"operator {operator.name!r} needs a fixed combine structure"
        )
    if mode not in ("paper", "model"):
        raise ValueError(f"unknown policy mode {mode!r}")
    if size > 512 * KIB:
        return AlgorithmChoice("single", 1, "staggered sending covers delta_c >= L")
    if size > 256 * KIB:
        b = 4 if mode == "paper" else 2
        return AlgorithmChoice("multi", b, f"{mode} ladder band (256KiB, 512KiB]")
    if size > 128 * KIB:
        b = 2 if mode == "paper" else 4
        return AlgorithmChoice("multi", b, f"{mode} ladder band (128KiB, 256KiB]")
    return AlgorithmChoice("tree", 0, "small data: contention-free regardless of delta_c")


def build_handler(choice: AlgorithmChoice, handler_config) -> "object":
    """Instantiate the handler object for a choice.

    Imports locally to avoid a cycle (handlers import core modules).
    """
    from repro.core.multi_buffer import MultiBufferHandler
    from repro.core.single_buffer import SingleBufferHandler
    from repro.core.tree_buffer import TreeAggregationHandler

    if choice.algorithm == "single":
        return SingleBufferHandler(handler_config)
    if choice.algorithm == "multi":
        return MultiBufferHandler(handler_config, choice.n_buffers)
    if choice.algorithm == "tree":
        return TreeAggregationHandler(handler_config)
    raise ValueError(f"unknown algorithm {choice.algorithm!r}")
