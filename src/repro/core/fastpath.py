"""Train kernels: exact fast-path models of the dense aggregation designs.

Each kernel replicates, packet for packet, the cycle arithmetic its
handler performs under the per-packet DES — dispatch overhead, buffer
management, critical-section waits, tree climbs — while the
:class:`repro.pspin.train.TrainRunner` replicates the event loop around
it.  Payload math is deferred to commit time and executed as *programs*:

* **vectorized** — integer payloads under a commutative+associative
  builtin operator reduce as one whole-train numpy block operation
  (wrapping integer arithmetic is order-insensitive, so this is bitwise
  identical to any combine order the DES would have used);
* **order replay** — float payloads and custom operators re-execute the
  exact combine sequence the DES would run (lock-acquisition order for
  single/multi buffers, the fixed merge structure for trees), which is
  what keeps fp32 results — including reproducible-mode tree sums —
  bitwise identical.

Any situation a kernel cannot reproduce exactly (working-memory
admission stalls, L1 exhaustion, incomplete blocks, payload/config dtype
mismatch) raises :class:`~repro.pspin.train.FastPathAbort`, and the
switch transparently re-runs the train through the per-packet path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.handler_base import PARENT_PORT
from repro.core.multi_buffer import MultiBufferHandler
from repro.core.single_buffer import SingleBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.train import (
    FastPathAbort,
    PacketTrain,
    register_train_kernel,
    replay_region_profile,
)

#: Builtin operators whose whole-block reduction a single ufunc call
#: reproduces exactly (given an order-insensitive dtype).
_UFUNCS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "prod": np.multiply,
}


class _DenseKernelBase:
    """Shared state and cost precomputation for dense train kernels."""

    worst_case_buffers = 1
    #: Kernels whose handlers never extend (no tree climbs) let the
    #: runner use its heap-free sweep.
    has_continuations = False

    def __init__(self, handler, switch, train: PacketTrain, handler_name: str) -> None:
        self.handler = handler
        self.switch = switch
        self.train = train
        self.handler_name = handler_name
        config = handler.config
        self.config = config
        if train.data.dtype != np.dtype(config.dtype_name):
            # Buffer nbytes would diverge from payload nbytes and with
            # them every combine cost; the DES handles it, we don't.
            raise FastPathAbort("payload dtype != handler dtype")
        cm = switch.config.cost_model
        nbytes = train.payload_nbytes
        self.nbytes = nbytes
        self.n_children = config.n_children
        self.dispatch_c = cm.handler_dispatch_cycles
        self.mgmt_c = cm.buffer_mgmt_cycles
        self.combine_c = (
            cm.aggregation_cycles(nbytes, config.dtype) * config.op.cycles_factor
        )
        self.copy_c = cm.copy_cycles(nbytes)
        self.admission_need = (self.worst_case_buffers + 1) * max(nbytes, 1)
        # Eager per-cluster L1 accounting (call-order, like BufferPool).
        self.l1_free = [
            cl.l1.capacity_bytes - cl.l1.used_bytes for cl in switch.clusters
        ]
        self.l1_events: list[list[tuple[float, int]]] = [[] for _ in switch.clusters]
        self.wm_events: list[tuple[float, float]] = []
        self.blocks: dict[int, object] = {}
        #: block -> home cluster; filled by the runner (subset == cluster).
        self.block_cluster: dict[int, int] = {}
        self.blocks_completed = 0
        self.duplicates = 0
        #: (finish_time, block_id) in completion order.
        self.emissions: list[tuple[float, int]] = []
        op = config.op
        ufunc = _UFUNCS.get(op.name)
        self.vectorized = (
            ufunc is not None
            and op.commutative
            and op.associative
            and train.data.dtype.kind in "iu"
        )
        self.ufunc = ufunc

    def set_block_clusters(self, block_subset: dict[int, int]) -> None:
        """Runner-provided block -> subset map (subsets are clusters
        under the fast path's eligibility rules)."""
        self.block_cluster = block_subset

    # -- L1 bookkeeping -------------------------------------------------
    def _l1_alloc(self, cluster: int, t: float) -> None:
        self.l1_free[cluster] -= self.nbytes
        self.l1_events[cluster].append((t, self.nbytes))
        self.wm_events.append((t, float(self.nbytes)))

    def _l1_release(self, cluster: int, t: float) -> None:
        self.l1_free[cluster] += self.nbytes
        self.l1_events[cluster].append((t, -self.nbytes))
        self.wm_events.append((t, -float(self.nbytes)))

    # -- runner interface ----------------------------------------------
    def process(self, block_id: int, port: int, dispatch_t: float, start_t: float):
        raise NotImplementedError

    def resume(self, cont, now: float):
        raise FastPathAbort("kernel does not support continuations")

    def finish_check(self) -> None:
        if self.blocks:
            raise FastPathAbort("train left incomplete blocks behind")

    def commit(self) -> tuple[list[tuple[float, SwitchPacket]], int]:
        """Apply kernel-side state; returns (egress emissions, bytes)."""
        switch = self.switch
        for cluster, events in zip(switch.clusters, self.l1_events):
            replay_region_profile(cluster.l1, events)
        wm = switch.telemetry.working_memory_bytes
        wm.events.extend(self.wm_events)
        handler = self.handler
        handler.blocks_completed += self.blocks_completed
        handler.duplicates_dropped += self.duplicates
        payloads = self._build_payloads()
        out: list[tuple[float, SwitchPacket]] = []
        ports = self.config.multicast_ports
        aid = self.config.allreduce_id
        # Sorting the (time, block) pairs here — before port expansion,
        # which emits ports in ascending order — leaves the expanded
        # list in the runner's (time, block, port) egress order.
        self.emissions.sort()
        for t, block_id in self.emissions:
            payload = payloads[block_id]
            if ports is None:
                out.append((t, SwitchPacket(aid, block_id, PARENT_PORT, payload)))
            else:
                # One block copy per egress port (what the DES emits,
                # materialized as rows of a single repeated matrix).
                rows = np.repeat(payload[None, :], len(ports), axis=0)
                out.extend(
                    (t, SwitchPacket(aid, block_id, p, rows[i]))
                    for i, p in enumerate(ports)
                )
        # Dense emissions are uniform: one aggregated block per packet.
        from repro.pspin.packets import HEADER_BYTES

        out_bytes = len(out) * (self.nbytes + HEADER_BYTES)
        return out, out_bytes

    # -- payload programs ----------------------------------------------
    def _build_payloads(self) -> dict[int, np.ndarray]:
        raise NotImplementedError

    def _vector_reduce(self) -> dict[int, np.ndarray]:
        """One whole-train block reduction (int dtypes, builtin ops)."""
        data = self.train.data
        reduced = self.ufunc.reduce(data, axis=0, dtype=data.dtype)
        return {block_id: reduced[block_id] for _t, block_id in self.emissions}


# ----------------------------------------------------------------------
# Single buffer (Sec. 6.1)
# ----------------------------------------------------------------------
class _SingleRecord:
    __slots__ = ("seen", "count", "lock_free", "allocated", "order")

    def __init__(self) -> None:
        self.seen = 0
        self.count = 0
        self.lock_free = 0.0
        self.allocated = False
        self.order: list[int] = []


class SingleBufferKernel(_DenseKernelBase):
    """Exact train model of :class:`SingleBufferHandler` (M = 1)."""

    worst_case_buffers = 1

    def __init__(self, handler, switch, train, handler_name) -> None:
        super().__init__(handler, switch, train, handler_name)
        self._orders: dict[int, list[int]] = {}

    def process(self, block_id: int, port: int, dispatch_t: float, start_t: float):
        cluster = self.block_cluster[block_id]
        rec = self.blocks.get(block_id)
        if rec is None:
            if self.l1_free[cluster] < self.admission_need:
                raise FastPathAbort("working-memory admission stall")
            rec = _SingleRecord()
            self.blocks[block_id] = rec
        t = start_t + self.dispatch_c
        bit = 1 << port
        if rec.seen & bit:
            self.duplicates += 1
            return t, 0.0, None
        rec.seen |= bit
        rec.count += 1
        if not rec.allocated:
            t += self.mgmt_c
            self._l1_alloc(cluster, dispatch_t)
            rec.allocated = True
        entry = rec.lock_free if rec.lock_free > t else t
        wait = entry - t
        finish = entry + self.combine_c
        rec.lock_free = finish
        rec.order.append(port)
        if rec.count == self.n_children:
            self.emissions.append((finish, block_id))
            self._l1_release(cluster, finish)
            self.blocks_completed += 1
            self._orders[block_id] = rec.order
            del self.blocks[block_id]
        return finish, wait, None

    def _build_payloads(self) -> dict[int, np.ndarray]:
        if self.vectorized:
            return self._vector_reduce()
        data = self.train.data
        combine = self.config.op.combine_into
        out: dict[int, np.ndarray] = {}
        for block_id, order in self._orders.items():
            acc = data[order[0], block_id].copy()
            for port in order[1:]:
                combine(acc, data[port, block_id])
            out[block_id] = acc
        return out


# ----------------------------------------------------------------------
# Multi buffer (Sec. 6.2)
# ----------------------------------------------------------------------
class _MultiBuf:
    __slots__ = ("free_at", "filled", "order")

    def __init__(self) -> None:
        self.free_at = 0.0
        self.filled = False
        self.order: list[int] = []


class _MultiRecord:
    __slots__ = ("seen", "count", "buffers")

    def __init__(self) -> None:
        self.seen = 0
        self.count = 0
        self.buffers: list[_MultiBuf] = []


class MultiBufferKernel(_DenseKernelBase):
    """Exact train model of :class:`MultiBufferHandler` (M = B)."""

    def __init__(self, handler, switch, train, handler_name) -> None:
        self.worst_case_buffers = handler.n_buffers
        super().__init__(handler, switch, train, handler_name)
        self.n_buffers = handler.n_buffers
        #: block -> (per-buffer combine orders, completing buffer index,
        #: fold order) for the replay program.
        self._programs: dict[int, tuple[list[list[int]], int, list[int]]] = {}

    def process(self, block_id: int, port: int, dispatch_t: float, start_t: float):
        cluster = self.block_cluster[block_id]
        rec = self.blocks.get(block_id)
        if rec is None:
            if self.l1_free[cluster] < self.admission_need:
                raise FastPathAbort("working-memory admission stall")
            rec = _MultiRecord()
            self.blocks[block_id] = rec
        t = start_t + self.dispatch_c
        bit = 1 << port
        if rec.seen & bit:
            self.duplicates += 1
            return t, 0.0, None
        rec.seen |= bit
        rec.count += 1
        # _pick_buffer: first free, else allocate (under the B budget),
        # else the earliest-freeing one (degrading on L1 exhaustion).
        buffers = rec.buffers
        chosen: Optional[_MultiBuf] = None
        for buf in buffers:
            if buf.free_at <= t:
                chosen = buf
                break
        if chosen is None:
            if len(buffers) < self.n_buffers:
                t += self.mgmt_c
                if self.l1_free[cluster] >= self.nbytes:
                    self._l1_alloc(cluster, dispatch_t)
                    chosen = _MultiBuf()
                    buffers.append(chosen)
                elif not buffers:
                    raise FastPathAbort("L1 cannot fit any aggregation buffer")
            if chosen is None:
                chosen = min(buffers, key=lambda b: b.free_at)
        entry = chosen.free_at if chosen.free_at > t else t
        wait = entry - t
        finish = entry + self.combine_c
        chosen.free_at = finish
        chosen.filled = True
        chosen.order.append(port)
        if rec.count != self.n_children:
            return finish, wait, None
        # Completing handler folds the other filled buffers (list order)
        # into its own, waiting out writers still in their sections.
        fold_order: list[int] = []
        chosen_idx = buffers.index(chosen)
        t_fold = finish
        for i, other in enumerate(buffers):
            if other is chosen or not other.filled:
                continue
            entry2 = other.free_at if other.free_at > t_fold else t_fold
            wait += entry2 - t_fold
            t_fold = entry2 + self.combine_c
            other.free_at = t_fold
            fold_order.append(i)
        self.emissions.append((t_fold, block_id))
        for _ in buffers:
            self._l1_release(cluster, t_fold)
        self.blocks_completed += 1
        self._programs[block_id] = (
            [b.order for b in buffers],
            chosen_idx,
            fold_order,
        )
        del self.blocks[block_id]
        return t_fold, wait, None

    def _build_payloads(self) -> dict[int, np.ndarray]:
        if self.vectorized:
            return self._vector_reduce()
        data = self.train.data
        combine = self.config.op.combine_into
        out: dict[int, np.ndarray] = {}
        for block_id, (orders, chosen_idx, fold_order) in self._programs.items():
            accs = []
            for order in orders:
                acc = data[order[0], block_id].copy()
                for port in order[1:]:
                    combine(acc, data[port, block_id])
                accs.append(acc)
            result = accs[chosen_idx]
            for i in fold_order:
                combine(result, accs[i])
            out[block_id] = result
        return out


# ----------------------------------------------------------------------
# Tree (Sec. 6.3)
# ----------------------------------------------------------------------
class _TreeRecord:
    __slots__ = ("seen", "count", "done_at", "claimed", "ops", "live_buffers")

    def __init__(self) -> None:
        self.seen = 0
        self.count = 0
        self.done_at: dict[tuple[int, int], float] = {}
        self.claimed: set[tuple[int, int]] = set()
        #: ("promote", node, parent) | ("merge", left, right, parent)
        self.ops: list[tuple] = []
        self.live_buffers = 0


class TreeKernel(_DenseKernelBase):
    """Exact train model of :class:`TreeAggregationHandler`.

    Fills are DMA copies into per-packet buffers; merges climb the fixed
    pair tree as continuations, exactly one merge per resume, with the
    "only if a core finds available data in both buffers" rule and
    event-order tie-breaking via the claimed set.
    """

    has_continuations = True

    def __init__(self, handler, switch, train, handler_name) -> None:
        self.worst_case_buffers = handler.config.n_children
        super().__init__(handler, switch, train, handler_name)
        self.tree = handler.tree
        self._programs: dict[int, tuple[list[tuple], tuple[int, int]]] = {}

    def process(self, block_id: int, port: int, dispatch_t: float, start_t: float):
        cluster = self.block_cluster[block_id]
        rec = self.blocks.get(block_id)
        if rec is None:
            if self.l1_free[cluster] < self.admission_need:
                raise FastPathAbort("working-memory admission stall")
            rec = _TreeRecord()
            self.blocks[block_id] = rec
        t = start_t + self.dispatch_c
        bit = 1 << port
        if rec.seen & bit:
            self.duplicates += 1
            return t, 0.0, None
        rec.seen |= bit
        rec.count += 1
        t += self.mgmt_c
        if self.l1_free[cluster] < self.nbytes:
            # The DES would roll back the bitmap and stall the packet.
            raise FastPathAbort("working-memory stall on tree buffer")
        self._l1_alloc(cluster, dispatch_t)
        rec.live_buffers += 1
        t += self.copy_c
        leaf = (0, port)
        rec.done_at[leaf] = t
        return t, 0.0, (block_id, cluster, rec, leaf)

    def resume(self, cont, now: float):
        """At most one merge upward from ``cont``'s node (the DES chains
        each further level as a fresh continuation)."""
        block_id, cluster, rec, node = cont
        tree = self.tree
        done_at = rec.done_at
        claimed = rec.claimed
        t = now
        while True:
            parent = tree.parent(node)
            if parent is None:
                # Root: this climb owns the final result.
                self.emissions.append((t, block_id))
                self._l1_release(cluster, t)
                rec.live_buffers -= 1
                if rec.live_buffers:
                    raise FastPathAbort("tree left live buffers at the root")
                self.blocks_completed += 1
                self._programs[block_id] = (rec.ops, node)
                del self.blocks[block_id]
                # The DES returns a zero-length extension carrying the
                # outputs; replicate it so the completion bookkeeping
                # (last-completion update) lands on its own event.
                return t, None
            if parent in claimed:
                return None
            sibling = tree.sibling(node)
            if sibling is None:
                # Odd subtree: promote for free.
                claimed.add(parent)
                done_at[parent] = done_at[node]
                rec.ops.append(("promote", node, parent))
                node = parent
                continue
            sib_done = done_at.get(sibling)
            if sib_done is None or sib_done > t:
                return None   # sibling's (later) handler will climb
            claimed.add(parent)
            level, j = node
            left = (level, j & ~1)
            right = (level, j | 1)
            t += self.combine_c
            self._l1_release(cluster, t)
            rec.live_buffers -= 1
            done_at[parent] = t
            rec.ops.append(("merge", left, right, parent))
            return t, (block_id, cluster, rec, parent)

    def _build_payloads(self) -> dict[int, np.ndarray]:
        if self.vectorized:
            return self._vector_reduce()
        data = self.train.data
        combine = self.config.op.combine_into
        out: dict[int, np.ndarray] = {}
        for block_id, (ops, root) in self._programs.items():
            arrays: dict[tuple[int, int], np.ndarray] = {
                (0, port): data[port, block_id].copy()
                for port in range(self.n_children)
                # only leaves that actually arrived exist; completed
                # blocks saw every child exactly once.
            }
            for op in ops:
                if op[0] == "promote":
                    arrays[op[2]] = arrays[op[1]]
                else:
                    _kind, left, right, parent = op
                    combine(arrays[right], arrays[left])
                    arrays[parent] = arrays[right]
            out[block_id] = arrays[root].copy()
        return out


def _make_single(handler, switch, train, name):
    return SingleBufferKernel(handler, switch, train, name)


def _make_multi(handler, switch, train, name):
    return MultiBufferKernel(handler, switch, train, name)


def _make_tree(handler, switch, train, name):
    return TreeKernel(handler, switch, train, name)


register_train_kernel(SingleBufferHandler, _make_single)
register_train_kernel(MultiBufferHandler, _make_multi)
register_train_kernel(TreeAggregationHandler, _make_tree)
