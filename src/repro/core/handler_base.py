"""Shared machinery for Flare aggregation handlers.

A handler instance serves one allreduce on one switch: the parser routes
matching packets to it, and it keeps per-block state (completion bitmap,
aggregation buffers) in the working memory of the cluster that owns the
block.  The concrete aggregation designs (single/multi/tree, dense and
sparse) subclass :class:`AggregationHandlerBase` and implement
``_aggregate``.

Timing conventions
------------------
Handlers compute *absolute* cycle timestamps.  ``ctx.start_time`` is
when real work begins (after any i-cache fill); every handler charges
``handler_dispatch_cycles`` of fixed overhead, then algorithm-specific
costs.  Critical sections are modeled by buffer ``free_at`` timestamps
(see :mod:`repro.core.buffers`) so contention serializes in dispatch
order — the FCFS semantics of Sec. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.blockstate import BlockState
from repro.core.buffers import BufferPool
from repro.core.ops import ReductionOp, SUM, get_op
from repro.pspin.costs import DType, get_dtype
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import HandlerContext, HandlerResult

#: Egress port id meaning "towards the parent in the reduction tree".
PARENT_PORT = -1


class WorkingMemoryStall(Exception):
    """The cluster's L1 cannot admit a new block right now.

    The paper bounds in-flight blocks at the *hosts* ("each host can
    have a number of in-flight blocks not larger than the number of
    aggregation buffers assigned to that allreduce", Sec. 4.3).  The
    behavioral switch enforces the same bound at the admission point:
    a packet that would start a new block while L1 headroom is below
    the design's worst case is re-queued and retried once memory frees
    — the dispatcher treats this as back-pressure, not failure.
    """


@dataclass
class HandlerConfig:
    """Per-allreduce handler parameters installed by the network manager."""

    allreduce_id: int
    n_children: int
    dtype_name: str = "float32"
    #: None -> send the aggregated block to the parent; a list of ports
    #: -> this switch is the tree root and multicasts down (Sec. 4).
    multicast_ports: Optional[list[int]] = None
    reproducible: bool = False
    #: Aggregation operator (F1: arbitrary user functions are handlers).
    op: ReductionOp = field(default_factory=lambda: SUM)

    def __post_init__(self) -> None:
        self.op = get_op(self.op)

    @property
    def dtype(self) -> DType:
        return get_dtype(self.dtype_name)


@dataclass(slots=True)
class _BlockRecord:
    """Per-block bookkeeping common to every design."""

    state: BlockState
    home_cluster: int
    extra: dict = field(default_factory=dict)


class AggregationHandlerBase:
    """Base class for dense aggregation handlers."""

    #: Subclasses set a unique handler (image) name.
    name = "flare-base"

    def __init__(self, config: HandlerConfig) -> None:
        self.config = config
        self._blocks: dict[tuple[int, int], _BlockRecord] = {}
        self._pools: dict[int, BufferPool] = {}
        self.blocks_completed = 0
        self.duplicates_dropped = 0

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    def _pool(self, ctx: HandlerContext, cluster_id: int) -> BufferPool:
        pool = self._pools.get(cluster_id)
        if pool is None:
            pool = BufferPool(
                ctx.switch.clusters[cluster_id].l1,
                telemetry=ctx.switch.telemetry,
                dtype=np.dtype(self.config.dtype_name),
            )
            self._pools[cluster_id] = pool
        return pool

    def _record(self, ctx: HandlerContext) -> _BlockRecord:
        key = ctx.packet.key()
        rec = self._blocks.get(key)
        if rec is None:
            rec = _BlockRecord(
                state=BlockState(key=key, n_children=self.config.n_children),
                home_cluster=ctx.cluster.cluster_id,
            )
            rec.state.first_arrival = ctx.packet.arrival_time
            self._blocks[key] = rec
        return rec

    def _combine_cost(self, ctx: HandlerContext, nbytes: int, penalty: float = 1.0) -> float:
        """Cycles to combine ``nbytes`` of payload into a buffer."""
        base = ctx.costs.aggregation_cycles(nbytes, self.config.dtype)
        return base * self.config.op.cycles_factor * penalty

    def _write_into(self, buf, payload) -> None:
        """Copy-in on first touch, operator-combine afterwards."""
        view = buf.data[: len(payload)]
        if buf.filled:
            self.config.op.combine_into(view, payload)
        else:
            view[:] = payload
            buf.filled = True

    def _remote_penalty(self, ctx: HandlerContext, rec: _BlockRecord) -> float:
        """Cost multiplier for touching a remote cluster's L1.

        Hierarchical scheduling pins a block to one cluster, so this is
        1.0 there; plain FCFS pays the penalty whenever the executing
        core sits elsewhere (Sec. 5).
        """
        if ctx.cluster.cluster_id == rec.home_cluster:
            return 1.0
        return ctx.costs.remote_l1_penalty

    def _outputs_for(self, payload: np.ndarray, block_id: int) -> list[SwitchPacket]:
        """Build the egress packet(s) for a completed block."""
        ports = self.config.multicast_ports
        if ports is None:
            return [
                SwitchPacket(
                    allreduce_id=self.config.allreduce_id,
                    block_id=block_id,
                    port=PARENT_PORT,
                    payload=payload,
                )
            ]
        return [
            SwitchPacket(
                allreduce_id=self.config.allreduce_id,
                block_id=block_id,
                port=p,
                payload=payload.copy(),
            )
            for p in ports
        ]

    # ------------------------------------------------------------------
    # Handler entry point
    # ------------------------------------------------------------------
    #: Worst-case working-memory buffers one block of this design may
    #: hold concurrently; subclasses override (single=1, multi=B,
    #: tree=P).  Used by the admission check below.
    def _worst_case_buffers(self) -> int:
        return 1

    def process(self, ctx: HandlerContext) -> HandlerResult:
        key = ctx.packet.key()
        if key not in self._blocks:
            # Admit a new block only if this design's worst-case buffer
            # footprint (plus one block of slack) fits the home L1.
            need = (self._worst_case_buffers() + 1) * max(
                int(ctx.packet.payload.nbytes), 1
            )
            if ctx.cluster.l1.free_bytes < need:
                raise WorkingMemoryStall(
                    f"cluster {ctx.cluster.cluster_id}: block {key} needs "
                    f"{need} B headroom, {ctx.cluster.l1.free_bytes} B free"
                )
        rec = self._record(ctx)
        t = ctx.start_time + ctx.costs.handler_dispatch_cycles
        if not rec.state.mark_dense(ctx.packet.port):
            # Retransmitted packet: already aggregated (Sec. 4.1 bitmap);
            # consume only the dispatch/lookup cost.
            self.duplicates_dropped += 1
            return HandlerResult(finish_time=t)
        return self._aggregate(ctx, rec, t)

    def _aggregate(self, ctx: HandlerContext, rec: _BlockRecord, t: float) -> HandlerResult:
        raise NotImplementedError

    def _finish_block(self, ctx: HandlerContext, rec: _BlockRecord, t: float) -> None:
        """Common completion bookkeeping."""
        rec.state.completed_at = t
        self.blocks_completed += 1
        del self._blocks[rec.state.key]

    # ------------------------------------------------------------------
    # Introspection (tests / experiments)
    # ------------------------------------------------------------------
    @property
    def in_flight_blocks(self) -> int:
        return len(self._blocks)

    def working_memory_bytes(self) -> int:
        return sum(pool.used_bytes for pool in self._pools.values())
