"""Staggered sending and arrival-stream synthesis (paper Sec. 5).

Hosts control one knob that matters enormously inside the switch: the
order in which they send their blocks.  If every host sends block 0
first, the switch receives P back-to-back packets of block 0
(delta_c = delta) and single-/multi-buffer handlers serialize on the
aggregation buffer.  *Staggered sending* has host h start at block
``h * blocks / P`` and wrap around, spreading each block's packets
across the host's whole sending window: delta_c approaches
``delta * Z/N`` (scenario C of Fig. 5).

This module builds the per-packet arrival schedules the switch-level
experiments inject: (time, host, block) triples, optionally jittered
with exponential interarrival noise the way the paper's simulations do
("we generate packets with a random and exponentially distributed
arrival rate").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rngtools import seeded_rng


@dataclass(frozen=True)
class ScheduledPacket:
    """One (time, host, block) arrival at the switch."""

    time: float
    host: int
    block: int


def sequential_schedule(n_hosts: int, n_blocks: int) -> list[tuple[int, int]]:
    """Naive order: every host sends block 0, then block 1, ...

    Returns per-host block orderings: entry ``[h][i]`` is the i-th block
    host h sends.
    """
    return [list(range(n_blocks)) for _ in range(n_hosts)]


def staggered_schedule(n_hosts: int, n_blocks: int) -> list[list[int]]:
    """Staggered order: host h starts at block ``round(h * Z/N / P)``.

    With n_blocks >= n_hosts each block's packets are maximally spread;
    with fewer blocks the achievable spread degrades proportionally
    ("if we would have only 2 blocks, the delta_c would be half", Sec. 5).
    """
    orders: list[list[int]] = []
    for h in range(n_hosts):
        offset = (h * n_blocks) // n_hosts
        orders.append([(offset + i) % n_blocks for i in range(n_blocks)])
    return orders


def arrival_arrays(
    n_hosts: int,
    n_blocks: int,
    delta: float,
    staggered: bool = True,
    jitter: float = 0.0,
    seed: int = 0,
    start: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized arrival synthesis: ``(times, hosts, blocks)`` arrays,
    sorted by ``(time, host)``.

    Bit-identical to :func:`arrival_stream` (same per-host RNG draw
    order, same float arithmetic) while skipping the per-packet Python
    objects — the form the packet-train fast path injects directly.
    """
    if n_hosts < 1 or n_blocks < 1:
        raise ValueError("need at least one host and one block")
    if delta <= 0:
        raise ValueError("delta must be positive")
    if staggered:
        offsets = (np.arange(n_hosts) * n_blocks) // n_hosts
        orders = (offsets[:, None] + np.arange(n_blocks)[None, :]) % n_blocks
    else:
        orders = np.broadcast_to(np.arange(n_blocks), (n_hosts, n_blocks))
    rng = seeded_rng(seed)
    times = np.empty((n_hosts, n_blocks), dtype=np.float64)
    base = np.arange(n_blocks) * (n_hosts * delta)
    for h in range(n_hosts):
        if jitter > 0:
            gaps = rng.exponential(scale=n_hosts * delta, size=n_blocks)
            gaps = (1.0 - jitter) * (n_hosts * delta) + jitter * gaps
            times[h] = start + h * delta + np.cumsum(gaps) - gaps[0]
        else:
            times[h] = start + h * delta + base
    hosts = np.repeat(np.arange(n_hosts), n_blocks)
    flat_times = times.reshape(-1)
    flat_blocks = orders.reshape(-1)
    order = np.lexsort((hosts, flat_times))
    return flat_times[order], hosts[order], flat_blocks[order]


def arrival_stream(
    n_hosts: int,
    n_blocks: int,
    delta: float,
    staggered: bool = True,
    jitter: float = 0.0,
    seed: int = 0,
    start: float = 0.0,
) -> list[ScheduledPacket]:
    """Synthesize the switch's ingress stream for one allreduce.

    Packets arrive at aggregate rate 1/delta; host h's k-th packet
    nominally lands at ``start + (k * n_hosts + h) * delta`` (hosts'
    streams interleave round-robin, each host injecting at its fair
    1/(P delta) share — the steady pattern of Fig. 5).

    ``jitter`` > 0 replaces the fixed spacing with exponential
    interarrival times of the same mean, scaled by ``jitter`` (1.0 =
    fully exponential), modeling host imbalance, OS noise, and network
    contention; the stream is then re-sorted by time.

    Returns the stream sorted by arrival time (a per-packet object view
    of :func:`arrival_arrays`).
    """
    times, hosts, blocks = arrival_arrays(
        n_hosts, n_blocks, delta,
        staggered=staggered, jitter=jitter, seed=seed, start=start,
    )
    return [
        ScheduledPacket(time=t, host=h, block=b)
        for t, h, b in zip(times.tolist(), hosts.tolist(), blocks.tolist())
    ]


def measured_delta_c(packets: list[ScheduledPacket], n_blocks: int) -> float:
    """Empirical mean intra-block interarrival of a stream (for tests).

    Averages consecutive gaps between packets of the same block.
    """
    by_block: dict[int, list[float]] = {}
    for p in packets:
        by_block.setdefault(p.block, []).append(p.time)
    gaps: list[float] = []
    for times in by_block.values():
        times.sort()
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    if not gaps:
        return 0.0
    return float(np.mean(gaps))
