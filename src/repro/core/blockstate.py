"""Per-block completion tracking (paper Secs. 4.1 and 7).

Dense blocks complete when one packet has been aggregated from each
child (children counter).  To survive retransmissions the counter is
replaced by a per-port bitmap: a set bit means "already aggregated, do
not aggregate again" (Sec. 4.1).  Sparse blocks additionally need a
*shard counter* per child, because a child may split one block across
several packets and announces the shard count in the last one (Sec. 7,
"Block split").
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ChildrenBitmap:
    """Retransmission-safe children tracking: one bit per port.

    >>> b = ChildrenBitmap(3)
    >>> b.mark(0), b.mark(0), b.mark(1), b.mark(2)
    (True, False, True, True)
    >>> b.complete
    True
    """

    def __init__(self, n_children: int) -> None:
        if n_children < 1:
            raise ValueError("need at least one child")
        self.n_children = n_children
        self._bits = 0

    def mark(self, port: int) -> bool:
        """Mark a packet received from ``port``.

        Returns True if this is the *first* packet from that port (so the
        payload must be aggregated) and False for a duplicate /
        retransmission (already aggregated — skip).
        """
        if not 0 <= port < self.n_children:
            raise ValueError(f"port {port} out of range [0, {self.n_children})")
        bit = 1 << port
        if self._bits & bit:
            return False
        self._bits |= bit
        return True

    def seen(self, port: int) -> bool:
        return bool(self._bits & (1 << port))

    @property
    def count(self) -> int:
        return bin(self._bits).count("1")

    @property
    def complete(self) -> bool:
        return self.count == self.n_children


@dataclass
class ShardTracker:
    """Sparse per-child shard accounting (Sec. 7).

    A child may split a block into ``shard_count`` packets; the count is
    only learned from the packet flagged ``last_of_block``.  The child is
    complete when the announced count has been received.
    """

    received: int = 0
    announced: int | None = None

    def on_packet(self, last_of_block: bool, shard_count: int) -> None:
        self.received += 1
        if last_of_block:
            if self.announced is not None and self.announced != shard_count:
                raise ValueError(
                    f"conflicting shard counts announced: {self.announced} vs {shard_count}"
                )
            self.announced = shard_count

    @property
    def complete(self) -> bool:
        return self.announced is not None and self.received >= self.announced


@dataclass
class BlockState:
    """State the switch keeps for one in-flight reduction block."""

    key: tuple[int, int]
    n_children: int
    bitmap: ChildrenBitmap = field(init=False)
    shards: dict[int, ShardTracker] = field(default_factory=dict)
    first_arrival: float | None = None
    completed_at: float | None = None

    def __post_init__(self) -> None:
        self.bitmap = ChildrenBitmap(self.n_children)

    # Dense path ------------------------------------------------------
    def mark_dense(self, port: int) -> bool:
        """Dense: one packet per child.  Returns whether to aggregate."""
        return self.bitmap.mark(port)

    # Sparse path -----------------------------------------------------
    def mark_sparse(self, port: int, last_of_block: bool, shard_count: int) -> None:
        """Sparse: count shards; flips the child bit on its last shard."""
        tracker = self.shards.setdefault(port, ShardTracker())
        tracker.on_packet(last_of_block, shard_count)
        if tracker.complete and not self.bitmap.seen(port):
            self.bitmap.mark(port)

    @property
    def complete(self) -> bool:
        return self.bitmap.complete
