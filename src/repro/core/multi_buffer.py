"""Multi-buffer aggregation (paper Sec. 6.2, Fig. 8).

Each block owns up to B aggregation buffers.  A handler grabs whichever
buffer is free *now*; if none is free but fewer than B exist it
allocates a new one; if all B are locked it queues on the
earliest-freeing one (the critical-section wait of Fig. 8, C1/C3).
Contention probability drops roughly by 1/B, which is what lets
multi-buffer recover bandwidth at intermediate message sizes where
staggered sending cannot stretch delta_c past L (Fig. 10).

The price: the handler that completes the children bitmap must fold the
other B-1 partial buffers into one — (B-1)L extra cycles — and the block
holds M = B working-memory buffers.
"""

from __future__ import annotations

from repro.core.buffers import AggregationBuffer
from repro.core.handler_base import AggregationHandlerBase, HandlerConfig, _BlockRecord
from repro.pspin.switch import HandlerContext, HandlerResult


class MultiBufferHandler(AggregationHandlerBase):
    """B aggregation buffers per block (M = B)."""

    def __init__(self, config: HandlerConfig, n_buffers: int) -> None:
        if n_buffers < 1:
            raise ValueError("n_buffers must be >= 1")
        super().__init__(config)
        self.n_buffers = n_buffers
        self.name = f"flare-multi{n_buffers}"

    def _worst_case_buffers(self) -> int:
        return self.n_buffers

    def _pick_buffer(
        self, ctx: HandlerContext, rec: _BlockRecord, t: float, n_elements: int
    ) -> tuple[AggregationBuffer, float]:
        """Choose the buffer to aggregate into; returns (buffer, t).

        Preference order (Fig. 8): a currently-free buffer, then a newly
        allocated one (if under the B budget), then the one freeing
        soonest.
        """
        buffers: list[AggregationBuffer] = rec.extra.setdefault("buffers", [])
        for buf in buffers:
            if buf.free_at <= t:
                return buf, t
        if len(buffers) < self.n_buffers:
            t += ctx.costs.buffer_mgmt_cycles
            pool = self._pool(ctx, rec.home_cluster)
            buf = pool.allocate(n_elements, ctx.dispatch_time)
            if buf is None:
                # L1 exhausted: degrade to waiting on an existing buffer
                # rather than failing the reduction.
                if not buffers:
                    raise MemoryError(
                        f"L1 of cluster {rec.home_cluster} cannot fit any "
                        f"aggregation buffer for block {rec.state.key}"
                    )
            else:
                buffers.append(buf)
                return buf, t
        return min(buffers, key=lambda b: b.free_at), t

    def _aggregate(self, ctx: HandlerContext, rec: _BlockRecord, t: float) -> HandlerResult:
        packet = ctx.packet
        penalty = self._remote_penalty(ctx, rec)
        n_elements = len(packet.payload)

        buf, t = self._pick_buffer(ctx, rec, t, n_elements)
        hold = self._combine_cost(ctx, packet.payload.nbytes, penalty)
        entry, wait = buf.acquire(t, hold)
        t = entry + hold
        self._write_into(buf, packet.payload)

        if not rec.state.complete:
            return HandlerResult(finish_time=t, wait_cycles=wait)

        # Last handler: fold the remaining B-1 partial buffers into ours
        # ((B-1)L extra cycles), waiting out any writer still inside its
        # critical section.
        buffers: list[AggregationBuffer] = rec.extra["buffers"]
        pool = self._pool(ctx, rec.home_cluster)
        nbytes_full = int(buf.data.nbytes)
        for other in buffers:
            if other is buf or not other.filled:
                continue
            merge_hold = self._combine_cost(ctx, nbytes_full, penalty)
            entry, w = other.acquire(t, merge_hold)
            wait += w
            t = entry + merge_hold
            self.config.op.combine_into(buf.data, other.data)
        result_payload = buf.data.copy()
        outputs = self._outputs_for(result_payload, packet.block_id)
        for other in list(buffers):
            pool.release(other, t)
        self._finish_block(ctx, rec, t)
        return HandlerResult(
            finish_time=t,
            outputs=outputs,
            completed_block=rec.state.key,
            wait_cycles=wait,
        )
