"""Flare allreduce configuration.

Gathers the paper's symbols in one place (Table 2 plus Sec. 3/4/6
constants) so models, handlers and experiment drivers agree on
parameters and their units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pspin.costs import CostModel, DType, get_dtype
from repro.utils.units import parse_size


@dataclass
class FlareConfig:
    """Parameters of one Flare allreduce on one switch.

    Symbols (paper Table 2): K = total cores, S = scheduling subset
    size, P = packets per block (children in the reduction tree),
    delta = mean packet interarrival (cycles), delta_c = mean intra-block
    interarrival (cycles), tau = core service time, N = elements per
    packet, Z = elements reduced in total.
    """

    #: Switch dimensions.
    n_clusters: int = 64
    cores_per_cluster: int = 8
    n_ports: int = 64
    port_gbps: float = 100.0

    #: Reduction-tree fan-in: packets per block == children count (P).
    children: int = 64

    #: Scheduling subset size S (defaults to C = cores_per_cluster).
    subset_size: int | None = None

    #: Packet payload size and element type.
    packet_bytes: int = 1024
    dtype_name: str = "float32"

    #: Total data reduced per host, in bytes (Z * element size).
    data_bytes: int = 1024 * 1024

    #: Whether hosts apply staggered sending (Sec. 5).
    staggered: bool = True

    #: Require bitwise-reproducible floating-point aggregation (F3).
    reproducible: bool = False

    #: How the switch is fed for the closed-form models:
    #: "line"     — full aggregate line rate of the ports;
    #: "balanced" — exactly the processing capacity K/L, the paper's
    #:              Sec. 5 assumption that "the interarrival time to the
    #:              processing unit is larger or equal than its service
    #:              time" (the modeled Figs. 7/10/13 operate here);
    #: a float    — explicit delta in cycles.
    feed: str | float = "balanced"

    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        self.data_bytes = parse_size(self.data_bytes)
        self.packet_bytes = parse_size(self.packet_bytes)
        if self.subset_size is None:
            self.subset_size = self.cores_per_cluster
        if self.packet_bytes <= 0 or self.data_bytes <= 0:
            raise ValueError("packet_bytes and data_bytes must be positive")
        if self.children < 1:
            raise ValueError("children must be >= 1")
        # Fail on a bad feed at construction, not lazily inside `delta`.
        if isinstance(self.feed, str):
            if self.feed not in ("line", "balanced"):
                raise ValueError(
                    f"unknown feed policy {self.feed!r}; "
                    "expected 'line', 'balanced', or an explicit delta in cycles"
                )
        elif self.feed <= 0:
            raise ValueError("explicit delta must be positive")

    # ------------------------------------------------------------------
    # Derived symbols
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> DType:
        return get_dtype(self.dtype_name)

    @property
    def n_cores(self) -> int:
        """K — total HPUs."""
        return self.n_clusters * self.cores_per_cluster

    @property
    def elements_per_packet(self) -> int:
        """N — elements per packet."""
        return self.packet_bytes // self.dtype.size_bytes

    @property
    def total_elements(self) -> int:
        """Z — elements reduced per host."""
        return self.data_bytes // self.dtype.size_bytes

    @property
    def blocks(self) -> int:
        """Z/N — reduction blocks per allreduce (>= 1)."""
        return max(1, -(-self.total_elements // self.elements_per_packet))

    @property
    def aggregation_cycles(self) -> float:
        """L — cycles to aggregate one full packet into a buffer."""
        return self.cost_model.aggregation_cycles(self.packet_bytes, self.dtype)

    @property
    def line_rate_bytes_per_cycle(self) -> float:
        bits = self.n_ports * self.port_gbps * 1e9
        return bits / 8.0 / (self.cost_model.clock_ghz * 1e9)

    @property
    def delta(self) -> float:
        """delta — mean packet interarrival in cycles (see ``feed``)."""
        if isinstance(self.feed, (int, float)):
            if self.feed <= 0:
                raise ValueError("explicit delta must be positive")
            return float(self.feed)
        line = self.packet_bytes / self.line_rate_bytes_per_cycle
        if self.feed == "line":
            return line
        if self.feed == "balanced":
            return max(line, self.aggregation_cycles / self.n_cores)
        raise ValueError(f"unknown feed policy {self.feed!r}")

    @property
    def delta_c(self) -> float:
        """delta_c — mean intra-block interarrival (cycles).

        With staggered sending delta_c can be raised up to delta * Z/N
        (Sec. 5: "delta <= delta_c <= delta * Z/N"); without it, packets
        of a block arrive back-to-back from the P children (delta_c =
        delta).
        """
        if not self.staggered:
            return self.delta
        return self.delta * self.blocks
