"""Reduction operators (paper flexibility axis F1).

Flare's headline flexibility claim is that aggregation functions are
plain sPIN handlers, so *any* operator over *any* element type can be
installed — unlike fixed-function switches (predefined MPI ops only) or
RMT pipelines (no floating point, no multiply).  This module is the
user-facing hook: a :class:`ReductionOp` bundles the combine function
(vectorized over numpy arrays), its algebraic properties, and a relative
cycle cost the switch model charges.

``commutative``/``associative`` matter for correctness guarantees:
single- and multi-buffer aggregation combine packets in arrival order
and fold partial buffers in buffer order, so they require commutativity
+ associativity of the *mathematical* operator (fp32 sum qualifies
mathematically but not bitwise — that is exactly the reproducibility
problem F3, solved by tree aggregation's fixed combine structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReductionOp:
    """A user-definable aggregation operator.

    Attributes
    ----------
    name:
        Identifier (also used in handler install messages).
    combine_into:
        ``f(acc, values) -> None`` — element-wise in-place combine,
        vectorized (numpy ufunc ``.at``-style semantics not needed; the
        dense path always combines full aligned slices).
    cycles_factor:
        Cost multiplier relative to the calibrated fp32 add (4 cycles per
        element).  A user multiply-add might be 1.5x; a custom clamp 2x.
    commutative / associative:
        Declared algebraic properties; the policy layer refuses designs
        whose correctness needs a property the operator lacks.
    """

    name: str
    combine_into: Callable[[np.ndarray, np.ndarray], None]
    cycles_factor: float = 1.0
    commutative: bool = True
    associative: bool = True


def _sum_into(acc: np.ndarray, values: np.ndarray) -> None:
    acc += values


def _min_into(acc: np.ndarray, values: np.ndarray) -> None:
    np.minimum(acc, values, out=acc)


def _max_into(acc: np.ndarray, values: np.ndarray) -> None:
    np.maximum(acc, values, out=acc)


def _prod_into(acc: np.ndarray, values: np.ndarray) -> None:
    acc *= values


SUM = ReductionOp("sum", _sum_into)
MIN = ReductionOp("min", _min_into)
MAX = ReductionOp("max", _max_into)
#: Multiplication: unsupported on Tofino-class RMT hardware even for
#: integers (Sec. 2.4) — on Flare it is just another handler.
PROD = ReductionOp("prod", _prod_into, cycles_factor=1.25)

BUILTIN_OPS: dict[str, ReductionOp] = {op.name: op for op in (SUM, MIN, MAX, PROD)}


def get_op(op: "str | ReductionOp") -> ReductionOp:
    """Resolve an operator by name or pass a custom one through."""
    if isinstance(op, ReductionOp):
        return op
    try:
        return BUILTIN_OPS[op]
    except KeyError:
        raise ValueError(f"unknown operator {op!r}; known: {sorted(BUILTIN_OPS)}") from None
