"""Other collectives on the Flare switch (paper Sec. 8).

"Although we considered in this work the allreduce collective
operation, other collectives like reduce, broadcast, and barrier can
also be accelerated with Flare.  For example, a barrier can simply be
implemented as an in-network allreduce with 0-bytes data."

This module builds those on the same handler machinery:

* **reduce** — allreduce without the downward multicast: the root
  forwards the aggregate to the root *rank*'s port only.
* **broadcast** — the inverse data path: one packet in, fan-out at the
  switch (no aggregation state at all, just the multicast machinery).
* **barrier** — a 0-element allreduce: completion of the children
  bitmap *is* the synchronization; payloads are empty.
* **coordination offload** — Sec. 8's Horovod deadlock note: ranks may
  issue allreduces in different orders, so frameworks run an extra
  agreement round on which tensor to reduce next.  Flare can host that
  agreement as a tiny in-network reduction over per-rank ready bitmaps
  (a bitwise-AND allreduce), which :func:`negotiate_ready_set` models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.handler_base import HandlerConfig
from repro.core.ops import ReductionOp
from repro.core.single_buffer import SingleBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig


@dataclass
class SmallCollectiveResult:
    """Outcome of a latency-class collective on one switch."""

    name: str
    n_children: int
    completion_cycles: float
    packets_out: int
    payload: Optional[np.ndarray] = None


def _base_switch(n_clusters: int = 1, cores_per_cluster: int = 8) -> PsPINSwitch:
    cfg = SwitchConfig(n_clusters=n_clusters, cores_per_cluster=cores_per_cluster)
    return PsPINSwitch(cfg)


def run_reduce(
    payloads: list[np.ndarray],
    root_port: int = 0,
    dtype: str = "float32",
    op: "str | ReductionOp" = "sum",
    arrival_gap: float = 4.0,
) -> SmallCollectiveResult:
    """In-network reduce: aggregate, deliver to the root rank only."""
    switch = _base_switch()
    hconf = HandlerConfig(
        allreduce_id=1,
        n_children=len(payloads),
        dtype_name=dtype,
        multicast_ports=[root_port],    # single destination = reduce
        op=op,
    )
    handler = TreeAggregationHandler(hconf)
    switch.register_handler(handler)
    switch.parser.install_allreduce(1, handler.name)
    for port, payload in enumerate(payloads):
        switch.inject(
            SwitchPacket(allreduce_id=1, block_id=0, port=port, payload=payload),
            at=port * arrival_gap,
        )
    makespan = switch.run()
    assert len(switch.egress) == 1
    return SmallCollectiveResult(
        name="reduce",
        n_children=len(payloads),
        completion_cycles=makespan,
        packets_out=len(switch.egress),
        payload=switch.egress[0][1].payload,
    )


def run_broadcast(
    payload: np.ndarray,
    n_children: int,
    root_port: int = 0,
    dtype: str = "float32",
) -> SmallCollectiveResult:
    """In-network broadcast: one ingress packet fans out to all ports.

    Uses a single-child 'aggregation' whose multicast list is every
    port — no reduction state, just the copy + multicast path.
    """
    switch = _base_switch()
    hconf = HandlerConfig(
        allreduce_id=1,
        n_children=1,
        dtype_name=dtype,
        multicast_ports=list(range(n_children)),
    )
    handler = SingleBufferHandler(hconf)
    switch.register_handler(handler)
    switch.parser.install_allreduce(1, handler.name)
    switch.inject(
        SwitchPacket(allreduce_id=1, block_id=0, port=0, payload=payload), at=0.0
    )
    makespan = switch.run()
    return SmallCollectiveResult(
        name="broadcast",
        n_children=n_children,
        completion_cycles=makespan,
        packets_out=len(switch.egress),
        payload=switch.egress[0][1].payload if switch.egress else None,
    )


def run_barrier(n_children: int, arrival_gap: float = 2.0) -> SmallCollectiveResult:
    """In-network barrier: a 0-byte allreduce (paper Sec. 8).

    Every rank sends an empty packet; when the children bitmap fills,
    the release multicasts back.  The completion time is the barrier
    latency the ranks observe.
    """
    switch = _base_switch()
    hconf = HandlerConfig(
        allreduce_id=1,
        n_children=n_children,
        dtype_name="int8",
        multicast_ports=list(range(n_children)),
    )
    handler = SingleBufferHandler(hconf)
    switch.register_handler(handler)
    switch.parser.install_allreduce(1, handler.name)
    empty = np.zeros(0, dtype=np.int8)
    for port in range(n_children):
        switch.inject(
            SwitchPacket(allreduce_id=1, block_id=0, port=port, payload=empty),
            at=port * arrival_gap,
        )
    makespan = switch.run()
    return SmallCollectiveResult(
        name="barrier",
        n_children=n_children,
        completion_cycles=makespan,
        packets_out=len(switch.egress),
    )


def negotiate_ready_set(ready_bitmaps: list[int], n_tensors: int) -> list[int]:
    """Horovod-style coordination as an in-network bitwise-AND reduce.

    Each rank contributes a bitmap of tensors it is ready to reduce; the
    switch ANDs them; every rank receives the agreed set and processes
    those tensors *in bit order* — a global total order that removes the
    Sec. 8 deadlock ("each rank might issue those operations in a
    different order, potentially leading to deadlock").

    Returns the agreed tensor ids, in the deterministic order.
    """
    if not ready_bitmaps:
        raise ValueError("need at least one rank")
    if n_tensors < 1 or n_tensors > 32:
        raise ValueError("bitmap negotiation supports 1..32 tensors per round")

    def and_into(acc: np.ndarray, values: np.ndarray) -> None:
        np.bitwise_and(acc, values, out=acc)

    and_op = ReductionOp("band", and_into)
    payloads = [np.array([b], dtype=np.int32) for b in ready_bitmaps]
    result = run_reduce(payloads, dtype="int32", op=and_op)
    agreed = int(result.payload[0])
    return [t for t in range(n_tensors) if agreed & (1 << t)]
