"""Single-buffer aggregation (paper Sec. 6.1, Fig. 6).

All packets of a block accumulate into one shared aggregation buffer
under a critical section.  The first handler to run copies its payload
in; every later one adds element-wise; the one that completes the
children bitmap reads the result back and emits it.

Contention behaviour: the lock is the buffer's ``free_at`` timestamp,
acquired in dispatch (FCFS) order.  A handler that finds the buffer
locked spins — its core stays busy for the wait plus the aggregation,
exactly the red-box behaviour of Fig. 6 — so with S cores per subset and
intra-block interarrival below the service time, the average service
time degrades to ``L (S-1)/2`` (Eq. 2), which is what caps single-buffer
bandwidth for small messages (Fig. 7, Fig. 11).

Floating-point caveat: values are added in *lock acquisition order*,
i.e. packet dispatch order.  Across runs with different arrival
interleavings the fp32 sum is NOT bitwise stable — this design does not
provide reproducibility (use tree aggregation, Sec. 6.3).
"""

from __future__ import annotations

from repro.core.buffers import AggregationBuffer
from repro.core.handler_base import AggregationHandlerBase, HandlerConfig, _BlockRecord
from repro.pspin.switch import HandlerContext, HandlerResult


class SingleBufferHandler(AggregationHandlerBase):
    """One aggregation buffer per block (M = 1)."""

    name = "flare-single"

    def __init__(self, config: HandlerConfig) -> None:
        super().__init__(config)

    def _aggregate(self, ctx: HandlerContext, rec: _BlockRecord, t: float) -> HandlerResult:
        packet = ctx.packet
        pool = self._pool(ctx, rec.home_cluster)
        penalty = self._remote_penalty(ctx, rec)
        n_elements = len(packet.payload)

        buf: AggregationBuffer | None = rec.extra.get("buffer")
        if buf is None:
            t += ctx.costs.buffer_mgmt_cycles
            buf = pool.allocate(n_elements, ctx.dispatch_time)
            if buf is None:
                raise MemoryError(
                    f"L1 of cluster {rec.home_cluster} cannot fit an aggregation "
                    f"buffer of {n_elements} elements; bound in-flight blocks "
                    f"(paper Sec. 4.3) or use more clusters"
                )
            rec.extra["buffer"] = buf

        # Critical section: copy-in for the first packet, operator-combine
        # for later ones; both take L (Fig. 6 shows equal-length boxes —
        # RI5CY load/compute/store dominates either way).
        hold = self._combine_cost(ctx, packet.payload.nbytes, penalty)
        entry, wait = buf.acquire(t, hold)
        t = entry + hold
        self._write_into(buf, packet.payload)

        if rec.state.complete:
            result_payload = buf.data.copy()
            outputs = self._outputs_for(result_payload, packet.block_id)
            pool.release(buf, t)
            self._finish_block(ctx, rec, t)
            return HandlerResult(
                finish_time=t,
                outputs=outputs,
                completed_block=rec.state.key,
                wait_cycles=wait,
            )
        return HandlerResult(finish_time=t, wait_cycles=wait)
