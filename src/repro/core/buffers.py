"""Working-memory aggregation buffers with timed mutual exclusion.

Aggregation buffers live in a cluster's L1 TCDM (Sec. 4.3).  Handlers
aggregate into them inside a critical section; a handler that finds the
buffer locked spins — actively burning its core's cycles — until the
lock frees (Sec. 6.1: handlers are never suspended).

Because the switch model is a discrete-event simulation, the lock is
represented by a ``free_at`` timestamp rather than an actual mutex:
``acquire(now, hold)`` returns the cycle at which the caller *enters*
the critical section, serializing FIFO in event order (which is arrival
order, i.e. exactly the FCFS semantics the paper assumes).

The pool also does the byte accounting against the cluster's L1 region
and the run telemetry, producing Fig. 7's working-memory series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.pspin.memory import MemoryRegion
from repro.pspin.telemetry import Telemetry


@dataclass(slots=True)
class AggregationBuffer:
    """One working-memory buffer holding a partially aggregated block."""

    buffer_id: int
    nbytes: int
    data: np.ndarray
    free_at: float = 0.0       # lock: cycle at which the current holder exits
    in_use: bool = False       # allocated to a block?
    filled: bool = False       # holds valid data (tree aggregation cares)

    def acquire(self, now: float, hold_cycles: float) -> tuple[float, float]:
        """Enter the critical section at ``max(now, free_at)``.

        Returns ``(entry_time, wait_cycles)`` and re-locks the buffer
        until ``entry + hold_cycles``.
        """
        entry = max(now, self.free_at)
        self.free_at = entry + hold_cycles
        return entry, entry - now


class BufferPool:
    """Allocates aggregation buffers out of a cluster's L1 region.

    ``allocate`` fails (returns None) when the L1 cannot fit another
    buffer — the caller decides whether that stalls the block or drops
    the packet; the paper avoids the situation by bounding in-flight
    blocks to the number of buffers assigned to the allreduce (Sec. 4.3).
    """

    def __init__(
        self,
        l1: MemoryRegion,
        telemetry: Optional[Telemetry] = None,
        dtype: np.dtype | str = np.float32,
    ) -> None:
        self._l1 = l1
        self._telemetry = telemetry
        self._dtype = np.dtype(dtype)
        self._next_id = 0
        self.active: dict[int, AggregationBuffer] = {}
        self.peak_buffers = 0

    def allocate(self, n_elements: int, now: float) -> Optional[AggregationBuffer]:
        """Claim a zero-initialized buffer of ``n_elements``."""
        nbytes = int(n_elements * self._dtype.itemsize)
        if not self._l1.allocate(nbytes, now):
            return None
        buf = AggregationBuffer(
            buffer_id=self._next_id,
            nbytes=nbytes,
            data=np.zeros(n_elements, dtype=self._dtype),
        )
        self._next_id += 1
        buf.in_use = True
        self.active[buf.buffer_id] = buf
        self.peak_buffers = max(self.peak_buffers, len(self.active))
        if self._telemetry is not None:
            self._telemetry.working_memory_bytes.add(now, nbytes)
        return buf

    def release(self, buf: AggregationBuffer, now: float) -> None:
        """Return a buffer to the pool (block fully aggregated & sent)."""
        if buf.buffer_id not in self.active:
            raise ValueError(f"buffer {buf.buffer_id} is not active")
        del self.active[buf.buffer_id]
        self._l1.release(buf.nbytes, now)
        buf.in_use = False
        if self._telemetry is not None:
            self._telemetry.working_memory_bytes.add(now, -buf.nbytes)

    @property
    def used_bytes(self) -> int:
        return sum(b.nbytes for b in self.active.values())
