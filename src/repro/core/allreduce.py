"""End-to-end switch-level dense allreduce driver.

Ties the pieces together for one allreduce on one switch: the network
manager computes a (single-switch) reduction tree and installs the
chosen aggregation handler; hosts' packets are synthesized with
staggered sending and exponential jitter; the PsPIN behavioral model
executes them; the result reports bandwidth, memory occupancy, and the
actual aggregated vectors (so tests verify numerics, not just timing).

The driver is split plan/execute (the :mod:`repro.comm` contract):
:func:`plan_switch_allreduce` performs the one-time control-plane work —
configuration, Sec. 6.4 algorithm selection, reduction-tree
construction, arrival-rate sizing — and the returned
:class:`SwitchAllreducePlan` can then :meth:`~SwitchAllreducePlan.execute`
many allreduces of that shape, each on a fresh simulated switch.

This driver is what the Fig. 11 benchmark runs.  Like the paper, the
default simulates 4 clusters ("the actual PsPIN implementation only
simulates 4 clusters") fed their fair share of line rate and scales
bandwidth linearly to the 64-cluster design point ("because the
clusters are organized in a shared-nothing configuration, we scale the
results linearly with the number of deployed clusters").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import repro.core.fastpath  # noqa: F401  (registers the train kernels)
from repro.core.config import FlareConfig
from repro.core.manager import NetworkManager, ReductionTree
from repro.core.ops import ReductionOp, get_op
from repro.core.policy import AlgorithmChoice, select_algorithm
from repro.core.staggered import arrival_arrays
from repro.provenance.collect import collect_switch
from repro.pspin.costs import CostModel, get_dtype
from repro.pspin.switch import PsPINSwitch, SwitchConfig
from repro.pspin.train import PacketTrain
from repro.utils.rngtools import seeded_rng
from repro.utils.units import parse_size

#: The paper's full design point (Sec. 3): 64 clusters of 8 cores.
FULL_CLUSTERS = 64


def scale_bandwidth(sim_tbps: float, sim_clusters: int, target_clusters: int = FULL_CLUSTERS) -> float:
    """Linear shared-nothing cluster scaling (paper Sec. 6.4)."""
    if sim_clusters < 1:
        raise ValueError("sim_clusters must be >= 1")
    if target_clusters < 1:
        raise ValueError("target_clusters must be >= 1")
    return sim_tbps * target_clusters / sim_clusters


def make_dense_blocks(
    n_hosts: int,
    n_blocks: int,
    n_elements: int,
    dtype: str = "float32",
    seed: int = 0,
) -> np.ndarray:
    """Random per-host block payloads, shape (hosts, blocks, elements).

    Values are small integers stored in ``dtype`` so integer sums never
    overflow for realistic host counts and float sums stay exact enough
    to compare against a numpy golden model.
    """
    rng = seeded_rng(seed)
    data = rng.integers(0, 7, size=(n_hosts, n_blocks, n_elements))
    return data.astype(dtype)


@dataclass
class SwitchAllreduceResult:
    """Outcome of one simulated switch-level allreduce."""

    algorithm: str
    data_bytes: int
    dtype: str
    n_children: int
    n_blocks: int
    sim_clusters: int
    makespan_cycles: float
    sim_bandwidth_tbps: float
    bandwidth_tbps: float                 # scaled to the full design point
    elements_per_second: float            # scaled
    peak_input_buffer_bytes: int
    peak_working_memory_bytes: float
    contention_wait_cycles: float
    icache_fills: int
    deferred_arrivals: int
    blocks_completed: int
    outputs: dict[int, np.ndarray] = field(default_factory=dict)
    #: True when the packet-train fast path simulated the whole run
    #: analytically (bitwise/makespan-identical to the per-packet DES).
    fast_path_used: bool = False
    #: Provenance counter snapshot (:func:`repro.provenance.collect
    #: .collect_switch`), captured here because the simulated switch is
    #: per-execution and gone once this result exists.  Engine-
    #: independent: the fast path commits identical telemetry.
    provenance: dict = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {self.bandwidth_tbps:.2f} Tbps "
            f"({self.n_blocks} blocks x {self.n_children} children, "
            f"makespan {self.makespan_cycles:.0f} cycles)"
        )


@dataclass
class SwitchAllreducePlan:
    """One planned switch-level allreduce shape, executable many times.

    Everything request-shape-dependent is computed exactly once — the
    :class:`FlareConfig`, the Sec. 6.4 aggregation-design choice, the
    switch configuration, the reduction tree, and the fair-share arrival
    rate.  :meth:`execute` instantiates a fresh simulated switch (the
    data plane is stateful) and runs one allreduce through it.
    """

    flare_cfg: FlareConfig
    switch_cfg: SwitchConfig
    choice: AlgorithmChoice
    tree: ReductionTree
    handler_name: str
    operator: ReductionOp
    delta_sim: float          # fair-share packet interarrival (cycles)
    executions: int = 0

    @property
    def n_blocks(self) -> int:
        return self.flare_cfg.blocks

    @property
    def elements_per_packet(self) -> int:
        return self.flare_cfg.elements_per_packet

    def describe(self) -> dict:
        """Plan metadata (what the network manager decided)."""
        return {
            "aggregation": self.choice.label,
            "reason": self.choice.reason,
            "handler": self.handler_name,
            "children": self.flare_cfg.children,
            "blocks": self.n_blocks,
            "elements_per_packet": self.elements_per_packet,
            "sim_clusters": self.switch_cfg.n_clusters,
            "delta_sim_cycles": self.delta_sim,
        }

    def execute(
        self,
        data: Optional[np.ndarray] = None,
        *,
        seed: int = 0,
        jitter: float = 1.0,
        cold_start: bool = True,
        verify: bool = True,
    ) -> SwitchAllreduceResult:
        """Run one allreduce of the planned shape.

        ``data`` may supply explicit payloads of shape
        ``(children, n_blocks, elements_per_packet)`` (a 2-D
        ``(children, n_blocks * elements_per_packet)`` array is
        reshaped); otherwise random payloads are generated from
        ``seed``.  With ``verify`` the aggregated outputs are checked
        against a numpy golden reduction (exact for integers).
        """
        cfg = self.flare_cfg
        children = cfg.children
        n_blocks, n_elements = self.n_blocks, self.elements_per_packet

        switch = PsPINSwitch(self.switch_cfg)
        if not cold_start:
            for cluster in switch.clusters:
                cluster.icache_load("flare-single")
                cluster.icache_load("flare-tree")

        manager = NetworkManager()
        installed = manager.install(
            self.tree,
            {self.tree.root_switch: switch},
            cfg.data_bytes,
            dtype_name=cfg.dtype_name,
            reproducible=cfg.reproducible,
            op=self.operator,
            algorithm=self.choice.label,
        )
        if not cold_start:
            for cluster in switch.clusters:
                cluster.icache_load(self.handler_name)

        # --------------------------------------------------------------
        # Workload
        # --------------------------------------------------------------
        if data is None:
            data = make_dense_blocks(
                children, n_blocks, n_elements, dtype=cfg.dtype_name, seed=seed
            )
        else:
            expected = (children, n_blocks, n_elements)
            if data.ndim == 2 and data.shape == (children, n_blocks * n_elements):
                data = data.reshape(expected)
            if data.shape != expected:
                raise ValueError(f"data shape {data.shape} != expected {expected}")

        times, hosts, blocks = arrival_arrays(
            n_hosts=children,
            n_blocks=n_blocks,
            delta=self.delta_sim,
            staggered=cfg.staggered,
            jitter=jitter,
            seed=seed + 1,
        )
        train = PacketTrain(
            installed.allreduce_id,
            times=times,
            block_ids=blocks,
            ports=hosts,
            data=data,
        )
        fast_path_used = switch.inject_train(train)

        makespan = switch.run()
        self.executions += 1

        # --------------------------------------------------------------
        # Collect + verify
        # --------------------------------------------------------------
        outputs: dict[int, np.ndarray] = {}
        for _t, pkt in switch.egress:
            outputs.setdefault(pkt.block_id, pkt.payload)
        if verify:
            _verify_outputs(outputs, data, self.operator, cfg.dtype_name)

        cost_model = cfg.cost_model
        dt = get_dtype(cfg.dtype_name)
        n_clusters = self.switch_cfg.n_clusters
        payload_bytes = float(data.nbytes)
        seconds = makespan / (cost_model.clock_ghz * 1e9) if makespan > 0 else float("inf")
        sim_tbps = payload_bytes * 8.0 / seconds / 1e12 if makespan > 0 else 0.0
        scaled_tbps = scale_bandwidth(sim_tbps, n_clusters)
        elements_per_second = (
            scale_bandwidth(payload_bytes / dt.size_bytes / seconds, n_clusters)
            if makespan > 0
            else 0.0
        )
        tel = switch.telemetry
        handler = switch.handler(self.handler_name)
        return SwitchAllreduceResult(
            algorithm=self.choice.label,
            data_bytes=cfg.data_bytes,
            dtype=cfg.dtype_name,
            n_children=children,
            n_blocks=n_blocks,
            sim_clusters=n_clusters,
            makespan_cycles=makespan,
            sim_bandwidth_tbps=sim_tbps,
            bandwidth_tbps=scaled_tbps,
            elements_per_second=elements_per_second,
            peak_input_buffer_bytes=switch.memories.l2_packet.peak_bytes,
            peak_working_memory_bytes=tel.working_memory_bytes.peak,
            contention_wait_cycles=tel.contention_wait_cycles.value,
            icache_fills=int(tel.icache_fills.value),
            deferred_arrivals=int(tel.deferred_arrivals.value),
            blocks_completed=handler.blocks_completed,
            outputs=outputs,
            fast_path_used=fast_path_used,
            provenance=collect_switch(switch),
        )


def plan_switch_allreduce(
    data_bytes: int | str,
    children: int = 64,
    algorithm: Optional[str] = None,
    dtype: str = "float32",
    n_clusters: int = 4,
    cores_per_cluster: int = 8,
    subset_size: Optional[int] = None,
    scheduler: str = "hierarchical",
    staggered: bool = True,
    reproducible: bool = False,
    op: "str | ReductionOp" = "sum",
    cost_model: Optional[CostModel] = None,
    packet_bytes: int = 1024,
) -> SwitchAllreducePlan:
    """Plan one dense allreduce shape through a Flare switch.

    Parameters mirror the paper's experimental knobs; see
    :class:`repro.core.config.FlareConfig` for symbol definitions.
    """
    data_bytes = parse_size(data_bytes)
    cost_model = cost_model or CostModel()
    operator = get_op(op)

    flare_cfg = FlareConfig(
        n_clusters=n_clusters,
        cores_per_cluster=cores_per_cluster,
        children=children,
        subset_size=subset_size,
        packet_bytes=packet_bytes,
        dtype_name=dtype,
        data_bytes=data_bytes,
        staggered=staggered,
        reproducible=reproducible,
        cost_model=cost_model,
    )

    if algorithm is None:
        choice = select_algorithm(data_bytes, reproducible=reproducible, op=operator)
    elif algorithm.startswith("multi("):
        choice = AlgorithmChoice("multi", int(algorithm[6:-1]), "explicit")
    else:
        choice = AlgorithmChoice(algorithm, 1, "explicit")
    handler_name = {
        "single": "flare-single",
        "multi": f"flare-multi{choice.n_buffers}",
        "tree": "flare-tree",
    }[choice.algorithm]

    switch_cfg = SwitchConfig(
        n_clusters=n_clusters,
        cores_per_cluster=cores_per_cluster,
        scheduler=scheduler,
        subset_size=subset_size,
        cost_model=cost_model,
    )
    tree = NetworkManager().single_switch_tree(children)

    # Feed the simulated unit its fair share of line rate: a 4-cluster
    # simulation of the 64-cluster switch sees 4/64 of the traffic.
    delta_full = switch_cfg.packet_interarrival_cycles(packet_bytes)
    delta_sim = delta_full * FULL_CLUSTERS / n_clusters

    return SwitchAllreducePlan(
        flare_cfg=flare_cfg,
        switch_cfg=switch_cfg,
        choice=choice,
        tree=tree,
        handler_name=handler_name,
        operator=operator,
        delta_sim=delta_sim,
    )


def run_switch_allreduce(
    data_bytes: int | str,
    children: int = 64,
    algorithm: Optional[str] = None,
    dtype: str = "float32",
    n_clusters: int = 4,
    cores_per_cluster: int = 8,
    subset_size: Optional[int] = None,
    scheduler: str = "hierarchical",
    staggered: bool = True,
    jitter: float = 1.0,
    seed: int = 0,
    reproducible: bool = False,
    op: "str | ReductionOp" = "sum",
    cost_model: Optional[CostModel] = None,
    packet_bytes: int = 1024,
    data: Optional[np.ndarray] = None,
    cold_start: bool = True,
    verify: bool = True,
) -> SwitchAllreduceResult:
    """Simulate one dense allreduce through a Flare switch.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry ("flare_switch"
        algorithm); prefer ``Communicator.allreduce`` or
        :func:`plan_switch_allreduce` for repeated executions.
    """
    warnings.warn(
        "run_switch_allreduce is deprecated; use repro.comm.Communicator"
        ".allreduce(..., algorithm='flare_switch') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    result = legacy_execute(
        "flare_switch",
        nbytes=parse_size(data_bytes),
        n_hosts=children,
        op=op,
        dtype=dtype,
        reproducible=reproducible,
        params={
            "aggregation": algorithm,
            "n_clusters": n_clusters,
            "cores_per_cluster": cores_per_cluster,
            "subset_size": subset_size,
            "scheduler": scheduler,
            "staggered": staggered,
            "cost_model": cost_model,
            "packet_bytes": packet_bytes,
        },
        payloads=data,
        execute_args={
            "seed": seed,
            "jitter": jitter,
            "cold_start": cold_start,
            "verify": verify,
        },
    )
    return result.raw


def _verify_outputs(
    outputs: dict[int, np.ndarray],
    data: np.ndarray,
    operator: ReductionOp,
    dtype: str,
) -> None:
    """Check every aggregated block against a numpy golden model.

    The golden reduction folds host slabs in host order with the same
    in-place combine the handlers use (one vectorized pass per host, not
    per block), so integer results are exact and float results land
    within combine-order tolerance.
    """
    n_hosts, n_blocks, _ = data.shape
    if len(outputs) != n_blocks:
        raise AssertionError(
            f"expected {n_blocks} aggregated blocks, got {len(outputs)}"
        )
    golden = data[0].copy()                       # (blocks, elements)
    for h in range(1, n_hosts):
        operator.combine_into(golden, data[h])
    got = np.stack([outputs[b] for b in range(n_blocks)])
    if np.issubdtype(golden.dtype, np.integer):
        if not np.array_equal(got, golden):
            bad = np.nonzero(~np.all(got == golden, axis=1))[0][0]
            raise AssertionError(f"block {bad}: integer aggregation mismatch")
    else:
        if not np.allclose(got, golden, rtol=1e-5, atol=1e-5):
            ok = np.isclose(got, golden, rtol=1e-5, atol=1e-5).all(axis=1)
            raise AssertionError(
                f"block {np.nonzero(~ok)[0][0]}: float aggregation mismatch"
            )
