"""Network-manager control plane (paper Sec. 4).

Before an allreduce starts, the application contacts a *network manager*
that (1) computes a reduction tree over the switches connecting the
participating hosts, (2) assigns the allreduce a unique identifier, and
(3) installs the aggregation handler + parser rule on every switch of
the tree, telling each switch its child count and parent port.  Each
switch serves at most ``max_allreduces`` concurrently; if a switch on
the only available tree is full the request is rejected and the
application falls back to host-based allreduce — exactly the paper's
failure mode.

Admission is *pooled* rather than statically partitioned: handler
slots and switch SRAM form per-switch pools that live allreduces draw
from (:meth:`NetworkManager.admit` / :meth:`NetworkManager.release`),
and multi-tenant deployments can cap any one tenant's concurrent
reductions with ``tenant_quota`` — the arbitration the shared
:class:`repro.comm.fabric.Fabric` runs every collective through.
Overflow raises :class:`AdmissionError` (a ``RuntimeError``), which
callers answer with the paper's reject-and-fall-back-to-host behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.handler_base import HandlerConfig
from repro.core.ops import ReductionOp, SUM
from repro.core.policy import build_handler, select_algorithm


class AdmissionError(RuntimeError):
    """A switch pool (handler slots, memory) or tenant quota is full.

    Subclasses ``RuntimeError`` so legacy callers catching the static
    ``max_allreduces`` rejection keep working.
    """


@dataclass(frozen=True)
class AdmissionTicket:
    """Proof of admission: the resources one live allreduce holds."""

    ticket_id: int
    switches: tuple
    tenant: Optional[str]
    memory_bytes: float


@dataclass
class TreeNode:
    """One switch's role in a reduction tree."""

    switch_id: int
    children: list[int]           # ports facing hosts or child switches
    parent_port: Optional[int]    # None -> this switch is the root

    @property
    def is_root(self) -> bool:
        return self.parent_port is None


@dataclass
class ReductionTree:
    """A reduction tree: hosts at the leaves, switches inside.

    ``nodes`` maps switch id -> :class:`TreeNode`; ``host_to_switch``
    maps each participating host to its leaf switch.
    """

    allreduce_id: int
    nodes: dict[int, TreeNode]
    host_to_switch: dict[int, int]
    root_switch: int

    def fan_in(self, switch_id: int) -> int:
        return len(self.nodes[switch_id].children)

    def depth(self) -> int:
        """Levels of switches between a host and the root (>= 1)."""
        depth = 1
        node = None
        for sid, n in self.nodes.items():
            if not n.is_root:
                node = n
                break
        # Walk upward counting hops (trees here are small; O(depth^2) ok).
        seen = 0
        while node is not None and not node.is_root and seen < len(self.nodes):
            parent = next(
                (n for n in self.nodes.values() if node.switch_id in n.children), None
            )
            node = parent
            depth += 1
            seen += 1
        return depth


@dataclass
class InstalledAllreduce:
    """Book-keeping for one active allreduce."""

    allreduce_id: int
    tree: ReductionTree
    handler_configs: dict[int, HandlerConfig] = field(default_factory=dict)
    algorithm_label: str = ""


class NetworkManager:
    """Computes reduction trees and installs handlers on switches.

    The manager is topology-agnostic: callers hand it a mapping from
    hosts to leaf switches plus the switch-level uplink structure (for
    the single-switch experiments that is trivially one node).  The
    fat-tree embedding for Fig. 15 lives in ``repro.network.trees``.
    """

    def __init__(
        self,
        max_allreduces_per_switch: int = 8,
        *,
        switch_memory_bytes: Optional[float] = None,
        tenant_quota: Optional[int] = None,
    ) -> None:
        self.max_allreduces = max_allreduces_per_switch
        self.switch_memory_bytes = switch_memory_bytes
        self.tenant_quota = tenant_quota
        self._next_id = 1
        self._next_ticket = 1
        self._active: dict[int, InstalledAllreduce] = {}
        self._load: dict = {}        # switch key -> active allreduce count
        self._memory_used: dict = {}  # switch key -> admitted bytes
        self._tenant_active: dict[str, int] = {}
        self._tickets: dict[int, AdmissionTicket] = {}
        self._dead_switches: set = set()
        self._release_listeners: list = []

    # ------------------------------------------------------------------
    # Pooled admission (multi-tenant fabric path)
    # ------------------------------------------------------------------
    def check(
        self,
        switches: Iterable,
        *,
        tenant: Optional[str] = None,
        memory_bytes: float = 0.0,
    ) -> Optional[AdmissionError]:
        """Non-mutating admission probe.

        Runs exactly the checks :meth:`admit` runs — dead switches,
        tenant quota, handler slots, pooled memory — but reserves
        nothing.  Returns the tagged :class:`AdmissionError` that
        :meth:`admit` would raise right now, or ``None`` if it would
        succeed.  The admission-queue layer uses this to decide whether
        a waiting job can be dequeued without burning a failed
        check-and-commit round trip.
        """
        switches = tuple(switches)
        for sid in switches:
            if sid in self._dead_switches:
                return self._rejection(
                    "switch_down",
                    f"switch {sid} is out of service (failure injected); "
                    "replan the tree or fall back to host-based allreduce",
                )
        if tenant is not None and self.tenant_quota is not None:
            if self._tenant_active.get(tenant, 0) >= self.tenant_quota:
                return self._rejection(
                    "quota",
                    f"tenant {tenant!r} already runs {self.tenant_quota} "
                    "concurrent allreduces (quota); wait or fall back to "
                    "host-based allreduce",
                )
        for sid in switches:
            if self._load.get(sid, 0) >= self.max_allreduces:
                return self._rejection(
                    "slots",
                    f"switch {sid} already serves {self.max_allreduces} "
                    "allreduces; recompute the tree or fall back to "
                    "host-based allreduce",
                )
            if (
                self.switch_memory_bytes is not None
                and self._memory_used.get(sid, 0.0) + memory_bytes
                > self.switch_memory_bytes
            ):
                return self._rejection(
                    "memory",
                    f"switch {sid} memory pool exhausted "
                    f"({self._memory_used.get(sid, 0.0):.0f}"
                    f"/{self.switch_memory_bytes:.0f} B used, "
                    f"{memory_bytes:.0f} B requested); fall back to "
                    "host-based allreduce",
                )
        return None

    def admit(
        self,
        switches: Iterable,
        *,
        tenant: Optional[str] = None,
        memory_bytes: float = 0.0,
    ) -> AdmissionTicket:
        """Reserve one allreduce's resources on every listed switch.

        Checks, atomically across all ``switches``: handler slots
        (``max_allreduces`` pooled per switch), switch memory
        (``switch_memory_bytes`` pooled per switch, when configured),
        and the per-tenant concurrency quota.  Raises
        :class:`AdmissionError` naming the exhausted resource;
        on success returns a ticket for :meth:`release`.
        """
        switches = tuple(switches)
        rejection = self.check(
            switches, tenant=tenant, memory_bytes=memory_bytes
        )
        if rejection is not None:
            raise rejection
        for sid in switches:
            self._load[sid] = self._load.get(sid, 0) + 1
            self._memory_used[sid] = (
                self._memory_used.get(sid, 0.0) + memory_bytes
            )
        if tenant is not None:
            self._tenant_active[tenant] = self._tenant_active.get(tenant, 0) + 1
        ticket = AdmissionTicket(
            ticket_id=self._next_ticket,
            switches=switches,
            tenant=tenant,
            memory_bytes=memory_bytes,
        )
        self._next_ticket += 1
        self._tickets[ticket.ticket_id] = ticket
        return ticket

    @staticmethod
    def _rejection(resource: str, message: str) -> AdmissionError:
        """An :class:`AdmissionError` tagged with the exhausted pool
        (``"slots"``/``"memory"``/``"quota"``) so callers can decide
        whether falling back to a host algorithm can help."""
        exc = AdmissionError(message)
        exc.resource = resource
        return exc

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a ticket's slots and memory to the pools."""
        if self._tickets.pop(ticket.ticket_id, None) is None:
            raise KeyError(f"ticket {ticket.ticket_id} is not active")
        for sid in ticket.switches:
            self._load[sid] = max(0, self._load.get(sid, 0) - 1)
            self._memory_used[sid] = max(
                0.0, self._memory_used.get(sid, 0.0) - ticket.memory_bytes
            )
        if ticket.tenant is not None:
            self._tenant_active[ticket.tenant] = max(
                0, self._tenant_active.get(ticket.tenant, 0) - 1
            )
        for cb in list(self._release_listeners):
            cb()

    def add_release_listener(self, callback) -> None:
        """``callback()`` fires after every :meth:`release` (pool
        resources just freed — queued admissions can retry)."""
        self._release_listeners.append(callback)

    # ------------------------------------------------------------------
    # Failure state (chaos/fault injection)
    # ------------------------------------------------------------------
    def fail_switch(self, switch) -> None:
        """Mark a switch dead: admission on it is refused until repair
        (resource tag ``"switch_down"``, so the fabric's fallback path
        can distinguish an outage from pool exhaustion)."""
        self._dead_switches.add(switch)

    def repair_switch(self, switch) -> None:
        self._dead_switches.discard(switch)

    def dead_switches(self) -> set:
        return set(self._dead_switches)

    def utilization(self) -> dict:
        """Live pool state (for timelines and operator dashboards)."""
        return {
            "switch_load": dict(self._load),
            "switch_memory_bytes": dict(self._memory_used),
            "tenant_active": dict(self._tenant_active),
            "admitted": len(self._tickets),
            "dead_switches": sorted(self._dead_switches),
        }

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def single_switch_tree(self, n_hosts: int, switch_id: int = 0) -> ReductionTree:
        """All hosts under one switch (the Sec. 4-6 setting)."""
        allreduce_id = self._next_id
        node = TreeNode(switch_id=switch_id, children=list(range(n_hosts)), parent_port=None)
        return ReductionTree(
            allreduce_id=allreduce_id,
            nodes={switch_id: node},
            host_to_switch={h: switch_id for h in range(n_hosts)},
            root_switch=switch_id,
        )

    def two_level_tree(
        self,
        hosts_per_leaf: dict[int, list[int]],
        root_switch: int,
        uplink_port: int = 0,
    ) -> ReductionTree:
        """Leaf switches aggregate their hosts; one root aggregates leaves.

        ``hosts_per_leaf`` maps leaf-switch id -> list of host ids.
        """
        allreduce_id = self._next_id
        nodes: dict[int, TreeNode] = {}
        host_to_switch: dict[int, int] = {}
        root_children: list[int] = []
        for leaf_id, hosts in hosts_per_leaf.items():
            if not hosts:
                continue
            nodes[leaf_id] = TreeNode(
                switch_id=leaf_id,
                children=list(range(len(hosts))),
                parent_port=uplink_port,
            )
            for h in hosts:
                host_to_switch[h] = leaf_id
            root_children.append(leaf_id)
        nodes[root_switch] = TreeNode(
            switch_id=root_switch,
            children=list(range(len(root_children))),
            parent_port=None,
        )
        return ReductionTree(
            allreduce_id=allreduce_id,
            nodes=nodes,
            host_to_switch=host_to_switch,
            root_switch=root_switch,
        )

    def tree_from_aggregation(
        self, tree: "object", id_of: dict
    ) -> ReductionTree:
        """Build a :class:`ReductionTree` from a planned
        :class:`repro.network.trees.AggregationTree`.

        ``id_of`` maps topology switch names to integer switch ids.
        Each switch's ingress ports are its directly attached hosts
        first, then its child switches — the same ordering callers use
        when wiring egress callbacks and injecting host packets.
        """
        allreduce_id = self._next_id
        nodes: dict[int, TreeNode] = {}
        host_to_switch: dict[int, int] = {}
        host_row = 0
        for name in tree.switches():
            sid = id_of[name]
            attached = tree.hosts_of.get(name, ())
            kids = tree.children_of.get(name, ())
            nodes[sid] = TreeNode(
                switch_id=sid,
                children=list(range(len(attached) + len(kids))),
                parent_port=None if tree.parent_of(name) is None else 0,
            )
            for _h in attached:
                host_to_switch[host_row] = sid
                host_row += 1
        return ReductionTree(
            allreduce_id=allreduce_id,
            nodes=nodes,
            host_to_switch=host_to_switch,
            root_switch=id_of[tree.root],
        )

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(
        self,
        tree: ReductionTree,
        switches: dict[int, "object"],
        data_bytes: int,
        dtype_name: str = "float32",
        reproducible: bool = False,
        op: ReductionOp = SUM,
        algorithm: Optional[str] = None,
    ) -> InstalledAllreduce:
        """Install handlers for ``tree`` on the given PsPIN switches.

        Raises :class:`AdmissionError` (a ``RuntimeError``) if any
        switch already runs its maximum number of allreduces — callers
        then either recompute a tree avoiding that switch or fall back
        to host-based allreduce.
        """
        for sid in tree.nodes:
            if self._load.get(sid, 0) >= self.max_allreduces:
                raise AdmissionError(
                    f"switch {sid} already serves {self.max_allreduces} allreduces; "
                    "recompute the tree or fall back to host-based allreduce"
                )
        if algorithm is None:
            choice = select_algorithm(data_bytes, reproducible=reproducible, op=op)
        else:
            from repro.core.policy import AlgorithmChoice

            if algorithm.startswith("multi"):
                b = int(algorithm[algorithm.index("(") + 1 : algorithm.index(")")])
                choice = AlgorithmChoice("multi", b, "explicit")
            else:
                choice = AlgorithmChoice(algorithm, 1, "explicit")

        allreduce_id = self._next_id
        self._next_id += 1
        tree.allreduce_id = allreduce_id
        installed = InstalledAllreduce(
            allreduce_id=allreduce_id, tree=tree, algorithm_label=choice.label
        )
        for sid, node in tree.nodes.items():
            hconf = HandlerConfig(
                allreduce_id=allreduce_id,
                n_children=len(node.children),
                dtype_name=dtype_name,
                multicast_ports=node.children if node.is_root else None,
                reproducible=reproducible,
                op=op,
            )
            installed.handler_configs[sid] = hconf
            switch = switches.get(sid)
            if switch is not None:
                handler = build_handler(choice, hconf)
                switch.register_handler(handler)
                switch.parser.install_allreduce(allreduce_id, handler.name)
            self._load[sid] = self._load.get(sid, 0) + 1
        self._active[allreduce_id] = installed
        return installed

    def uninstall(self, allreduce_id: int, switches: dict[int, "object"]) -> None:
        """Tear down an allreduce: remove rules, decrement switch load."""
        installed = self._active.pop(allreduce_id, None)
        if installed is None:
            raise KeyError(f"allreduce {allreduce_id} is not active")
        for sid in installed.tree.nodes:
            self._load[sid] = max(0, self._load.get(sid, 0) - 1)
            switch = switches.get(sid)
            if switch is not None:
                switch.parser.uninstall(f"allreduce-{allreduce_id}")

    @property
    def active_allreduces(self) -> int:
        return len(self._active)
