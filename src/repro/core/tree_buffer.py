"""Tree aggregation (paper Sec. 6.3, Fig. 9).

Every packet is DMA-copied into its own buffer (64 cycles/KiB instead of
the ~1024-cycle aggregation), and partial buffers merge pairwise along a
*fixed* binary tree: buffer 2j merges into buffer 2j+1, then level-1
carriers merge, and so on to the root.  A handler only performs the next
merge if it finds data already present in the sibling buffer — otherwise
it simply terminates and the sibling's (later-finishing) handler will do
it.  No handler ever waits on a critical section, so the design achieves
optimal bandwidth regardless of the intra-block interarrival delta_c —
which is why it is the only Flare design that beats SwitchML at small
message sizes (Fig. 11).

Reproducibility (F3): the leaf slot is the ingress *port*, so the
combine structure — which values are grouped with which — is a function
of the reduction-tree shape only, never of packet arrival order.  For
fp32 summation this yields bitwise-identical results across runs (tested
by permuting arrival orders in ``tests/core/test_reproducibility.py``).

Cost accounting: P-1 merges of L cycles each are spread over the P
handlers (whoever finds the sibling ready climbs), giving the modeled
per-packet average tau = copy + (P-1)L/P.  Live buffers per block
average (P-1)/log2(P) (each merge frees one buffer).

The climb runs as a *continuation* at the handler's fill-completion
time: whether a handler merges depends on which sibling finished last,
which is unknowable at dispatch time (see
:class:`repro.pspin.switch.HandlerResult`).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.buffers import AggregationBuffer
from repro.core.handler_base import AggregationHandlerBase, HandlerConfig, _BlockRecord
from repro.pspin.switch import HandlerContext, HandlerResult

Node = tuple[int, int]  # (level, index)


class PairTree:
    """The fixed merge structure over P leaves.

    Node ``(l, j)`` covers leaves ``[j * 2^l, min((j+1) * 2^l, P))``.
    Level l has ``ceil(P / 2^l)`` nodes; the root is the first level with
    a single node.  A node whose sibling index falls off the end of its
    level *promotes* to its parent for free (odd subtree sizes).
    """

    def __init__(self, n_leaves: int) -> None:
        if n_leaves < 1:
            raise ValueError("need at least one leaf")
        self.n_leaves = n_leaves
        self.root_level = 0 if n_leaves == 1 else math.ceil(math.log2(n_leaves))

    def level_count(self, level: int) -> int:
        return -(-self.n_leaves // (1 << level))

    def parent(self, node: Node) -> Optional[Node]:
        level, j = node
        if level >= self.root_level:
            return None
        return (level + 1, j // 2)

    def sibling(self, node: Node) -> Optional[Node]:
        level, j = node
        sib = j ^ 1
        if sib >= self.level_count(level):
            return None
        return (level, sib)

    @property
    def root(self) -> Node:
        return (self.root_level, 0)

    def merge_count(self) -> int:
        """Total pairwise merges = P - 1 (invariant; property-tested)."""
        total = 0
        for level in range(self.root_level):
            total += self.level_count(level) // 2
        return total


class TreeAggregationHandler(AggregationHandlerBase):
    """Fixed-structure pairwise-merge aggregation (M ~ (P-1)/log2 P)."""

    name = "flare-tree"

    def __init__(self, config: HandlerConfig) -> None:
        super().__init__(config)
        self.tree = PairTree(config.n_children)

    def _worst_case_buffers(self) -> int:
        return self.config.n_children

    # ------------------------------------------------------------------
    def _aggregate(self, ctx: HandlerContext, rec: _BlockRecord, t: float) -> HandlerResult:
        packet = ctx.packet
        pool = self._pool(ctx, rec.home_cluster)
        done_at: dict[Node, float] = rec.extra.setdefault("done_at", {})
        buffer_at: dict[Node, AggregationBuffer] = rec.extra.setdefault("buffer_at", {})

        t += ctx.costs.buffer_mgmt_cycles
        buf = pool.allocate(len(packet.payload), ctx.dispatch_time)
        if buf is None:
            # Roll back the bitmap mark so the retried packet aggregates.
            rec.state.bitmap._bits &= ~(1 << packet.port)
            from repro.core.handler_base import WorkingMemoryStall

            raise WorkingMemoryStall(
                f"L1 of cluster {rec.home_cluster} cannot fit a tree buffer "
                f"for block {rec.state.key}"
            )
        # DMA copy (cheap) rather than an element-wise pass.
        t += ctx.costs.copy_cycles(packet.payload.nbytes)
        self._write_into(buf, packet.payload)

        leaf: Node = (0, packet.port)
        if leaf in done_at:
            raise RuntimeError(f"leaf {leaf} filled twice for block {rec.state.key}")
        done_at[leaf] = t
        buffer_at[leaf] = buf

        def climb(now: float) -> Optional[HandlerResult]:
            return self._climb(ctx, rec, leaf, now)

        return HandlerResult(finish_time=t, continuation=climb)

    # ------------------------------------------------------------------
    def _climb(
        self, ctx: HandlerContext, rec: _BlockRecord, start: Node, now: float
    ) -> Optional[HandlerResult]:
        """Perform at most one merge upward from ``start``.

        Runs at the handler's fill/merge completion time; ``done_at``
        entries may point into the future (a sibling still being filled
        or merged), in which case this handler stops and the sibling's
        climb takes over — the paper's "only if a core finds available
        data in both buffers" rule, with ties broken by event order via
        ``claimed``.

        One merge per invocation is essential: each merge ends at a
        *future* time, and whether the next level can proceed must be
        decided with the block state as of that time — so the next check
        is chained as a fresh continuation rather than evaluated eagerly
        (eager evaluation deadlocks when a promotion lands between a
        merge's start and its end).
        """
        done_at: dict[Node, float] = rec.extra["done_at"]
        buffer_at: dict[Node, AggregationBuffer] = rec.extra["buffer_at"]
        claimed: set[Node] = rec.extra.setdefault("claimed", set())
        pool = self._pool(ctx, rec.home_cluster)
        penalty = self._remote_penalty(ctx, rec)

        node = start
        t = now
        while True:
            parent = self.tree.parent(node)
            if parent is None:
                # Reached the root: this climb owns the final result.
                root_buf = buffer_at[node]
                payload = root_buf.data.copy()
                outputs = self._outputs_for(payload, rec.state.key[1])
                pool.release(root_buf, t)
                self._finish_block(ctx, rec, t)
                return HandlerResult(
                    finish_time=t, outputs=outputs, completed_block=rec.state.key
                )
            if parent in claimed:
                return None
            sibling = self.tree.sibling(node)
            if sibling is None:
                # Odd subtree: promote for free; data availability time
                # is inherited, no cycles are charged.
                claimed.add(parent)
                done_at[parent] = done_at[node]
                buffer_at[parent] = buffer_at[node]
                node = parent
                continue
            sib_done = done_at.get(sibling)
            if sib_done is None or sib_done > t:
                # Sibling not ready: its handler will climb later.
                return None
            # Both children ready: merge even-index buffer into odd-index
            # one (fixed direction -> fixed combine structure -> F3).
            claimed.add(parent)
            level, j = node
            left = buffer_at[(level, j & ~1)]
            right = buffer_at[(level, j | 1)]
            cost = self._combine_cost(ctx, int(left.data.nbytes), penalty)
            t += cost
            self.config.op.combine_into(right.data, left.data)
            pool.release(left, t)
            done_at[parent] = t
            buffer_at[parent] = right

            def next_climb(now2: float, _node: Node = parent) -> Optional[HandlerResult]:
                return self._climb(ctx, rec, _node, now2)

            return HandlerResult(finish_time=t, continuation=next_climb)
