"""Flare core: the paper's primary contribution.

Dense in-network allreduce on the PsPIN switch substrate — the three
aggregation designs of Sec. 6 (single buffer, multiple buffers, tree),
the closed-form performance/occupancy models of Secs. 4-6, the staggered
sending technique of Sec. 5, the algorithm-selection policy of Sec. 6.4,
and the network-manager control plane of Sec. 4.
"""

from repro.core.config import FlareConfig
from repro.core.ops import ReductionOp, SUM, MIN, MAX, PROD, get_op
from repro.core.handler_base import HandlerConfig, PARENT_PORT
from repro.core.models import (
    ModelInputs,
    single_buffer_model,
    multi_buffer_model,
    tree_model,
    bandwidth_packets_per_cycle,
    input_buffer_packets,
    block_latency_cycles,
    working_memory_buffers,
    max_staggered_interarrival,
    evaluate_design,
    DesignPoint,
)
from repro.core.blockstate import BlockState, ChildrenBitmap
from repro.core.buffers import BufferPool, AggregationBuffer
from repro.core.single_buffer import SingleBufferHandler
from repro.core.multi_buffer import MultiBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.core.policy import select_algorithm, ALGORITHMS
from repro.core.staggered import staggered_schedule, sequential_schedule, arrival_stream
from repro.core.manager import (
    AdmissionError,
    AdmissionTicket,
    NetworkManager,
    ReductionTree,
)
from repro.core.allreduce import (
    SwitchAllreducePlan,
    SwitchAllreduceResult,
    plan_switch_allreduce,
    run_switch_allreduce,
    make_dense_blocks,
    scale_bandwidth,
)

__all__ = [
    "FlareConfig",
    "ReductionOp",
    "SUM",
    "MIN",
    "MAX",
    "PROD",
    "get_op",
    "HandlerConfig",
    "PARENT_PORT",
    "ModelInputs",
    "single_buffer_model",
    "multi_buffer_model",
    "tree_model",
    "bandwidth_packets_per_cycle",
    "input_buffer_packets",
    "block_latency_cycles",
    "working_memory_buffers",
    "max_staggered_interarrival",
    "evaluate_design",
    "DesignPoint",
    "BlockState",
    "ChildrenBitmap",
    "BufferPool",
    "AggregationBuffer",
    "SingleBufferHandler",
    "MultiBufferHandler",
    "TreeAggregationHandler",
    "select_algorithm",
    "ALGORITHMS",
    "staggered_schedule",
    "sequential_schedule",
    "arrival_stream",
    "AdmissionError",
    "AdmissionTicket",
    "NetworkManager",
    "ReductionTree",
    "SwitchAllreducePlan",
    "SwitchAllreduceResult",
    "plan_switch_allreduce",
    "run_switch_allreduce",
    "make_dense_blocks",
    "scale_bandwidth",
]
