"""Table 1: capability comparison of in-network allreduce systems.

F1 — custom operators and data types; F2 — sparse data;
F3 — reproducibility.  Values: "yes", "partial", "no", "?" (unknown),
exactly as the paper's glyphs (filled / half / empty circle / question
mark).  Citation keys are the paper's reference numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.tables import ascii_table


@dataclass(frozen=True)
class SystemCapabilities:
    name: str
    category: str        # fixed-function | fpga | programmable
    reference: str       # paper citation
    custom_ops: str      # F1
    sparse: str          # F2
    reproducible: str    # F3


CAPABILITY_MATRIX: list[SystemCapabilities] = [
    SystemCapabilities("SHArP", "fixed-function", "[9]", "no", "no", "yes"),
    SystemCapabilities("SHARP-SAT", "fixed-function", "[16]", "no", "no", "yes"),
    SystemCapabilities("Aries", "fixed-function", "[17]", "no", "no", "?"),
    SystemCapabilities("Tofu-D", "fixed-function", "[18]", "no", "no", "?"),
    SystemCapabilities("PERCS", "fixed-function", "[19]", "no", "no", "?"),
    SystemCapabilities("Anton 2", "fixed-function", "[21]", "no", "no", "?"),
    SystemCapabilities("NVIDIA shmem", "fixed-function", "[10]", "no", "no", "yes"),
    SystemCapabilities("PANAMA", "fpga", "[22]", "no", "no", "yes"),
    SystemCapabilities("NetReduce", "fpga", "[23]", "no", "no", "yes"),
    SystemCapabilities("ATP", "programmable", "[24]", "partial", "no", "no"),
    SystemCapabilities("SwitchML", "programmable", "[11]", "partial", "no", "yes"),
    SystemCapabilities("OmniReduce", "programmable", "[25]", "partial", "partial", "no"),
    SystemCapabilities("Flare", "programmable", "(this work)", "yes", "yes", "yes"),
]


def capability_table() -> str:
    """Render Table 1 as text (the bench prints this)."""
    rows = [
        [s.name, s.category, s.reference, s.custom_ops, s.sparse, s.reproducible]
        for s in CAPABILITY_MATRIX
    ]
    return ascii_table(
        ["system", "category", "ref", "F1 custom ops", "F2 sparse", "F3 reproducible"],
        rows,
        title="Table 1: in-network allreduce capability comparison",
    )


def flare_dominates() -> bool:
    """Invariant the tests pin down: Flare is the only full-'yes' row."""
    full = [s for s in CAPABILITY_MATRIX if
            (s.custom_ops, s.sparse, s.reproducible) == ("yes", "yes", "yes")]
    return len(full) == 1 and full[0].name == "Flare"
