"""SHARP behavioral model (Mellanox Scalable Hierarchical Aggregation
and Reduction Protocol).

The paper's fixed-function reference (Secs. 2.1, 6.4): supports the
standard MPI operators on integer and floating-point data, reproducible
aggregation, no sparse support, no custom operators.  "The best
available known data for SHARP (for a single switch) shows a 3.2 Tbps
bandwidth (32 ports at 100Gbps), and we use this as a reference."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SHARPModel:
    """Envelope model of a SHARP-capable switch."""

    peak_tbps: float = 3.2
    n_ports: int = 32
    port_gbps: float = 100.0
    supports_float: bool = True
    supports_double: bool = True
    supports_sparse: bool = False
    supports_custom_ops: bool = False
    reproducible: bool = True

    def bandwidth_tbps(self, dtype_name: str) -> float:
        """Aggregation bandwidth; the fixed pipeline is dtype-agnostic
        across its supported set."""
        supported = {"int8", "int16", "int32", "int64",
                     "float16", "float32", "float64"}
        if dtype_name not in supported:
            return 0.0
        return self.peak_tbps

    def elements_per_second(self, dtype_name: str) -> float:
        bw = self.bandwidth_tbps(dtype_name)
        if bw == 0.0:
            return 0.0
        bits = {"int8": 8, "int16": 16, "int32": 32, "int64": 64,
                "float16": 16, "float32": 32, "float64": 64}[dtype_name]
        return bw * 1e12 / bits
