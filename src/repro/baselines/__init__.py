"""Reference models of competing in-network reduction systems.

SwitchML (NSDI'21, Tofino RMT pipeline) and SHARP (Mellanox
fixed-function switches) are the two systems Fig. 11 compares Flare
against; Table 1 compares thirteen systems along the three flexibility
axes.  These behavioral models encode the published envelopes and
constraints — they exist so the benchmark harness regenerates the
paper's comparison lines from executable artifacts rather than
hard-coded constants scattered through figure code.
"""

from repro.baselines.switchml import SwitchMLModel
from repro.baselines.sharp import SHARPModel
from repro.baselines.capability import CAPABILITY_MATRIX, capability_table

__all__ = [
    "SwitchMLModel",
    "SHARPModel",
    "CAPABILITY_MATRIX",
    "capability_table",
]
