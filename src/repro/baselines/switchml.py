"""SwitchML behavioral model (Sapio et al., NSDI'21).

Constraints the paper leans on (Secs. 2.3-2.4, 6.4):

* runs on Tofino RMT pipelines: **integer only** (no FPU), no
  multiply/divide;
* a packet traverses 10-20 match-action stages and can perform ~32
  operations, so only a fixed number of elements per packet are
  aggregated regardless of element width — sub-32-bit types do not
  raise the element rate;
* processing more elements per packet needs *recirculation*, dividing
  bandwidth accordingly ("to process the data sent by the hosts at
  100Gbps, existing allreduce implementations for programmable switches
  only allow 16 ports to be used on a 64-port switch");
* published peak: **1.6 Tbps**.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SwitchMLModel:
    """Envelope model of a SwitchML deployment on one switch."""

    peak_tbps: float = 1.6
    elements_per_packet: int = 32          # per pipeline pass
    element_bits: int = 32
    n_ports: int = 64
    usable_ports: int = 16                 # at 100 Gbps line rate
    supports_float: bool = False
    supports_sparse: bool = False
    reproducible: bool = True              # fixed pool slots, integer math

    def bandwidth_tbps(self, dtype_name: str, recirculations: int = 1) -> float:
        """Achievable aggregation bandwidth for a dtype.

        Unsupported dtypes return 0 (the paper plots SwitchML only for
        integers).  Recirculation divides bandwidth.
        """
        if recirculations < 1:
            raise ValueError("recirculations must be >= 1")
        if dtype_name in ("float32", "float16", "float64"):
            return 0.0
        return self.peak_tbps / recirculations

    def elements_per_second(self, dtype_name: str) -> float:
        """Aggregated elements/s — flat across integer widths.

        The pipeline processes a fixed element *count* per packet, so
        int16/int8 payloads do not increase throughput (Flare's SIMD
        advantage in Fig. 11 right).
        """
        if dtype_name in ("float32", "float16", "float64"):
            return 0.0
        # 32 elements per ~32-element-budget packet at peak: the packet
        # carries elements_per_packet 32-bit slots.
        packet_bits = self.elements_per_packet * self.element_bits
        packets_per_s = self.peak_tbps * 1e12 / packet_bits
        return packets_per_s * self.elements_per_packet

    def max_elements_without_recirculation(self) -> int:
        return self.elements_per_packet
