"""Rolling SLO statistics for service-mode runs.

The service's answer to "are we serving?": per-tenant-class iteration
completion percentiles (p50/p95/p99), goodput, Jain fairness across
classes (weight-normalized, so a 4x-weight class is *expected* 4x the
goodput and fairness measures deviation from that), admission-queue
depth and wait, and plan-cache hit rate.  Snapshots share the versioned
JSON envelope of ``Fabric.timeline_json`` (``schema_version``), so one
schema doc covers both exports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.comm.fabric import TIMELINE_SCHEMA_VERSION


def jain_fairness(values: list[float]) -> float:
    """Jain's index ``(Σx)² / (n·Σx²)``: 1.0 = perfectly fair, 1/n =
    one class took everything.  Empty/zero inputs report 1.0 (nothing
    was contended, nothing was unfair)."""
    xs = [v for v in values if v > 0]
    if not xs:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * sum(x * x for x in xs))


def _percentiles(samples: list[float]) -> dict:
    if not samples:
        return {"p50_ns": None, "p95_ns": None, "p99_ns": None}
    arr = np.asarray(samples, dtype=float)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {"p50_ns": float(p50), "p95_ns": float(p95), "p99_ns": float(p99)}


class SLOStats:
    """Accumulates per-iteration completions and exports snapshots."""

    def __init__(self, class_weights: dict) -> None:
        self.class_weights = dict(class_weights)
        #: Per-class iteration completion times (ns, queue wait included).
        self._iteration_ns: dict[str, list[float]] = {}
        #: Per-class delivered payload bytes (goodput numerator).
        self._bytes: dict[str, float] = {}
        self._iterations: dict[str, int] = {}
        self._fallbacks: dict[str, int] = {}
        self._recoveries: dict[str, int] = {}
        #: Per-class reliability counters from fault-injection runs
        #: (each flow's drops/duplicates/retransmits, attributed to the
        #: owning tenant class as its iterations settle).
        self._drops: dict[str, int] = {}
        self._duplicates: dict[str, int] = {}
        self._retransmits: dict[str, int] = {}
        self.jobs_completed = 0
        self.jobs_arrived = 0
        self.snapshots: list[dict] = []

    # ------------------------------------------------------------------
    def record_arrival(self, job) -> None:
        self.jobs_arrived += 1

    def record_iteration(
        self,
        tenant_class: str,
        duration_ns: float,
        nbytes: float,
        *,
        fell_back: bool = False,
        recoveries: int = 0,
        drops: int = 0,
        duplicates: int = 0,
        retransmits: int = 0,
    ) -> None:
        self._iteration_ns.setdefault(tenant_class, []).append(duration_ns)
        self._bytes[tenant_class] = self._bytes.get(tenant_class, 0.0) + nbytes
        self._iterations[tenant_class] = self._iterations.get(tenant_class, 0) + 1
        if fell_back:
            self._fallbacks[tenant_class] = self._fallbacks.get(tenant_class, 0) + 1
        if recoveries:
            self._recoveries[tenant_class] = (
                self._recoveries.get(tenant_class, 0) + recoveries
            )
        if drops:
            self._drops[tenant_class] = self._drops.get(tenant_class, 0) + drops
        if duplicates:
            self._duplicates[tenant_class] = (
                self._duplicates.get(tenant_class, 0) + duplicates
            )
        if retransmits:
            self._retransmits[tenant_class] = (
                self._retransmits.get(tenant_class, 0) + retransmits
            )

    def record_job_done(self, job) -> None:
        self.jobs_completed += 1

    # ------------------------------------------------------------------
    # Crash-consistent checkpointing (JSON-safe state)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Everything accumulated so far, JSON-serializable."""
        return {
            "iteration_ns": {k: list(v) for k, v in self._iteration_ns.items()},
            "bytes": dict(self._bytes),
            "iterations": dict(self._iterations),
            "fallbacks": dict(self._fallbacks),
            "recoveries": dict(self._recoveries),
            "drops": dict(self._drops),
            "duplicates": dict(self._duplicates),
            "retransmits": dict(self._retransmits),
            "jobs_completed": self.jobs_completed,
            "jobs_arrived": self.jobs_arrived,
            "snapshots": list(self.snapshots),
        }

    def from_state(self, state: dict) -> None:
        self._iteration_ns = {
            k: [float(x) for x in v]
            for k, v in state["iteration_ns"].items()
        }
        self._bytes = {k: float(v) for k, v in state["bytes"].items()}
        self._iterations = {k: int(v) for k, v in state["iterations"].items()}
        self._fallbacks = {k: int(v) for k, v in state["fallbacks"].items()}
        self._recoveries = {k: int(v) for k, v in state["recoveries"].items()}
        self._drops = {k: int(v) for k, v in state["drops"].items()}
        self._duplicates = {k: int(v) for k, v in state["duplicates"].items()}
        self._retransmits = {
            k: int(v) for k, v in state["retransmits"].items()
        }
        self.jobs_completed = int(state["jobs_completed"])
        self.jobs_arrived = int(state["jobs_arrived"])
        self.snapshots = list(state["snapshots"])

    # ------------------------------------------------------------------
    def per_class(self, now_ns: float) -> dict:
        out: dict[str, dict] = {}
        for cls in sorted(set(self._iteration_ns) | set(self.class_weights)):
            samples = self._iteration_ns.get(cls, [])
            delivered = self._bytes.get(cls, 0.0)
            goodput = delivered * 8.0 / now_ns if now_ns > 0 else 0.0
            out[cls] = {
                "weight": self.class_weights.get(cls, 1.0),
                "iterations": self._iterations.get(cls, 0),
                "bytes": delivered,
                "goodput_gbps": goodput,
                "fell_back": self._fallbacks.get(cls, 0),
                "recoveries": self._recoveries.get(cls, 0),
                "drops": self._drops.get(cls, 0),
                "duplicates": self._duplicates.get(cls, 0),
                "retransmits": self._retransmits.get(cls, 0),
                **_percentiles(samples),
            }
        return out

    def fairness(self, now_ns: float) -> float:
        """Jain's index over weight-normalized per-class goodput."""
        per = self.per_class(now_ns)
        shares = [
            stats["goodput_gbps"] / stats["weight"]
            for cls, stats in per.items()
            if stats["iterations"] > 0
        ]
        return jain_fairness(shares)

    # ------------------------------------------------------------------
    def snapshot(
        self,
        now_ns: float,
        *,
        queue=None,
        cache_info: Optional[dict] = None,
        extra: Optional[dict] = None,
    ) -> dict:
        """One rolling snapshot (appended to :attr:`snapshots`)."""
        snap = {
            "schema_version": TIMELINE_SCHEMA_VERSION,
            "now_ns": now_ns,
            "jobs": {
                "arrived": self.jobs_arrived,
                "completed": self.jobs_completed,
            },
            "classes": self.per_class(now_ns),
            "fairness": self.fairness(now_ns),
        }
        if queue is not None:
            waits = queue.wait_samples_ns
            snap["queue"] = {
                "policy": queue.policy,
                "depth": queue.depth,
                "enqueued": queue.enqueued,
                "dequeued": queue.dequeued,
                "mean_wait_ns": float(np.mean(waits)) if waits else 0.0,
                "max_wait_ns": float(np.max(waits)) if waits else 0.0,
                "mean_depth": (
                    float(np.mean(queue.depth_samples))
                    if queue.depth_samples
                    else 0.0
                ),
                "reasons": dict(queue.reason_counts),
            }
        if cache_info is not None:
            hits = cache_info.get("hits", 0)
            misses = cache_info.get("misses", 0)
            total = hits + misses
            snap["plan_cache"] = {
                **cache_info,
                "hit_rate": hits / total if total else None,
            }
        if extra:
            snap.update(extra)
        self.snapshots.append(snap)
        return snap

    def report(
        self,
        now_ns: float,
        *,
        queue=None,
        cache_info: Optional[dict] = None,
        extra: Optional[dict] = None,
    ) -> dict:
        """The final SLO report: last-word stats plus every snapshot."""
        final = self.snapshot(
            now_ns, queue=queue, cache_info=cache_info, extra=extra
        )
        self.snapshots.pop()      # final is the envelope, not a sample
        return {**final, "snapshots": self.snapshots}
