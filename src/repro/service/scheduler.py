"""Job placement: mapping arriving tenants onto topology regions.

A :class:`JobScheduler` answers one question — *which hosts should this
job's collective span?* — before the engine issues anything.  Placement
matters because a collective's schedule (its ring, or its aggregation
tree and therefore the switch pools admission draws on) follows the
hosts it covers: packing a job under one leaf keeps its reduction at
that leaf, spreading it across pods buys link diversity at the price of
spine/global traffic.

Both built-in policies work on the topology's *regions* — the locality
domains :meth:`repro.network.topology.Topology.regions` exposes (leaf
racks on the fat tree, groups on the dragonfly) — and consult

* live per-host occupancy (how many active jobs already span a host),
  maintained by the engine, and
* live :class:`~repro.network.simulator.TrafficStats` per-link byte
  counts, so a region whose uplinks are glowing gets deprioritized.

A job whose ``n_hosts`` is ``None`` (or equals the fabric size) spans
every host and bypasses placement entirely — that is the path that
stays bitwise-identical to a direct ``Communicator.allreduce``.
"""

from __future__ import annotations

from typing import Optional

from repro.network.topology import Topology


class PlacementError(ValueError):
    """The job cannot be placed (more hosts requested than exist)."""


class JobScheduler:
    """Base policy: order regions, then fill hosts from them."""

    name = "base"

    def place(
        self,
        n_hosts: int,
        topology: Topology,
        occupancy: dict,
        link_bytes: Optional[dict] = None,
    ) -> tuple:
        """Pick ``n_hosts`` hosts for a new job.

        ``occupancy`` maps host -> count of active jobs spanning it;
        ``link_bytes`` maps (src, dst) -> bytes carried (live traffic).
        Returns the placed host tuple, in schedule order.
        """
        if n_hosts > topology.n_hosts:
            raise PlacementError(
                f"job wants {n_hosts} hosts; fabric wires {topology.n_hosts}"
            )
        if n_hosts == topology.n_hosts:
            return tuple(topology.hosts)
        regions = topology.regions()
        ranked = self.rank_regions(regions, topology, occupancy, link_bytes or {})
        return self.fill(n_hosts, regions, ranked, occupancy)

    # -- policy hooks --------------------------------------------------
    def rank_regions(
        self, regions: dict, topology: Topology, occupancy: dict, link_bytes: dict
    ) -> list[str]:
        raise NotImplementedError

    def fill(
        self, n_hosts: int, regions: dict, ranked: list[str], occupancy: dict
    ) -> tuple:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    @staticmethod
    def region_load(region_hosts: tuple, occupancy: dict) -> int:
        return sum(occupancy.get(h, 0) for h in region_hosts)

    @staticmethod
    def region_heat(
        region: str, topology: Topology, link_bytes: dict
    ) -> float:
        """Live bytes on the region's switch links (both directions) —
        the congestion signal dynamic placement steers away from."""
        switches = set(topology.region_switches(region))
        return sum(
            nbytes
            for (src, dst), nbytes in link_bytes.items()
            if src in switches or dst in switches
        )


class LocalityPackScheduler(JobScheduler):
    """Pack the job into as few regions as possible.

    Regions are ranked coolest-and-emptiest first, then the job fills
    whole regions in rank order (least-occupied hosts first inside
    each).  A job that fits under one leaf aggregates at that leaf —
    minimum tree depth, no spine traffic — which is the right default
    when jobs are small and the fabric is oversubscribed.
    """

    name = "pack"

    def rank_regions(self, regions, topology, occupancy, link_bytes):
        return sorted(
            regions,
            key=lambda r: (
                self.region_load(regions[r], occupancy),
                self.region_heat(r, topology, link_bytes),
                r,
            ),
        )

    def fill(self, n_hosts, regions, ranked, occupancy):
        placed: list = []
        for region in ranked:
            hosts = sorted(
                regions[region], key=lambda h: (occupancy.get(h, 0), h)
            )
            placed.extend(hosts[: n_hosts - len(placed)])
            if len(placed) == n_hosts:
                break
        return tuple(placed)


class LoadSpreadScheduler(JobScheduler):
    """Spread the job round-robin across every region.

    One host from each region in turn (coolest regions first,
    least-occupied host within each) until the job is covered.  Buys
    maximum link diversity — each host's traffic climbs a different
    leaf/group — at the price of a deeper tree; the right call when
    single regions are saturated or faults make locality risky.
    """

    name = "spread"

    def rank_regions(self, regions, topology, occupancy, link_bytes):
        return sorted(
            regions,
            key=lambda r: (
                self.region_heat(r, topology, link_bytes),
                self.region_load(regions[r], occupancy),
                r,
            ),
        )

    def fill(self, n_hosts, regions, ranked, occupancy):
        queues = {
            r: sorted(regions[r], key=lambda h: (occupancy.get(h, 0), h))
            for r in ranked
        }
        placed: list = []
        while len(placed) < n_hosts:
            progressed = False
            for region in ranked:
                if queues[region]:
                    placed.append(queues[region].pop(0))
                    progressed = True
                    if len(placed) == n_hosts:
                        break
            if not progressed:     # pragma: no cover - guarded by place()
                raise PlacementError("ran out of hosts while spreading")
        return tuple(placed)


SCHEDULERS = {
    LocalityPackScheduler.name: LocalityPackScheduler,
    LoadSpreadScheduler.name: LoadSpreadScheduler,
}


def build_scheduler(policy) -> JobScheduler:
    """``"pack"``/``"spread"`` or a prebuilt :class:`JobScheduler`."""
    if isinstance(policy, JobScheduler):
        return policy
    try:
        return SCHEDULERS[policy]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {policy!r}; "
            f"available: {sorted(SCHEDULERS)}"
        ) from None
