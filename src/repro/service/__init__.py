"""Long-running service mode: workloads, placement, queueing, SLOs.

The subsystem that turns the one-shot collective library into a
steady-state serving system::

    from repro.comm.fabric import Fabric
    from repro.service import FabricService, PoissonWorkload, TenantClass

    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=2)
    workload = PoissonWorkload(
        [TenantClass("prod", weight=4.0, rate_per_s=2000, n_hosts=8),
         TenantClass("batch", weight=1.0, rate_per_s=500, n_hosts=8)],
        seed=7, duration_ns=5e6,
    )
    report = FabricService(fabric, workload).run()
    print(report["fairness"], report["classes"]["prod"]["p99_ns"])

See README "Service mode" for the CLI entry point
(``flare-repro service``) and the trace-file schema.
"""

from repro.service.engine import FabricService
from repro.service.queueing import AdmissionQueue
from repro.service.scheduler import (
    JobScheduler,
    LocalityPackScheduler,
    LoadSpreadScheduler,
    PlacementError,
    build_scheduler,
)
from repro.service.slo import SLOStats, jain_fairness
from repro.service.workload import (
    TRACE_SCHEMA_VERSION,
    Job,
    PoissonWorkload,
    TenantClass,
    TraceWorkload,
)

__all__ = [
    "AdmissionQueue",
    "FabricService",
    "Job",
    "JobScheduler",
    "LocalityPackScheduler",
    "LoadSpreadScheduler",
    "PlacementError",
    "PoissonWorkload",
    "SLOStats",
    "TenantClass",
    "TraceWorkload",
    "TRACE_SCHEMA_VERSION",
    "build_scheduler",
    "jain_fairness",
]
