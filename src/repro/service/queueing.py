"""Admission queueing in front of the switch pools.

The fabric's own admission path (:class:`repro.core.manager.
NetworkManager`) answers *now or never*: a collective that cannot get
its switch slots is rejected (and falls back host-based).  A service
cannot live with never — jobs should *wait* for pool capacity instead
of erroring or silently degrading — so the engine parks rejected
iterations in an :class:`AdmissionQueue` and retries them whenever pool
resources are released.

Two dequeue disciplines:

* ``"fifo"`` — strict arrival order with head-of-line blocking: the
  head waits for its resources even if a later job could be admitted
  now.  Simple, starvation-free within one resource class, and the
  right baseline for measuring what WFQ buys.
* ``"wfq"`` — weighted start-time fair queueing over tenant classes:
  each entry gets a virtual finish time ``vft = max(class_vft, vnow) +
  nbytes / weight`` at enqueue, and the *admittable* entry with the
  smallest vft dequeues first.  Heavy classes drain proportionally
  faster; light classes still make progress (their vft grows slower
  per byte, so they cannot be starved by a firehose class).
"""

from __future__ import annotations

from typing import Callable, Optional


class QueuedJob:
    """One iteration waiting for admission."""

    __slots__ = ("job", "tenant_class", "weight", "enqueued_ns", "vft", "seq", "reason")

    def __init__(self, job, tenant_class, weight, enqueued_ns, vft, seq, reason):
        self.job = job
        self.tenant_class = tenant_class
        self.weight = weight
        self.enqueued_ns = enqueued_ns
        self.vft = vft
        self.seq = seq
        self.reason = reason


class AdmissionQueue:
    """FIFO or weighted-fair queue of iterations awaiting pool space."""

    def __init__(self, policy: str = "wfq") -> None:
        if policy not in ("fifo", "wfq"):
            raise ValueError(f"unknown queue policy {policy!r}")
        self.policy = policy
        self._items: list[QueuedJob] = []
        self._seq = 0
        self._class_vft: dict[str, float] = {}
        self._vnow = 0.0
        #: Observability counters for the SLO collector.
        self.enqueued = 0
        self.dequeued = 0
        self.wait_samples_ns: list[float] = []
        self.depth_samples: list[int] = []
        #: Why entries queued, by rejection resource (slots/memory/quota):
        #: the saturation fingerprint the scaling bench reads.
        self.reason_counts: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def push(
        self, job, *, tenant_class: str, weight: float, now: float, reason: str
    ) -> None:
        """Park one iteration; its virtual finish time is stamped at
        enqueue (start-time fairness: waiting accrues no extra credit)."""
        vft = max(self._class_vft.get(tenant_class, 0.0), self._vnow)
        vft += float(job.nbytes) / weight
        self._class_vft[tenant_class] = vft
        self._items.append(
            QueuedJob(job, tenant_class, weight, now, vft, self._seq, reason)
        )
        self._seq += 1
        self.enqueued += 1
        self.reason_counts[reason] = self.reason_counts.get(reason, 0) + 1

    def pop_admittable(
        self, admittable: Callable, now: float
    ) -> Optional[QueuedJob]:
        """Dequeue the next entry whose admission check passes.

        ``admittable(job) -> bool`` probes the pools without reserving.
        FIFO only ever examines the head (head-of-line blocking is the
        policy); WFQ scans every waiting entry in virtual-finish order
        and takes the first admittable one.  Returns ``None`` when
        nothing can be admitted right now.
        """
        if not self._items:
            return None
        if self.policy == "fifo":
            candidates = [self._items[0]]
        else:
            candidates = sorted(self._items, key=lambda q: (q.vft, q.seq))
        for entry in candidates:
            if admittable(entry.job):
                self._items.remove(entry)
                self._vnow = max(self._vnow, entry.vft)
                self.dequeued += 1
                self.wait_samples_ns.append(now - entry.enqueued_ns)
                return entry
        return None

    def sample_depth(self) -> None:
        self.depth_samples.append(len(self._items))

    def waiting(self) -> list[QueuedJob]:
        return list(self._items)

    # ------------------------------------------------------------------
    # Crash-consistent checkpointing (JSON-safe state)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Queue contents and fairness state, keyed by job id (the
        jobs themselves are re-derived from the workload on resume)."""
        return {
            "policy": self.policy,
            "seq": self._seq,
            "vnow": self._vnow,
            "class_vft": dict(self._class_vft),
            "entries": [
                {
                    "job_id": q.job.job_id,
                    "tenant_class": q.tenant_class,
                    "weight": q.weight,
                    "enqueued_ns": q.enqueued_ns,
                    "vft": q.vft,
                    "seq": q.seq,
                    "reason": q.reason,
                }
                for q in self._items
            ],
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "wait_samples_ns": list(self.wait_samples_ns),
            "depth_samples": list(self.depth_samples),
            "reason_counts": dict(self.reason_counts),
        }

    def from_state(self, state: dict, job_by_id) -> None:
        if state["policy"] != self.policy:
            raise ValueError(
                f"checkpoint queue policy {state['policy']!r} != "
                f"configured {self.policy!r}"
            )
        self._seq = int(state["seq"])
        self._vnow = float(state["vnow"])
        self._class_vft = {
            k: float(v) for k, v in state["class_vft"].items()
        }
        self._items = [
            QueuedJob(
                job_by_id(int(e["job_id"])), e["tenant_class"],
                float(e["weight"]), float(e["enqueued_ns"]),
                float(e["vft"]), int(e["seq"]), e["reason"],
            )
            for e in state["entries"]
        ]
        self.enqueued = int(state["enqueued"])
        self.dequeued = int(state["dequeued"])
        self.wait_samples_ns = [float(x) for x in state["wait_samples_ns"]]
        self.depth_samples = [int(x) for x in state["depth_samples"]]
        self.reason_counts = {
            k: int(v) for k, v in state["reason_counts"].items()
        }
