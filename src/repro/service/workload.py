"""Workload generation for the long-running fabric service.

Two sources feed :class:`repro.service.engine.FabricService` with
training jobs:

* :class:`PoissonWorkload` — open-loop seeded Poisson arrivals per
  tenant class (the classic service-evaluation arrival process);
* :class:`TraceWorkload` — deterministic replay of a JSON trace of
  training-job epochs.

Both produce the same :class:`Job` records: a job is one training
tenant's run — ``iterations`` allreduces of ``nbytes`` each, separated
by an ``gap_ns`` inter-iteration compute gap — annotated with the QoS
class it bills to and an algorithm hint for the planner.

Every random draw comes from :func:`repro.utils.rngtools.child_rng`
streams keyed by purpose and class name, so arrival processes never
share a stream with fault schedules or payload fills: adding a draw to
one component cannot perturb any other (process-stable splitting).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.utils.rngtools import child_rng
from repro.utils.units import parse_size, parse_time_ns

#: Version of the trace-file schema :class:`TraceWorkload` reads (and
#: the example under ``examples/traces/``).  Bump on field changes.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TenantClass:
    """One QoS class of tenants sharing a weight and job shape.

    ``rate_per_s`` is the Poisson arrival rate (jobs per simulated
    second); the remaining fields describe the job every arrival of
    this class runs.  ``n_hosts=None`` means every job spans the full
    fabric (no placement — the single-tenant-identical path).
    """

    name: str
    weight: float = 1.0
    rate_per_s: float = 100.0
    nbytes: float = 1024 * 1024
    n_hosts: Optional[int] = None
    iterations: int = 4
    gap_ns: float = 20_000.0
    algorithm: str = "auto"
    dtype: str = "float32"
    sparse: bool = False
    density: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"class {self.name!r}: weight must be positive")
        if self.iterations < 1:
            raise ValueError(f"class {self.name!r}: iterations must be >= 1")


@dataclass
class Job:
    """One training job: a tenant running ``iterations`` allreduces."""

    job_id: int
    tenant_class: str
    arrival_ns: float
    nbytes: float
    n_hosts: Optional[int]
    iterations: int
    gap_ns: float
    algorithm: str = "auto"
    dtype: str = "float32"
    sparse: bool = False
    density: float = 1.0
    #: Filled by the scheduler at arrival: the placed host subset
    #: (None = whole fabric).
    hosts: Optional[tuple] = None
    #: Engine progress state.
    iterations_done: int = 0
    status: str = "pending"         # pending | running | queued | done
    queue_waits_ns: list = field(default_factory=list)
    iteration_times_ns: list = field(default_factory=list)
    first_issue_ns: Optional[float] = None
    finish_ns: Optional[float] = None


class PoissonWorkload:
    """Seeded open-loop Poisson arrivals for a set of tenant classes.

    Arrivals for each class are drawn from an independent
    ``child_rng(seed, "arrivals", class_name)`` stream: exponential
    inter-arrival gaps at ``rate_per_s``, truncated at ``duration_ns``.
    The full arrival sequence is materialized up front (it is part of
    the experiment's identity), sorted by time with job id as the
    deterministic tie-break.
    """

    def __init__(
        self,
        classes: Iterable[TenantClass],
        *,
        seed: int = 0,
        duration_ns: float = 1e9,
    ) -> None:
        self.classes = {c.name: c for c in classes}
        if len(self.classes) < 1:
            raise ValueError("need at least one tenant class")
        self.seed = seed
        self.duration_ns = float(duration_ns)

    def jobs(self) -> list[Job]:
        arrivals: list[tuple[float, str]] = []
        for name, cls in sorted(self.classes.items()):
            rng = child_rng(self.seed, "arrivals", name)
            mean_gap_ns = 1e9 / cls.rate_per_s
            t = 0.0
            while True:
                t += rng.exponential(mean_gap_ns)
                if t > self.duration_ns:
                    break
                arrivals.append((t, name))
        arrivals.sort()
        out: list[Job] = []
        for job_id, (t, name) in enumerate(arrivals):
            cls = self.classes[name]
            out.append(
                Job(
                    job_id=job_id,
                    tenant_class=name,
                    arrival_ns=t,
                    nbytes=float(cls.nbytes),
                    n_hosts=cls.n_hosts,
                    iterations=cls.iterations,
                    gap_ns=cls.gap_ns,
                    algorithm=cls.algorithm,
                    dtype=cls.dtype,
                    sparse=cls.sparse,
                    density=cls.density,
                )
            )
        return out


class TraceWorkload:
    """Deterministic replay of a JSON trace of training-job epochs.

    Trace schema (``schema_version`` 1)::

        {
          "schema_version": 1,
          "classes": {"prod": {"weight": 4.0}, "batch": {"weight": 1.0}},
          "jobs": [
            {"tenant": "prod", "arrival": "0us", "size": "4MiB",
             "dtype": "float32", "algorithm": "flare_dense",
             "gap": "50us", "iterations": 8, "n_hosts": 8}
          ]
        }

    ``arrival`` and ``gap`` take the time syntax of
    :func:`repro.utils.units.parse_time_ns` (``"50us"``, ``"1ms"``,
    bare ns numbers); ``size`` takes
    :func:`repro.utils.units.parse_size` (``"4MiB"``); ``algorithm``
    is a hint for the planner (``"auto"`` lets capability-based
    selection pick).  A job's ``tenant`` must name an entry of
    ``classes`` (weights default to 1.0 for unlisted classes).
    """

    def __init__(self, source) -> None:
        if isinstance(source, (str, bytes)):
            with open(source) as fh:
                spec = json.load(fh)
        else:
            spec = dict(source)
        version = spec.get("schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema_version {version!r} unsupported; this "
                f"reader speaks version {TRACE_SCHEMA_VERSION}"
            )
        raw_jobs = spec.get("jobs")
        if not raw_jobs:
            raise ValueError("trace lists no jobs")
        class_spec = spec.get("classes") or {}
        names = {j["tenant"] for j in raw_jobs} | set(class_spec)
        self.classes = {
            name: TenantClass(
                name=name,
                weight=float(class_spec.get(name, {}).get("weight", 1.0)),
            )
            for name in sorted(names)
        }
        self._jobs: list[Job] = []
        records = sorted(
            raw_jobs, key=lambda j: (parse_time_ns(j.get("arrival", 0)),)
        )
        for job_id, j in enumerate(records):
            self._jobs.append(
                Job(
                    job_id=job_id,
                    tenant_class=j["tenant"],
                    arrival_ns=parse_time_ns(j.get("arrival", 0)),
                    nbytes=float(parse_size(j.get("size", "1MiB"))),
                    n_hosts=j.get("n_hosts"),
                    iterations=int(j.get("iterations", 1)),
                    gap_ns=parse_time_ns(j.get("gap", 0)),
                    algorithm=j.get("algorithm", "auto"),
                    dtype=j.get("dtype", "float32"),
                    sparse=bool(j.get("sparse", False)),
                    density=float(j.get("density", 1.0)),
                )
            )
        self.duration_ns = max(j.arrival_ns for j in self._jobs)

    def jobs(self) -> list[Job]:
        return [
            Job(**{
                k: list(v) if isinstance(v, list) else v
                for k, v in vars(j).items()
            })
            for j in self._jobs
        ]
