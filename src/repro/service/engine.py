"""The long-running fabric service: arrivals in, SLO reports out.

:class:`FabricService` closes the loop the one-shot benchmarks leave
open: it runs a :class:`~repro.comm.fabric.Fabric` *indefinitely* under
a workload source (Poisson arrivals or trace replay), placing each
arriving job onto topology regions, queueing it when the switch pools
are full, issuing its training iterations into the shared event loop,
and folding every completion into rolling SLO statistics.

The service adds **no second clock**: arrivals, queue retries, snapshot
ticks, and iteration gaps are all events on the fabric's one
discrete-event simulator, interleaved with the collectives' own chunk
events (and any armed fault events — chaos composes for free).

Lifecycle of one job::

    arrival ──place (JobScheduler)──► plan ──admission probe──┐
        ┌─────────────────────◄── pool release retry ──────── │ full
        ▼                                                     ▼
      issue iteration ──done──► gap ──► next iteration   AdmissionQueue
        │ (last one)
        ▼
      job done ──► SLOStats

A single job spanning the whole fabric takes none of the service-only
paths (no placement param, no queueing) — its request is byte-for-byte
the one ``Communicator.allreduce`` would build, which is what keeps
service mode bitwise/makespan-identical in the single-tenant limit
(the parity test pins this).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.comm.fabric import Fabric
from repro.core.manager import AdmissionError
from repro.service.queueing import AdmissionQueue
from repro.service.scheduler import build_scheduler
from repro.service.slo import SLOStats
from repro.service.workload import Job

#: Admission rejections worth *waiting out* (resources that free up as
#: running collectives finish).  ``switch_down`` is not one: the fabric
#: replans or falls back immediately rather than waiting for repair.
QUEUEABLE_RESOURCES = frozenset({"slots", "memory", "quota"})


class FabricService:
    """Runs a fabric under a workload until every job completes.

    Parameters
    ----------
    fabric:
        The shared substrate (bring your own: arbitration, pools,
        quotas, armed faults all apply to the service's traffic).
    workload:
        A :class:`~repro.service.workload.PoissonWorkload` or
        :class:`~repro.service.workload.TraceWorkload` (anything with
        ``.jobs()`` and ``.classes``).
    scheduler:
        Placement policy: ``"pack"``, ``"spread"``, or a prebuilt
        :class:`~repro.service.scheduler.JobScheduler`.
    queue_policy:
        Admission-queue discipline, ``"wfq"`` (default) or ``"fifo"``.
    snapshot_interval_ns:
        Period of rolling SLO snapshots (None = final report only).
    """

    def __init__(
        self,
        fabric: Fabric,
        workload,
        *,
        scheduler="pack",
        queue_policy: str = "wfq",
        snapshot_interval_ns: Optional[float] = None,
    ) -> None:
        self.fabric = fabric
        self.workload = workload
        self.scheduler = build_scheduler(scheduler)
        self.queue = AdmissionQueue(queue_policy)
        self.snapshot_interval_ns = snapshot_interval_ns
        self.stats = SLOStats(
            {name: cls.weight for name, cls in workload.classes.items()}
        )
        #: host -> number of active jobs spanning it (placement signal).
        self.occupancy: dict = {}
        self._comms = {
            name: fabric.communicator(name=f"svc/{name}", weight=cls.weight)
            for name, cls in sorted(workload.classes.items())
        }
        self._open_jobs = 0
        self._arrivals_remaining = 0
        self._draining = False
        fabric.on_pool_release(self._on_pool_release)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, slo_out: Optional[str] = None) -> dict:
        """Replay the workload to completion; returns the SLO report.

        Jobs that can never be admitted (demand exceeding the total
        pool) are reported under ``starved_jobs`` instead of hanging
        the loop — the CI smoke gate fails on any.
        """
        jobs = self.workload.jobs()
        self._arrivals_remaining = len(jobs)
        sim = self.fabric.sim
        for job in jobs:
            sim.schedule_at(job.arrival_ns, self._on_arrival, job)
        if self.snapshot_interval_ns:
            sim.schedule_at(self.snapshot_interval_ns, self._tick)
        self.fabric.run()
        return self._final_report(slo_out)

    def _final_report(self, slo_out: Optional[str]) -> dict:
        starved = [
            {
                "job_id": q.job.job_id,
                "tenant_class": q.tenant_class,
                "waiting_since_ns": q.enqueued_ns,
                "reason": q.reason,
            }
            for q in self.queue.waiting()
        ]
        # Final provenance flush (energy needs the settled makespan).
        self.fabric.flush_provenance()
        extra = {
            "run_id": self.fabric.run_id,
            "placement": self.scheduler.name,
            "starved_jobs": starved,
            "utilization": self.fabric.manager.utilization(),
            "faults": self.fabric.fault_log(),
        }
        if self.fabric.provenance is not None:
            extra["provenance_db"] = self.fabric.provenance.store.path
        report = self.stats.report(
            self.fabric.now,
            queue=self.queue,
            cache_info=self.cache_info(),
            extra=extra,
        )
        if slo_out is not None:
            with open(slo_out, "w") as fh:
                json.dump(report, fh, indent=2, default=str)
        return report

    def cache_info(self) -> dict:
        """Plan-cache counters aggregated over every tenant class."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "currsize": 0}
        for comm in self._comms.values():
            info = comm.cache_info()
            for key in totals:
                totals[key] += getattr(info, key)
        return totals

    # ------------------------------------------------------------------
    # Job lifecycle (every handler runs inside the event loop)
    # ------------------------------------------------------------------
    def _on_arrival(self, job: Job) -> None:
        self.stats.record_arrival(job)
        self._open_jobs += 1
        self._arrivals_remaining -= 1
        n_hosts = job.n_hosts or self.fabric.topology.n_hosts
        if n_hosts < self.fabric.topology.n_hosts:
            job.hosts = self.scheduler.place(
                n_hosts,
                self.fabric.topology,
                self.occupancy,
                self.fabric.net.traffic.per_link,
            )
            for h in job.hosts:
                self.occupancy[h] = self.occupancy.get(h, 0) + 1
        job.status = "running"
        self._start_iteration(job)

    def _request_kwargs(self, job: Job) -> dict:
        kwargs = dict(
            algorithm=job.algorithm,
            dtype=job.dtype,
            sparse=job.sparse,
            density=job.density,
        )
        if job.hosts is not None:
            # Placement params only when actually placing: a
            # full-fabric job's request stays identical to a direct
            # Communicator.allreduce (single-tenant parity).
            kwargs["hosts"] = job.hosts
        return kwargs

    def _start_iteration(self, job: Job) -> None:
        """An iteration is ready: admit now or park in the queue."""
        comm = self._comms[job.tenant_class]
        kwargs = self._request_kwargs(job)
        plan = comm.plan(nbytes=job.nbytes, **kwargs)
        rejection = self.fabric.would_admit(plan, tenant=comm.name)
        if (
            rejection is not None
            and getattr(rejection, "resource", None) in QUEUEABLE_RESOURCES
        ):
            job.status = "queued"
            cls = self.workload.classes[job.tenant_class]
            self.queue.push(
                job,
                tenant_class=job.tenant_class,
                weight=cls.weight,
                now=self.fabric.now,
                reason=rejection.resource,
            )
            self.queue.sample_depth()
            return
        self._issue(job, queued_ns=None)

    def _admittable(self, job: Job) -> bool:
        comm = self._comms[job.tenant_class]
        plan = comm.plan(nbytes=job.nbytes, **self._request_kwargs(job))
        return self.fabric.would_admit(plan, tenant=comm.name) is None

    def _issue(self, job: Job, queued_ns: Optional[float]) -> None:
        comm = self._comms[job.tenant_class]
        now = self.fabric.now
        if job.first_issue_ns is None:
            job.first_issue_ns = now
        if queued_ns is not None:
            job.queue_waits_ns.append(now - queued_ns)
        job.status = "running"
        ready_ns = queued_ns if queued_ns is not None else now
        try:
            future = comm.iallreduce(job.nbytes, **self._request_kwargs(job))
        except AdmissionError as exc:
            # The probe and the issue disagree (e.g. a fault landed in
            # between inside this same timestamp): park and retry.
            job.status = "queued"
            cls = self.workload.classes[job.tenant_class]
            self.queue.push(
                job,
                tenant_class=job.tenant_class,
                weight=cls.weight,
                now=now,
                reason=getattr(exc, "resource", "unknown"),
            )
            return
        future.add_done_callback(
            lambda fut: self._on_iteration_done(job, ready_ns, fut.result())
        )

    def _on_iteration_done(self, job: Job, ready_ns: float, result) -> None:
        now = self.fabric.now
        duration = now - ready_ns           # queue wait + execution
        job.iteration_times_ns.append(duration)
        job.iterations_done += 1
        self.stats.record_iteration(
            job.tenant_class,
            duration,
            job.nbytes,
            fell_back=bool(result.extra.get("fell_back")),
            recoveries=len(result.extra.get("recoveries") or ()),
            # Per-flow reliability counters (present on fault-injection
            # runs via NetworkSimulator.traffic_extra): what the chaos
            # cost this class, surfaced in every SLO snapshot.
            drops=int(result.extra.get("drops") or 0),
            duplicates=int(result.extra.get("duplicates") or 0),
            retransmits=int(result.extra.get("retransmits") or 0),
        )
        if job.iterations_done < job.iterations:
            self.fabric.sim.schedule_at(
                now + job.gap_ns, self._start_iteration, job
            )
        else:
            self._finish_job(job)

    def _finish_job(self, job: Job) -> None:
        job.status = "done"
        job.finish_ns = self.fabric.now
        self._open_jobs -= 1
        if job.hosts is not None:
            for h in job.hosts:
                self.occupancy[h] = max(0, self.occupancy.get(h, 0) - 1)
        self.stats.record_job_done(job)

    # ------------------------------------------------------------------
    # Queue drain & snapshots
    # ------------------------------------------------------------------
    def _on_pool_release(self) -> None:
        """Pool resources freed: retry queued iterations, fair order.

        Re-entrancy guard: issuing a dequeued job can release/acquire
        resources itself; one drain loop at a time."""
        if self._draining or not len(self.queue):
            return
        self._draining = True
        try:
            while True:
                entry = self.queue.pop_admittable(
                    self._admittable, self.fabric.now
                )
                if entry is None:
                    break
                self._issue(entry.job, queued_ns=entry.enqueued_ns)
        finally:
            self._draining = False
        self.queue.sample_depth()

    def _tick(self) -> None:
        self.queue.sample_depth()
        self.stats.snapshot(
            self.fabric.now,
            queue=self.queue,
            cache_info=self.cache_info(),
            extra={"in_flight": self.fabric.in_flight},
        )
        # Stream incremental provenance on each snapshot tick, so a
        # long service run's DB is queryable while it is still going.
        if self.fabric.provenance is not None:
            self.fabric.provenance.tick()
        # Reschedule only while progress is still possible; a tick that
        # kept rescheduling past the last completion would hold the
        # event loop open forever.
        if self._arrivals_remaining > 0 or self.fabric.in_flight > 0:
            self.fabric.sim.schedule_at(
                self.fabric.now + self.snapshot_interval_ns, self._tick
            )
