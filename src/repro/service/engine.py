"""The long-running fabric service: arrivals in, SLO reports out.

:class:`FabricService` closes the loop the one-shot benchmarks leave
open: it runs a :class:`~repro.comm.fabric.Fabric` *indefinitely* under
a workload source (Poisson arrivals or trace replay), placing each
arriving job onto topology regions, queueing it when the switch pools
are full, issuing its training iterations into the shared event loop,
and folding every completion into rolling SLO statistics.

The service adds **no second clock**: arrivals, queue retries, snapshot
ticks, and iteration gaps are all events on the fabric's one
discrete-event simulator, interleaved with the collectives' own chunk
events (and any armed fault events — chaos composes for free).

Lifecycle of one job::

    arrival ──place (JobScheduler)──► plan ──admission probe──┐
        ┌─────────────────────◄── pool release retry ──────── │ full
        ▼                                                     ▼
      issue iteration ──done──► gap ──► next iteration   AdmissionQueue
        │ (last one)
        ▼
      job done ──► SLOStats

A single job spanning the whole fabric takes none of the service-only
paths (no placement param, no queueing) — its request is byte-for-byte
the one ``Communicator.allreduce`` would build, which is what keeps
service mode bitwise/makespan-identical in the single-tenant limit
(the parity test pins this).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.comm.fabric import Fabric
from repro.core.manager import AdmissionError
from repro.service.queueing import AdmissionQueue
from repro.service.scheduler import build_scheduler
from repro.service.slo import SLOStats
from repro.service.workload import Job

#: Admission rejections worth *waiting out* (resources that free up as
#: running collectives finish).  ``switch_down`` is not one: the fabric
#: replans or falls back immediately rather than waiting for repair.
QUEUEABLE_RESOURCES = frozenset({"slots", "memory", "quota"})

#: Version of the service-checkpoint file schema.  Bump on changes.
CHECKPOINT_SCHEMA_VERSION = 1

#: The mutable :class:`~repro.service.workload.Job` fields a checkpoint
#: carries (everything else is re-derived from the workload source).
_JOB_STATE_FIELDS = (
    "hosts", "iterations_done", "status", "queue_waits_ns",
    "iteration_times_ns", "first_issue_ns", "finish_ns",
)


class FabricService:
    """Runs a fabric under a workload until every job completes.

    Parameters
    ----------
    fabric:
        The shared substrate (bring your own: arbitration, pools,
        quotas, armed faults all apply to the service's traffic).
    workload:
        A :class:`~repro.service.workload.PoissonWorkload` or
        :class:`~repro.service.workload.TraceWorkload` (anything with
        ``.jobs()`` and ``.classes``).
    scheduler:
        Placement policy: ``"pack"``, ``"spread"``, or a prebuilt
        :class:`~repro.service.scheduler.JobScheduler`.
    queue_policy:
        Admission-queue discipline, ``"wfq"`` (default) or ``"fifo"``.
    snapshot_interval_ns:
        Period of rolling SLO snapshots (None = final report only).
    checkpoint_path:
        When set, every *quiescent* snapshot tick (no collective in
        flight) atomically rewrites this file with a crash-consistent
        checkpoint; ``run(resume=True)`` restarts a killed run from it
        and reproduces the uninterrupted run's remaining SLO snapshots
        (requires ``snapshot_interval_ns``).
    """

    def __init__(
        self,
        fabric: Fabric,
        workload,
        *,
        scheduler="pack",
        queue_policy: str = "wfq",
        snapshot_interval_ns: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self.fabric = fabric
        self.workload = workload
        self.scheduler = build_scheduler(scheduler)
        self.queue = AdmissionQueue(queue_policy)
        self.snapshot_interval_ns = snapshot_interval_ns
        if checkpoint_path is not None and not snapshot_interval_ns:
            raise ValueError(
                "checkpointing piggybacks on snapshot ticks; set "
                "snapshot_interval_ns"
            )
        self.checkpoint_path = checkpoint_path
        self.checkpoints_written = 0
        #: job_id -> absolute fire time of a pending inter-iteration
        #: gap timer (the only service-owned events besides arrivals
        #: and ticks — a checkpoint must re-arm them).
        self._gap_timers: dict[int, float] = {}
        self._jobs_by_id: dict[int, Job] = {}
        self.stats = SLOStats(
            {name: cls.weight for name, cls in workload.classes.items()}
        )
        #: host -> number of active jobs spanning it (placement signal).
        self.occupancy: dict = {}
        self._comms = {
            name: fabric.communicator(name=f"svc/{name}", weight=cls.weight)
            for name, cls in sorted(workload.classes.items())
        }
        self._open_jobs = 0
        self._arrivals_remaining = 0
        #: Iterations issued but not yet settled.  ``fabric.in_flight``
        #: cannot stand in for this: closed-form plans execute
        #: atomically at issue time (the completion callback fires via
        #: a *scheduled* event), so the fabric's pending set is empty
        #: while a modeled collective is still occupying wire time.
        self._inflight_iterations = 0
        self._draining = False
        fabric.on_pool_release(self._on_pool_release)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(
        self, slo_out: Optional[str] = None, *, resume: bool = False
    ) -> dict:
        """Replay the workload to completion; returns the SLO report.

        Jobs that can never be admitted (demand exceeding the total
        pool) are reported under ``starved_jobs`` instead of hanging
        the loop — the CI smoke gate fails on any.

        With ``resume=True`` and an existing :attr:`checkpoint_path`
        file, the run restarts from the last checkpoint instead of the
        beginning (a missing file degrades to a fresh run, so the same
        command line works before and after a crash).
        """
        jobs = self.workload.jobs()
        self._jobs_by_id = {job.job_id: job for job in jobs}
        sim = self.fabric.sim
        state = None
        if resume:
            if self.checkpoint_path is None:
                raise ValueError("resume=True needs a checkpoint_path")
            if os.path.exists(self.checkpoint_path):
                with open(self.checkpoint_path) as fh:
                    state = json.load(fh)
                version = state.get("schema_version")
                if version != CHECKPOINT_SCHEMA_VERSION:
                    raise ValueError(
                        f"checkpoint schema_version {version!r} "
                        f"unsupported; this engine speaks version "
                        f"{CHECKPOINT_SCHEMA_VERSION}"
                    )
        if state is None:
            self._arrivals_remaining = len(jobs)
            for job in jobs:
                sim.schedule_at(job.arrival_ns, self._on_arrival, job)
            if self.snapshot_interval_ns:
                sim.schedule_at(self.snapshot_interval_ns, self._tick)
        else:
            self._restore(state)
        self.fabric.run()
        return self._final_report(slo_out)

    # ------------------------------------------------------------------
    # Crash-consistent checkpoints
    # ------------------------------------------------------------------
    def _write_checkpoint(self) -> None:
        """Atomically rewrite the checkpoint file (tmp + rename).

        Called only at quiescent ticks (``in_flight == 0``), where the
        service's entire future is: undelivered arrivals (re-derived
        from the workload), pending gap timers, queued iterations, and
        the accumulated stats — all of it JSON-serializable.
        """
        tr = self.fabric.net.traffic
        state = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "now_ns": self.fabric.now,
            "workload_seed": getattr(self.workload, "seed", None),
            "open_jobs": self._open_jobs,
            "arrivals_remaining": self._arrivals_remaining,
            "occupancy": dict(self.occupancy),
            "gap_timers": {
                str(job_id): t for job_id, t in self._gap_timers.items()
            },
            "jobs": {
                str(job.job_id): {
                    field: (
                        list(getattr(job, field))
                        if isinstance(getattr(job, field), (list, tuple))
                        else getattr(job, field)
                    )
                    for field in _JOB_STATE_FIELDS
                }
                for job in self._jobs_by_id.values()
                if job.status != "pending"
            },
            "queue": self.queue.to_state(),
            "stats": self.stats.to_state(),
            "traffic": {
                "bytes_hops": tr.bytes_hops,
                "messages": tr.messages,
                "drops": tr.drops,
                "duplicates": tr.duplicates,
                "retransmits": tr.retransmits,
                "per_link": [
                    [a, b, v] for (a, b), v in tr.per_link.items()
                ],
                "link_drops": [
                    [a, b, v] for (a, b), v in tr.link_drops.items()
                ],
                "link_duplicates": [
                    [a, b, v] for (a, b), v in tr.link_duplicates.items()
                ],
            },
        }
        tmp = f"{self.checkpoint_path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(state, fh)
        os.replace(tmp, self.checkpoint_path)
        self.checkpoints_written += 1

    def _restore(self, state: dict) -> None:
        """Rebuild service + job state from a checkpoint and fast-
        forward the fabric clock to the checkpointed tick."""
        sim = self.fabric.sim
        t0 = float(state["now_ns"])
        sim.now = t0
        arrived: set[int] = set()
        for job_id_s, jstate in state["jobs"].items():
            job = self._jobs_by_id[int(job_id_s)]
            arrived.add(job.job_id)
            for field in _JOB_STATE_FIELDS:
                value = jstate[field]
                if field == "hosts" and value is not None:
                    value = tuple(value)
                elif field in ("queue_waits_ns", "iteration_times_ns"):
                    value = [float(x) for x in value]
                setattr(job, field, value)
        self._open_jobs = int(state["open_jobs"])
        self._arrivals_remaining = int(state["arrivals_remaining"])
        self.occupancy = {
            h: int(n) for h, n in state["occupancy"].items()
        }
        for job in self._jobs_by_id.values():
            if job.job_id not in arrived:
                sim.schedule_at(job.arrival_ns, self._on_arrival, job)
        for job_id_s, t in state["gap_timers"].items():
            job = self._jobs_by_id[int(job_id_s)]
            self._gap_timers[job.job_id] = float(t)
            sim.schedule_at(float(t), self._start_iteration, job)
        self.queue.from_state(
            state["queue"], lambda job_id: self._jobs_by_id[job_id]
        )
        self.stats.from_state(state["stats"])
        tr = self.fabric.net.traffic
        ts = state["traffic"]
        tr.bytes_hops = float(ts["bytes_hops"])
        tr.messages = int(ts["messages"])
        tr.drops = int(ts["drops"])
        tr.duplicates = int(ts["duplicates"])
        tr.retransmits = int(ts["retransmits"])
        tr.per_link.update(
            {(a, b): float(v) for a, b, v in ts["per_link"]}
        )
        tr.link_drops.update(
            {(a, b): int(v) for a, b, v in ts["link_drops"]}
        )
        tr.link_duplicates.update(
            {(a, b): int(v) for a, b, v in ts["link_duplicates"]}
        )
        if self.snapshot_interval_ns:
            sim.schedule_at(t0 + self.snapshot_interval_ns, self._tick)

    def _final_report(self, slo_out: Optional[str]) -> dict:
        starved = [
            {
                "job_id": q.job.job_id,
                "tenant_class": q.tenant_class,
                "waiting_since_ns": q.enqueued_ns,
                "reason": q.reason,
            }
            for q in self.queue.waiting()
        ]
        # Final provenance flush (energy needs the settled makespan).
        self.fabric.flush_provenance()
        extra = {
            "run_id": self.fabric.run_id,
            "placement": self.scheduler.name,
            "starved_jobs": starved,
            "utilization": self.fabric.manager.utilization(),
            "faults": self.fabric.fault_log(),
        }
        if self.fabric.provenance is not None:
            extra["provenance_db"] = self.fabric.provenance.store.path
        report = self.stats.report(
            self.fabric.now,
            queue=self.queue,
            cache_info=self.cache_info(),
            extra=extra,
        )
        if slo_out is not None:
            with open(slo_out, "w") as fh:
                json.dump(report, fh, indent=2, default=str)
        return report

    def cache_info(self) -> dict:
        """Plan-cache counters aggregated over every tenant class."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "currsize": 0}
        for comm in self._comms.values():
            info = comm.cache_info()
            for key in totals:
                totals[key] += getattr(info, key)
        return totals

    # ------------------------------------------------------------------
    # Job lifecycle (every handler runs inside the event loop)
    # ------------------------------------------------------------------
    def _on_arrival(self, job: Job) -> None:
        self.stats.record_arrival(job)
        self._open_jobs += 1
        self._arrivals_remaining -= 1
        n_hosts = job.n_hosts or self.fabric.topology.n_hosts
        if n_hosts < self.fabric.topology.n_hosts:
            job.hosts = self.scheduler.place(
                n_hosts,
                self.fabric.topology,
                self.occupancy,
                self.fabric.net.traffic.per_link,
            )
            for h in job.hosts:
                self.occupancy[h] = self.occupancy.get(h, 0) + 1
        job.status = "running"
        self._start_iteration(job)

    def _request_kwargs(self, job: Job) -> dict:
        kwargs = dict(
            algorithm=job.algorithm,
            dtype=job.dtype,
            sparse=job.sparse,
            density=job.density,
        )
        if job.hosts is not None:
            # Placement params only when actually placing: a
            # full-fabric job's request stays identical to a direct
            # Communicator.allreduce (single-tenant parity).
            kwargs["hosts"] = job.hosts
        return kwargs

    def _start_iteration(self, job: Job) -> None:
        """An iteration is ready: admit now or park in the queue."""
        self._gap_timers.pop(job.job_id, None)
        comm = self._comms[job.tenant_class]
        kwargs = self._request_kwargs(job)
        plan = comm.plan(nbytes=job.nbytes, **kwargs)
        rejection = self.fabric.would_admit(plan, tenant=comm.name)
        if (
            rejection is not None
            and getattr(rejection, "resource", None) in QUEUEABLE_RESOURCES
        ):
            job.status = "queued"
            cls = self.workload.classes[job.tenant_class]
            self.queue.push(
                job,
                tenant_class=job.tenant_class,
                weight=cls.weight,
                now=self.fabric.now,
                reason=rejection.resource,
            )
            self.queue.sample_depth()
            return
        self._issue(job, queued_ns=None)

    def _admittable(self, job: Job) -> bool:
        comm = self._comms[job.tenant_class]
        plan = comm.plan(nbytes=job.nbytes, **self._request_kwargs(job))
        return self.fabric.would_admit(plan, tenant=comm.name) is None

    def _issue(self, job: Job, queued_ns: Optional[float]) -> None:
        comm = self._comms[job.tenant_class]
        now = self.fabric.now
        if job.first_issue_ns is None:
            job.first_issue_ns = now
        if queued_ns is not None:
            job.queue_waits_ns.append(now - queued_ns)
        job.status = "running"
        ready_ns = queued_ns if queued_ns is not None else now
        try:
            future = comm.iallreduce(job.nbytes, **self._request_kwargs(job))
        except AdmissionError as exc:
            # The probe and the issue disagree (e.g. a fault landed in
            # between inside this same timestamp): park and retry.
            job.status = "queued"
            cls = self.workload.classes[job.tenant_class]
            self.queue.push(
                job,
                tenant_class=job.tenant_class,
                weight=cls.weight,
                now=now,
                reason=getattr(exc, "resource", "unknown"),
            )
            return
        self._inflight_iterations += 1
        future.add_done_callback(
            lambda fut: self._on_iteration_done(job, ready_ns, fut.result())
        )

    def _on_iteration_done(self, job: Job, ready_ns: float, result) -> None:
        self._inflight_iterations -= 1
        now = self.fabric.now
        duration = now - ready_ns           # queue wait + execution
        job.iteration_times_ns.append(duration)
        job.iterations_done += 1
        self.stats.record_iteration(
            job.tenant_class,
            duration,
            job.nbytes,
            fell_back=bool(result.extra.get("fell_back")),
            recoveries=len(result.extra.get("recoveries") or ()),
            # Per-flow reliability counters (present on fault-injection
            # runs via NetworkSimulator.traffic_extra): what the chaos
            # cost this class, surfaced in every SLO snapshot.
            drops=int(result.extra.get("drops") or 0),
            duplicates=int(result.extra.get("duplicates") or 0),
            retransmits=int(result.extra.get("retransmits") or 0),
        )
        if job.iterations_done < job.iterations:
            self._gap_timers[job.job_id] = now + job.gap_ns
            self.fabric.sim.schedule_at(
                now + job.gap_ns, self._start_iteration, job
            )
        else:
            self._finish_job(job)

    def _finish_job(self, job: Job) -> None:
        job.status = "done"
        job.finish_ns = self.fabric.now
        self._open_jobs -= 1
        if job.hosts is not None:
            for h in job.hosts:
                self.occupancy[h] = max(0, self.occupancy.get(h, 0) - 1)
        self.stats.record_job_done(job)

    # ------------------------------------------------------------------
    # Queue drain & snapshots
    # ------------------------------------------------------------------
    def _on_pool_release(self) -> None:
        """Pool resources freed: retry queued iterations, fair order.

        Re-entrancy guard: issuing a dequeued job can release/acquire
        resources itself; one drain loop at a time."""
        if self._draining or not len(self.queue):
            return
        self._draining = True
        try:
            while True:
                entry = self.queue.pop_admittable(
                    self._admittable, self.fabric.now
                )
                if entry is None:
                    break
                self._issue(entry.job, queued_ns=entry.enqueued_ns)
        finally:
            self._draining = False
        self.queue.sample_depth()

    def _tick(self) -> None:
        self.queue.sample_depth()
        self.stats.snapshot(
            self.fabric.now,
            queue=self.queue,
            cache_info=self.cache_info(),
            extra={"in_flight": self._inflight_iterations},
        )
        # Stream incremental provenance on each snapshot tick, so a
        # long service run's DB is queryable while it is still going.
        if self.fabric.provenance is not None:
            self.fabric.provenance.tick()
        # Quiescent tick: no iteration holds wire time, so every open
        # job is either queued or parked on a gap timer — the service
        # state is a closed JSON-serializable set.  Checkpoint it.
        if (
            self.checkpoint_path is not None
            and self._inflight_iterations == 0
            and self.fabric.in_flight == 0
        ):
            self._write_checkpoint()
        # Reschedule only while progress is still possible; a tick that
        # kept rescheduling past the last completion would hold the
        # event loop open forever.
        if self._arrivals_remaining > 0 or self._open_jobs > 0:
            self.fabric.sim.schedule_at(
                self.fabric.now + self.snapshot_interval_ns, self._tick
            )
