"""Unit constants and conversions.

The switch model is clocked at 1 GHz (paper Sec. 3), so one cycle is one
nanosecond.  Bandwidths in the paper are reported in Tbps (terabits per
second); memory in KiB/MiB.  These helpers make every conversion explicit
so no magic factors of 8 or 1024 hide in model code.
"""

from __future__ import annotations

#: Binary size units (bytes).
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Link/switch rate units (bits per second).
GBPS = 1e9
TBPS = 1e12

#: Switch clock (Hz).  One cycle == one nanosecond at 1 GHz.
CLOCK_HZ = 1e9


def bytes_per_cycle_to_tbps(bytes_per_cycle: float, clock_hz: float = CLOCK_HZ) -> float:
    """Convert a switch-internal rate (bytes/cycle) to Tbps.

    >>> round(bytes_per_cycle_to_tbps(512.0), 3)   # 512 B/cycle at 1 GHz
    4.096
    """
    return bytes_per_cycle * clock_hz * 8.0 / TBPS


def tbps_to_bytes_per_ns(tbps: float) -> float:
    """Convert Tbps to bytes per nanosecond (== bytes/cycle at 1 GHz)."""
    return tbps * TBPS / 8.0 / 1e9


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert Gbps to bytes per nanosecond."""
    return gbps * GBPS / 8.0 / 1e9


def bytes_to_kib(n: float) -> float:
    """Bytes -> KiB."""
    return n / KIB


def bytes_to_mib(n: float) -> float:
    """Bytes -> MiB."""
    return n / MIB


def bytes_to_gib(n: float) -> float:
    """Bytes -> GiB."""
    return n / GIB


_SIZE_SUFFIXES = {
    "B": 1,
    "KIB": KIB,
    "KB": 1000,
    "MIB": MIB,
    "MB": 1000 * 1000,
    "GIB": GIB,
    "GB": 1000 * 1000 * 1000,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size such as ``"512KiB"`` into bytes.

    Integers/floats pass through (rounded).  Parsing is case-insensitive
    and tolerates whitespace between the number and the suffix.

    >>> parse_size("1KiB"), parse_size("1 MiB"), parse_size(42)
    (1024, 1048576, 42)
    >>> parse_size(1.9), parse_size("1.9")
    (2, 2)
    """
    if isinstance(text, (int, float)):
        return int(round(text))
    s = text.strip().upper().replace(" ", "")
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            num = s[: -len(suffix)]
            return int(round(float(num) * _SIZE_SUFFIXES[suffix]))
    return int(round(float(s)))


_TIME_SUFFIXES = {
    "NS": 1.0,
    "US": 1e3,
    "MS": 1e6,
    "S": 1e9,
}


def parse_time_ns(text: str | int | float) -> float:
    """Parse a human-readable duration such as ``"50us"`` into ns.

    Integers/floats pass through as nanoseconds.  Suffixes: ns, us,
    ms, s (case-insensitive, whitespace tolerated).

    >>> parse_time_ns("50us"), parse_time_ns("1 ms"), parse_time_ns(250)
    (50000.0, 1000000.0, 250.0)
    """
    if isinstance(text, (int, float)):
        return float(text)
    s = text.strip().upper().replace(" ", "")
    for suffix in sorted(_TIME_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            return float(s[: -len(suffix)]) * _TIME_SUFFIXES[suffix]
    return float(s)


def format_size(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``524288 -> '512KiB'``.

    >>> format_size(512 * 1024)
    '512KiB'
    """
    for unit, div in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= div:
            value = n / div
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.2f}{unit}"
    return f"{int(n)}B"
