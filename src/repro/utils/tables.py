"""Plain-text table rendering for benchmark harness output.

Every figure runner prints its series the way the paper's plots read
(one row per x value, one column per series) so paper-vs-measured
comparison is a visual diff, without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table.

    >>> print(ascii_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def series_block(title: str, x_label: str, xs: Sequence[Any], series: dict[str, Sequence[Any]]) -> str:
    """Render named series against a shared x-axis (paper-figure style)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return ascii_table(headers, rows, title=title)
