"""Deterministic random-number-generation helpers.

Every stochastic component (exponential packet arrivals, sparse index
generation, synthetic gradients) takes an explicit seed or Generator so
that simulations are reproducible run-to-run — which matters doubly for
a paper whose F3 flexibility axis *is* reproducibility.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an existing Generator (returned unchanged), an integer seed,
    or ``None`` for OS entropy (discouraged outside exploratory use).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so child streams are statistically
    independent — one per simulated host, for example.
    """
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
