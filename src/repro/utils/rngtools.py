"""Deterministic random-number-generation helpers.

Every stochastic component (exponential packet arrivals, sparse index
generation, synthetic gradients) takes an explicit seed or Generator so
that simulations are reproducible run-to-run — which matters doubly for
a paper whose F3 flexibility axis *is* reproducibility.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an existing Generator (returned unchanged), an integer seed,
    or ``None`` for OS entropy (discouraged outside exploratory use).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stable_hash(*parts: object, salt: int = 0) -> int:
    """Process-stable non-negative hash of ``parts``.

    Python's builtin ``hash`` is salted per interpreter run for
    strings, which silently breaks cross-run reproducibility of
    anything keyed on it (ECMP path selection, for one).  A truncated
    blake2b over the repr of the parts is stable everywhere and — being
    non-linear, unlike a CRC — actually reshuffles the low bits when
    the salt changes, which is what makes distinct routing seeds pick
    distinct path assignments.
    """
    text = "|".join(repr(p) for p in parts) + f"|{salt}"
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFFFFFF


def ecmp_salt(seed: int | None = 0) -> int:
    """Derive a hash salt from a seed via the shared RNG machinery.

    Same seed -> same salt -> identical ECMP path picks run to run,
    which is the reproducibility contract the routing layer tests pin.
    """
    return int(seeded_rng(seed).integers(0, 2**31))


def child_rng(seed: int, *tag: object) -> np.random.Generator:
    """Split an independent child stream off ``seed``, keyed by ``tag``.

    Stream splitting for components that must never share randomness:
    the service engine draws arrival times, fault schedules, and payload
    fills from ``child_rng(seed, "arrivals", cls)``-style children so
    adding a consumer (or reordering draws) in one component can never
    perturb another — the classic shared-stream reproducibility bug.

    Children are derived via ``SeedSequence(entropy=seed,
    spawn_key=(stable_hash(*tag),))``: the key is the *process-stable*
    :func:`stable_hash` of the tag parts, so the same ``(seed, tag)``
    yields the bitwise-identical stream across interpreter runs,
    platforms, and ``PYTHONHASHSEED`` values.  Distinct tags give
    statistically independent streams (SeedSequence's spawn guarantee).
    """
    key = stable_hash(*tag)
    ss = np.random.SeedSequence(entropy=seed, spawn_key=(key,))
    return np.random.default_rng(ss)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so child streams are statistically
    independent — one per simulated host, for example.
    """
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
