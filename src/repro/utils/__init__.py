"""Shared utilities: unit conversions, seeded RNG helpers, ASCII tables.

These helpers keep unit handling explicit across the code base.  All
internal switch-model quantities are expressed in *cycles* (1 GHz clock,
so 1 cycle == 1 ns) and *bytes*; the network model uses *nanoseconds*
and *bytes*.  Conversions to the paper's presentation units (Tbps, MiB,
elements/s) happen only at the reporting boundary, through this module.
"""

from repro.utils.units import (
    KIB,
    MIB,
    GIB,
    GBPS,
    TBPS,
    bytes_per_cycle_to_tbps,
    tbps_to_bytes_per_ns,
    bytes_to_kib,
    bytes_to_mib,
    bytes_to_gib,
    parse_size,
    format_size,
)
from repro.utils.rngtools import seeded_rng, spawn_rngs
from repro.utils.tables import ascii_table, series_block

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "GBPS",
    "TBPS",
    "bytes_per_cycle_to_tbps",
    "tbps_to_bytes_per_ns",
    "bytes_to_kib",
    "bytes_to_mib",
    "bytes_to_gib",
    "parse_size",
    "format_size",
    "seeded_rng",
    "spawn_rngs",
    "ascii_table",
    "series_block",
]
