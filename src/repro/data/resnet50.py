"""Synthetic ResNet-50 gradient traces (paper Sec. 7.1 substitution).

The paper gathers the data exchanged during a real SparCML ResNet-50
training iteration on 64 nodes ("Each host works on a 100MiB vector of
floating point values").  We cannot re-run that training, so this
module generates the closest synthetic equivalent:

* the *true* ResNet-50 parameter tensor shapes (25.56M parameters,
  102.2 MiB of fp32 — the paper's "100MiB vector"), laid out layer by
  layer;
* per-layer gradient scales following the heavy-tailed distribution
  gradient norms exhibit across depth (earlier conv layers and BN
  parameters carry larger per-element magnitudes than the huge fc /
  late conv tensors);
* per-host noise so workers agree on *where* gradients are large
  (shared curvature) but differ in values — which is what makes top-k
  selections partially overlap across workers, the property that
  drives densification (Sec. 7) and hence Fig. 15's traffic numbers.

DESIGN.md documents why this preserves the relevant behaviour: Fig. 15
depends on data volume (matched exactly), density after bucket top-1
selection (matched exactly: 1/512), and cross-host index overlap
(controlled here via ``shared_fraction``, reported as a sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rngtools import seeded_rng

#: (name, shape) for every parameter tensor of ResNet-50 (He et al.,
#: CVPR'16), in forward order: conv1, 4 stages of bottleneck blocks
#: [3, 4, 6, 3] with their projection shortcuts, then the classifier.
#: BatchNorm weight+bias pairs follow each conv.  Totals 25,557,032
#: parameters == 102.2 MiB of fp32.
RESNET50_LAYER_SHAPES: list[tuple[str, tuple[int, ...]]] = []


def _conv(name, out_c, in_c, k):
    RESNET50_LAYER_SHAPES.append((name, (out_c, in_c, k, k)))
    RESNET50_LAYER_SHAPES.append((name + ".bn.weight", (out_c,)))
    RESNET50_LAYER_SHAPES.append((name + ".bn.bias", (out_c,)))


def _bottleneck(stage, block, in_c, mid_c, out_c, downsample):
    prefix = f"layer{stage}.{block}"
    _conv(f"{prefix}.conv1", mid_c, in_c, 1)
    _conv(f"{prefix}.conv2", mid_c, mid_c, 3)
    _conv(f"{prefix}.conv3", out_c, mid_c, 1)
    if downsample:
        _conv(f"{prefix}.downsample", out_c, in_c, 1)


def _build_resnet50():
    _conv("conv1", 64, 3, 7)
    cfg = [(1, 3, 64, 64, 256), (2, 4, 256, 128, 512),
           (3, 6, 512, 256, 1024), (4, 3, 1024, 512, 2048)]
    for stage, blocks, in_c, mid_c, out_c in cfg:
        for b in range(blocks):
            _bottleneck(stage, b, in_c if b == 0 else out_c, mid_c, out_c, b == 0)
    RESNET50_LAYER_SHAPES.append(("fc.weight", (1000, 2048)))
    RESNET50_LAYER_SHAPES.append(("fc.bias", (1000,)))


_build_resnet50()


def resnet50_parameter_count() -> int:
    """Total parameters across all tensors (25,557,032)."""
    return int(sum(int(np.prod(shape)) for _n, shape in RESNET50_LAYER_SHAPES))


@dataclass
class GradientWorkload:
    """Per-host flat gradient vectors plus layout metadata."""

    gradients: np.ndarray          # shape (n_hosts, n_params), float32
    layer_offsets: list[tuple[str, int, int]]   # (name, start, end)
    shared_fraction: float

    @property
    def n_hosts(self) -> int:
        return self.gradients.shape[0]

    @property
    def n_params(self) -> int:
        return self.gradients.shape[1]

    @property
    def bytes_per_host(self) -> int:
        return self.n_params * 4


def _layer_layout(n_params: int | None):
    offsets: list[tuple[str, int, int]] = []
    pos = 0
    for name, shape in RESNET50_LAYER_SHAPES:
        size = int(np.prod(shape))
        offsets.append((name, pos, pos + size))
        pos += size
    total = pos
    if n_params is not None:
        total = min(total, int(n_params))
        offsets = [(n, s, min(e, total)) for n, s, e in offsets if s < total]
    return offsets, total


def _layer_scales(offsets, total, scale, rng) -> np.ndarray:
    layer_scale = np.empty(total, dtype=np.float32)
    for _name, s, e in offsets:
        size = e - s
        layer_scale[s:e] = np.float32(
            scale * np.exp(rng.normal(0.0, 1.0)) / np.sqrt(max(size, 1)) * 1e3
        )
    return layer_scale


def iter_host_gradients(
    n_hosts: int = 64,
    seed: int = 0,
    shared_fraction: float = 0.7,
    scale: float = 1.0,
    n_params: int | None = None,
):
    """Yield ``(host_id, gradient_vector)`` one host at a time.

    Streaming variant of :func:`synthetic_gradients` for full-scale runs:
    64 hosts x 100 MiB would otherwise hold ~6.4 GB resident, while the
    Fig. 15 pipeline only needs one host's vector at a time (it keeps
    the sparsified indices and discards the dense data).
    """
    if not 0 <= shared_fraction <= 1:
        raise ValueError("shared_fraction must be in [0, 1]")
    rng = seeded_rng(seed)
    offsets, total = _layer_layout(n_params)
    layer_scale = _layer_scales(offsets, total, scale, rng)
    shared = rng.standard_normal(total).astype(np.float32) * layer_scale
    for h in range(n_hosts):
        noise = rng.standard_normal(total).astype(np.float32)
        noise *= layer_scale
        yield h, shared_fraction * shared + (1.0 - shared_fraction) * noise


def synthetic_gradients(
    n_hosts: int = 64,
    seed: int = 0,
    shared_fraction: float = 0.7,
    scale: float = 1.0,
    n_params: int | None = None,
) -> GradientWorkload:
    """Generate per-host ResNet-50-shaped gradient vectors.

    Model: grad_h = shared_fraction * G + (1 - shared_fraction) * N_h,
    where G is a common heavy-tailed component (shared curvature across
    data-parallel workers on i.i.d. minibatches) and N_h is per-host
    noise; each layer gets a log-normal magnitude scale.

    ``n_params`` truncates the model for fast tests; None uses the full
    25.56M parameters (~100 MiB per host — allocate accordingly).
    """
    offsets, _total = _layer_layout(n_params)
    rows = [
        vec
        for _h, vec in iter_host_gradients(
            n_hosts=n_hosts, seed=seed, shared_fraction=shared_fraction,
            scale=scale, n_params=n_params,
        )
    ]
    return GradientWorkload(
        gradients=np.stack(rows),
        layer_offsets=offsets,
        shared_fraction=shared_fraction,
    )
