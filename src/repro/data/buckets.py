"""Bucket top-1 sparsification (the Fig. 15 SparCML configuration).

"For sparse allreduces, the data is split in buckets of 512 values, and
one single value is sent for each bucket (~0.2% density)."

Top-1 selection keeps the largest-magnitude element of each bucket.
Because workers share curvature (see :mod:`repro.data.resnet50`), their
selected positions partially coincide — :func:`bucket_union_counts`
measures exactly how much, which is the input the network-level sparse
collectives need to size their per-level messages.
"""

from __future__ import annotations

import numpy as np


def bucket_top1_sparsify(
    vector: np.ndarray, bucket_span: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """Keep the max-|value| element of each bucket.

    Returns global ``(indices, values)``, one entry per (non-empty)
    bucket.  The tail bucket may be shorter than ``bucket_span``.
    """
    if bucket_span < 1:
        raise ValueError("bucket_span must be >= 1")
    n = len(vector)
    n_full = n // bucket_span
    indices = []
    values = []
    if n_full:
        head = vector[: n_full * bucket_span].reshape(n_full, bucket_span)
        arg = np.abs(head).argmax(axis=1)
        rows = np.arange(n_full)
        indices.append(rows * bucket_span + arg)
        values.append(head[rows, arg])
    tail = vector[n_full * bucket_span :]
    if len(tail):
        a = int(np.abs(tail).argmax())
        indices.append(np.array([n_full * bucket_span + a]))
        values.append(np.array([tail[a]]))
    idx = np.concatenate(indices).astype(np.int64)
    return idx, np.concatenate(values).astype(vector.dtype)


def bucket_union_counts(
    per_host_indices: list[np.ndarray],
    group_sizes: list[int],
) -> list[float]:
    """Mean distinct-index count when grouping hosts ``group_sizes`` at
    a time (e.g. [1, 8, 64] for host / leaf / root levels).

    Groups are consecutive host ranges, mirroring how racks partition
    hosts on the fat tree.  Returns mean union size per group for each
    level, in the same units as the index arrays (absolute positions).
    """
    n_hosts = len(per_host_indices)
    out: list[float] = []
    for g in group_sizes:
        if g < 1 or n_hosts % g != 0:
            raise ValueError(f"group size {g} must divide host count {n_hosts}")
        unions = []
        for start in range(0, n_hosts, g):
            u = np.unique(np.concatenate(per_host_indices[start : start + g]))
            unions.append(len(u))
        out.append(float(np.mean(unions)))
    return out
