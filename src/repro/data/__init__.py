"""Workload generation: dense vectors, sparse vectors, and synthetic
ResNet-50 gradients with bucket sparsification (the Fig. 15 workload).
"""

from repro.data.resnet50 import (
    RESNET50_LAYER_SHAPES,
    resnet50_parameter_count,
    synthetic_gradients,
    GradientWorkload,
)
from repro.data.buckets import bucket_top1_sparsify, bucket_union_counts

__all__ = [
    "RESNET50_LAYER_SHAPES",
    "resnet50_parameter_count",
    "synthetic_gradients",
    "GradientWorkload",
    "bucket_top1_sparsify",
    "bucket_union_counts",
]
