"""Provenance + energy observability subsystem.

One sqlite database per session records who ran what (git SHA, seed,
engine config, topology fingerprint), what it cost (per-switch HPU and
memory counters, per-link traffic and reliability counters), and the
derived energy estimate — queryable and diffable after every process
has exited via ``flare-repro prov list|show|diff``.

Layering:

* :mod:`~repro.provenance.identity` — run ids and git/timestamp/seed
  identity blocks (also stamped into ``--perf-json`` and timelines).
* :mod:`~repro.provenance.store` — the versioned sqlite schema.
* :mod:`~repro.provenance.collect` — canonical counter families and
  the collectors that read switches and network simulators.
* :mod:`~repro.provenance.energy` — the energy model over counters.
* :mod:`~repro.provenance.recorder` — glue onto a live fabric (per
  settled collective accumulation, service-tick streaming, quiescence
  flush).
* :mod:`~repro.provenance.cli` — the ``prov`` subcommand.
"""

from repro.provenance.collect import (
    LINK_COUNTER_FAMILIES,
    SWITCH_COUNTER_FAMILIES,
    collect_links,
    collect_switch,
    link_rows_to_table,
    tenant_wire_bytes,
)
from repro.provenance.cli import diff_runs
from repro.provenance.energy import ENERGY_COMPONENTS, EnergyModel, energy_rows
from repro.provenance.identity import (
    git_state,
    new_run_id,
    run_identity,
    utc_now,
)
from repro.provenance.recorder import ProvenanceRecorder
from repro.provenance.store import (
    SCHEMA_VERSION,
    ProvenanceStore,
    create_v1_database,
)

__all__ = [
    "ENERGY_COMPONENTS",
    "EnergyModel",
    "LINK_COUNTER_FAMILIES",
    "ProvenanceRecorder",
    "ProvenanceStore",
    "SCHEMA_VERSION",
    "SWITCH_COUNTER_FAMILIES",
    "collect_links",
    "collect_switch",
    "create_v1_database",
    "diff_runs",
    "energy_rows",
    "git_state",
    "link_rows_to_table",
    "new_run_id",
    "run_identity",
    "tenant_wire_bytes",
    "utc_now",
]
