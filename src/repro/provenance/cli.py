"""``flare-repro prov`` — inspect and diff the provenance database.

Three subcommands over a :class:`~repro.provenance.store
.ProvenanceStore` file (``--db``, default ``provenance.db``):

* ``prov list`` — one line per recorded run (id, timestamp, git SHA,
  engine, algorithm, makespan, energy total).
* ``prov show <run>`` — full identity, per-switch and per-link counter
  tables, the energy breakdown, and any recorded degradation events
  (worker crashes recovered sequentially, recalled fault schedules)
  for one run; run ids accept unique prefixes.
* ``prov diff <run-a> <run-b>`` — compare two runs: makespan and
  energy deltas, counter-family deltas, and the hottest links by byte
  delta, with regressions (slower / more energy / more rejections)
  highlighted.  A run that degraded when its counterpart did not is
  flagged too: degraded runs produce bitwise-identical results, so the
  provenance record is the *only* place the difference shows.  With no
  run arguments it diffs the two most recent runs, which is what the
  CI smoke job does after benching twice.

All output is plain text on stdout; ``--json`` switches ``show`` and
``diff`` to a machine-readable document for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.provenance.store import ProvenanceStore

#: Counter families where an *increase* is a regression worth flagging
#: (as opposed to e.g. bytes, which simply track workload size).
_REGRESSION_COUNTERS = {
    "admission_rejections",
    "deferred_arrivals",
    "stalled_admissions",
    "dropped_packets",
    "alloc_failures",
    "drops",
    "duplicates",
    "contention_wait_cycles",
    "queue_depth_peak",
}


def _fmt(value: float) -> str:
    if value != value or abs(value) >= 1e15:
        return str(value)
    if value == int(value) and abs(value) < 1e12:
        return f"{int(value):,}"
    return f"{value:,.4g}"


def _fmt_delta(a: float, b: float) -> str:
    delta = b - a
    sign = "+" if delta >= 0 else ""
    pct = ""
    if a:
        pct = f" ({sign}{100.0 * delta / a:.1f}%)"
    return f"{_fmt(a)} -> {_fmt(b)}  [{sign}{_fmt(delta)}{pct}]"


def _sum_family(table: dict) -> dict:
    """Collapse ``{entity: {counter: value}}`` to family totals."""
    out: dict[str, float] = {}
    for counters in table.values():
        for name, value in counters.items():
            out[name] = out.get(name, 0.0) + value
    return out


def _resolve(store: ProvenanceStore, run_id: str) -> dict:
    run = store.run(run_id)
    if run is None:
        raise SystemExit(f"prov: no run matching {run_id!r} in {store.path}")
    return run


def _run_line(store: ProvenanceStore, run: dict) -> str:
    energy = store.energy(run["run_id"]).get("run", {})
    sha = (run.get("git_sha") or "-")[:9]
    if run.get("git_dirty"):
        sha += "*"
    makespan = run.get("makespan_ns")
    total = energy.get("total_j")
    return (
        f"{run['run_id']}  {run.get('created_utc') or '-':20s} "
        f"{sha:10s} w={run.get('workers') or 1}"
        f"/{run.get('arbitration') or '-'} "
        f"{(run.get('algorithm') or '-'):24.24s} "
        f"makespan={_fmt(makespan) if makespan is not None else '-':>14s}ns "
        f"energy={f'{total:.3f}J' if total is not None else '-'}"
        + (f"  [{run['label']}]" if run.get("label") else "")
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_list(store: ProvenanceStore, args) -> int:
    runs = store.runs()
    if not runs:
        print(f"prov: no runs recorded in {store.path}")
        return 0
    for run in runs:
        print(_run_line(store, run))
    return 0


def _show_doc(store: ProvenanceStore, run: dict) -> dict:
    run_id = run["run_id"]
    return {
        "run": {k: v for k, v in run.items() if k != "config_json"},
        "switch_counters": store.switch_counters(run_id),
        "link_counters": {
            f"{src}->{dst}": counters
            for (src, dst), counters in store.link_counters(run_id).items()
        },
        "energy": store.energy(run_id),
        "degradations": store.degradations(run_id),
    }


def cmd_show(store: ProvenanceStore, args) -> int:
    run = _resolve(store, args.run)
    doc = _show_doc(store, run)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True, default=str))
        return 0
    print(_run_line(store, run))
    info = doc["run"]
    for key in ("seed", "routing", "topology_family", "n_hosts", "topology"):
        if info.get(key) is not None:
            print(f"  {key}: {info[key]}")
    for title, table in (
        ("switch counters", doc["switch_counters"]),
        ("link counters", doc["link_counters"]),
    ):
        if not table:
            continue
        print(f"  {title}:")
        for entity in sorted(table):
            parts = ", ".join(
                f"{name}={_fmt(value)}"
                for name, value in sorted(table[entity].items())
            )
            print(f"    {entity}: {parts}")
    if doc["energy"]:
        print("  energy:")
        for scope in sorted(doc["energy"]):
            parts = ", ".join(
                f"{name}={value:.6g}J"
                for name, value in sorted(doc["energy"][scope].items())
            )
            print(f"    {scope}: {parts}")
    if doc["degradations"]:
        print("  degradations:")
        for event in doc["degradations"]:
            t = event.get("sim_time_ns")
            when = f"t={_fmt(t)}ns " if t is not None else ""
            reason = f": {event['reason']}" if event.get("reason") else ""
            print(f"    {when}{event['event']}{reason}")
    return 0


def diff_runs(store: ProvenanceStore, id_a: str, id_b: str) -> dict:
    """The machine-readable diff document ``prov diff`` renders.

    Structure: run identities, makespan/energy deltas, per-family
    switch and link counter deltas, hottest links by byte delta, and a
    ``regressions`` list naming every flagged increase.
    """
    run_a, run_b = _resolve(store, id_a), _resolve(store, id_b)
    a, b = run_a["run_id"], run_b["run_id"]
    regressions: list[str] = []

    makespan = {
        "a": run_a.get("makespan_ns"),
        "b": run_b.get("makespan_ns"),
    }
    if makespan["a"] and makespan["b"] and makespan["b"] > makespan["a"]:
        regressions.append(
            f"makespan_ns: {_fmt_delta(makespan['a'], makespan['b'])}"
        )

    energy_a = store.energy(a).get("run", {})
    energy_b = store.energy(b).get("run", {})
    energy = {
        name: {"a": energy_a.get(name, 0.0), "b": energy_b.get(name, 0.0)}
        for name in sorted(set(energy_a) | set(energy_b))
    }
    total = energy.get("total_j")
    if total and total["b"] > total["a"]:
        regressions.append(f"total_j: {_fmt_delta(total['a'], total['b'])}")

    def family_diff(table_a: dict, table_b: dict) -> dict:
        fam_a, fam_b = _sum_family(table_a), _sum_family(table_b)
        out = {}
        for name in sorted(set(fam_a) | set(fam_b)):
            va, vb = fam_a.get(name, 0.0), fam_b.get(name, 0.0)
            out[name] = {"a": va, "b": vb}
            if name in _REGRESSION_COUNTERS and vb > va:
                regressions.append(f"{name}: {_fmt_delta(va, vb)}")
        return out

    links_a, links_b = store.link_counters(a), store.link_counters(b)
    hot = sorted(
        (
            (
                abs(
                    links_b.get(key, {}).get("bytes", 0.0)
                    - links_a.get(key, {}).get("bytes", 0.0)
                ),
                key,
            )
            for key in set(links_a) | set(links_b)
        ),
        reverse=True,
    )
    hot_links = [
        {
            "link": f"{key[0]}->{key[1]}",
            "bytes_a": links_a.get(key, {}).get("bytes", 0.0),
            "bytes_b": links_b.get(key, {}).get("bytes", 0.0),
        }
        for delta, key in hot[:8]
        if delta
    ]

    degr_a = store.degradations(a)
    degr_b = store.degradations(b)
    for side, mine, theirs in (("a", degr_a, degr_b), ("b", degr_b, degr_a)):
        if mine and not theirs:
            events = ", ".join(sorted({e["event"] for e in mine}))
            regressions.append(
                f"silent degradation: run {side} recorded "
                f"{len(mine)} degradation event(s) ({events}) — results "
                "match a clean run, but it did not execute as configured"
            )

    return {
        "a": {k: run_a.get(k) for k in (
            "run_id", "created_utc", "git_sha", "git_dirty", "seed",
            "workers", "arbitration", "routing", "algorithm", "label",
        )},
        "b": {k: run_b.get(k) for k in (
            "run_id", "created_utc", "git_sha", "git_dirty", "seed",
            "workers", "arbitration", "routing", "algorithm", "label",
        )},
        "makespan_ns": makespan,
        "energy": energy,
        "switch_counters": family_diff(
            store.switch_counters(a), store.switch_counters(b)
        ),
        "link_counters": family_diff(links_a, links_b),
        "hot_links": hot_links,
        "degradations": {"a": degr_a, "b": degr_b},
        "regressions": regressions,
    }


def cmd_diff(store: ProvenanceStore, args) -> int:
    id_a, id_b = args.run_a, args.run_b
    if id_a is None or id_b is None:
        runs = store.runs()
        if len(runs) < 2:
            raise SystemExit(
                "prov diff: need two recorded runs (or pass two run ids)"
            )
        id_a = id_a or runs[-2]["run_id"]
        id_b = id_b or runs[-1]["run_id"]
    doc = diff_runs(store, id_a, id_b)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True, default=str))
        return 0

    print(f"diff {doc['a']['run_id']} (a) .. {doc['b']['run_id']} (b)")
    for side in ("a", "b"):
        info = doc[side]
        sha = (info.get("git_sha") or "-")[:9] + ("*" if info.get("git_dirty") else "")
        print(
            f"  {side}: {info['run_id']}  {info.get('created_utc') or '-'}"
            f"  {sha}  w={info.get('workers') or 1}/{info.get('arbitration') or '-'}"
            f"  {info.get('algorithm') or '-'}"
            + (f"  [{info['label']}]" if info.get("label") else "")
        )
    ms = doc["makespan_ns"]
    if ms["a"] is not None and ms["b"] is not None:
        print(f"  makespan_ns: {_fmt_delta(ms['a'], ms['b'])}")
    if doc["energy"]:
        print("  energy:")
        for name, pair in doc["energy"].items():
            print(f"    {name}: {_fmt_delta(pair['a'], pair['b'])}")
    for title in ("switch_counters", "link_counters"):
        table = doc[title]
        changed = {
            name: pair for name, pair in table.items()
            if pair["a"] != pair["b"]
        }
        if not changed:
            continue
        print(f"  {title.replace('_', ' ')} (changed families):")
        for name, pair in changed.items():
            print(f"    {name}: {_fmt_delta(pair['a'], pair['b'])}")
    if doc["hot_links"]:
        print("  hottest links by byte delta:")
        for entry in doc["hot_links"]:
            print(
                f"    {entry['link']}: "
                f"{_fmt_delta(entry['bytes_a'], entry['bytes_b'])}"
            )
    for side in ("a", "b"):
        events = doc["degradations"][side]
        if events:
            print(f"  degradations ({side}):")
            for event in events:
                reason = f": {event['reason']}" if event.get("reason") else ""
                print(f"    {event['event']}{reason}")
    if doc["regressions"]:
        print("  REGRESSIONS:")
        for line in doc["regressions"]:
            print(f"    !! {line}")
    else:
        print("  no regressions flagged")
    return 0


# ----------------------------------------------------------------------
def add_prov_parser(subparsers) -> None:
    """Mount ``prov list|show|diff`` under an existing subparser set."""
    prov = subparsers.add_parser(
        "prov", help="inspect/diff the provenance database"
    )
    prov_sub = prov.add_subparsers(dest="prov_cmd", required=True)

    p_list = prov_sub.add_parser("list", help="list recorded runs")
    p_show = prov_sub.add_parser("show", help="show one run in full")
    p_show.add_argument("run", help="run id (unique prefix ok)")
    p_diff = prov_sub.add_parser("diff", help="diff two runs")
    p_diff.add_argument("run_a", nargs="?", default=None,
                        help="first run id (default: second-latest)")
    p_diff.add_argument("run_b", nargs="?", default=None,
                        help="second run id (default: latest)")
    for p in (p_list, p_show, p_diff):
        p.add_argument("--db", default="provenance.db",
                       help="provenance database path (default: %(default)s)")
    for p in (p_show, p_diff):
        p.add_argument("--json", action="store_true",
                       help="emit a machine-readable JSON document")


def run_prov(args) -> int:
    """Dispatch a parsed ``prov`` namespace (see :func:`add_prov_parser`)."""
    with ProvenanceStore(args.db) as store:
        if args.prov_cmd == "list":
            return cmd_list(store, args)
        if args.prov_cmd == "show":
            return cmd_show(store, args)
        return cmd_diff(store, args)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="flare-repro-prov")
    sub = parser.add_subparsers(dest="cmd", required=True)
    add_prov_parser(sub)
    return run_prov(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
