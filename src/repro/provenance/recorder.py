"""Per-run provenance recording glued onto a live fabric.

A :class:`ProvenanceRecorder` owns the run's identity and accumulates
what the fabric layer cannot read back later: per-switch counters are
snapshotted from each settled collective's result (the simulated switch
object is per-execution and gone afterwards), while link counters are
read live from the network simulator at every flush.

Two flush cadences:

* :meth:`tick` — incremental upsert of the run row + current counters;
  :class:`~repro.service.engine.FabricService` calls it on every SLO
  snapshot tick so a long service run can be watched live (``prov
  show`` against the DB while the service is still running).
* :meth:`flush` — the quiescence flush: final makespan, final counter
  tables, and the energy rows (energy integrates static power over the
  makespan, so it is only meaningful once the run has settled).

Writes are idempotent per run id, so tick-then-flush never duplicates.
"""

from __future__ import annotations

from typing import Optional

from repro.provenance.collect import (
    collect_links,
    tenant_wire_bytes,
)
from repro.provenance.energy import EnergyModel, energy_rows
from repro.provenance.identity import run_identity
from repro.provenance.store import ProvenanceStore


class ProvenanceRecorder:
    """Records one fabric run into a :class:`ProvenanceStore`.

    ``store`` may be a path (the recorder opens and owns it) or an
    already-open store shared across runs in one session.
    """

    def __init__(
        self,
        store: "ProvenanceStore | str",
        fabric,
        *,
        run_id: Optional[str] = None,
        label: Optional[str] = None,
        seed: Optional[int] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        if isinstance(store, ProvenanceStore):
            self.store = store
            self._owns_store = False
        else:
            self.store = ProvenanceStore(store)
            self._owns_store = True
        self.fabric = fabric
        self.energy_model = energy_model or EnergyModel()
        self.label = label
        self.identity = run_identity(
            seed=fabric.routing_seed if seed is None else seed,
            engine={
                "workers": fabric.workers,
                "arbitration": fabric.net.arbitration,
                "routing": fabric.net.router.name,
            },
            run_id=run_id,
        )
        self.run_id = self.identity["run_id"]
        #: switch name -> accumulated counter dict (peaks max-merged,
        #: monotone counters summed across the run's collectives).
        self._switch_counters: dict[str, dict] = {}
        self.flushed = False

    # ------------------------------------------------------------------
    # Accumulation (driven by the fabric as collectives settle)
    # ------------------------------------------------------------------
    def add_switch_counters(self, switch: str, counters: dict) -> None:
        """Fold one collective's switch snapshot into the run totals.

        Peak gauges (``*_peak_bytes``) max-merge — each collective ran
        on its own simulated switch instance, so the run-level
        high-water mark is the worst single collective; monotone
        counters sum.
        """
        acc = self._switch_counters.setdefault(switch, {})
        for name, value in counters.items():
            if name.endswith("_peak_bytes"):
                # ``not in`` rather than a > 0 default: a zero peak is
                # still a recorded family (the CI gate checks presence).
                if name not in acc or value > acc[name]:
                    acc[name] = value
            else:
                acc[name] = acc.get(name, 0.0) + value

    # ------------------------------------------------------------------
    # Row assembly
    # ------------------------------------------------------------------
    def _run_row(self) -> dict:
        fabric = self.fabric
        topo = fabric.topology
        algorithms = sorted({
            e["algorithm"] for e in fabric.timeline() if e.get("algorithm")
        })
        ident = self.identity
        return {
            "run_id": self.run_id,
            "created_utc": ident["created_utc"],
            "git_sha": ident["git_sha"],
            "git_dirty": ident["git_dirty"],
            "seed": ident["seed"],
            "workers": fabric.workers,
            "arbitration": fabric.net.arbitration,
            "routing": fabric.net.router.name,
            "topology": repr(topo.fingerprint()),
            "topology_family": topo.family,
            "n_hosts": topo.n_hosts,
            "algorithm": ",".join(algorithms) or None,
            "makespan_ns": fabric.now,
            "label": self.label,
            "config_json": {
                "engine": ident["engine"],
                "tenants": list(fabric.tenants),
                "topology": {
                    k: str(v) for k, v in topo.describe().items()
                },
            },
        }

    def _switch_rows(self) -> list[tuple]:
        return [
            (switch, counter, value)
            for switch in sorted(self._switch_counters)
            for counter, value in sorted(self._switch_counters[switch].items())
        ]

    def _degradation_rows(self) -> list[tuple]:
        """Engine degradation events (worker crashes recovered
        sequentially, fault schedules recalled to the coordinator) as
        store rows.  Sequential engines expose no such list; a sharded
        run that degraded would otherwise leave identical results and
        no trace — this is the record that it happened."""
        import json as _json

        events = getattr(self.fabric.net, "degradations", None) or []
        rows = []
        for seq, event in enumerate(events):
            detail = {
                k: v for k, v in event.items()
                if k not in ("event", "reason", "sim_time_ns")
            }
            rows.append((
                seq,
                event.get("sim_time_ns"),
                event.get("event", "unknown"),
                event.get("reason"),
                _json.dumps(detail, sort_keys=True, default=str)
                if detail else None,
            ))
        return rows

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Incremental flush: upsert the run row and current counters
        (no energy — that waits for the makespan to settle)."""
        self.store.upsert_run(self._run_row())
        self.store.upsert_switch_counters(self.run_id, self._switch_rows())
        self.store.upsert_link_counters(
            self.run_id, collect_links(self.fabric.net)
        )
        self.store.upsert_degradations(self.run_id, self._degradation_rows())

    def flush(self) -> None:
        """Quiescence flush: final counters plus the energy estimate.
        Idempotent; re-flushing re-upserts the same rows."""
        fabric = self.fabric
        link_rows = collect_links(fabric.net)
        switch_table = {s: dict(c) for s, c in self._switch_counters.items()}
        link_table: dict[tuple, dict] = {}
        for src, dst, counter, value in link_rows:
            link_table.setdefault((src, dst), {})[counter] = value
        rows = energy_rows(
            self.energy_model,
            switch_table,
            link_table,
            fabric.now,
            len(fabric.topology.switches),
            tenant_wire_bytes(fabric),
        )
        self.store.upsert_run(self._run_row())
        self.store.upsert_switch_counters(self.run_id, self._switch_rows())
        self.store.upsert_link_counters(self.run_id, link_rows)
        self.store.upsert_energy(self.run_id, rows)
        self.store.upsert_degradations(self.run_id, self._degradation_rows())
        self.flushed = True

    def close(self) -> None:
        """Flush (if not yet flushed) and release an owned store."""
        if not self.flushed:
            self.flush()
        if self._owns_store:
            self.store.close()
