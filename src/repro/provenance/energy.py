"""Energy model layered over the provenance counters.

Energy is derived, never measured: the simulator already accounts every
HPU cycle (:mod:`repro.pspin.costs` prices handler work in cycles at
the paper's 1 GHz clock) and every byte a link carried, so a per-run
energy estimate is a weighted sum over counters the provenance layer
records anyway.  Three components:

* **HPU active energy** — busy cycles x ``hpu_pj_per_cycle``.  Default
  10 pJ/cycle: the PsPIN cluster's RI5CY cores in 22 nm FD-SOI run
  near 1 GHz at tens of mW (Di Girolamo et al., "A RISC-V in-network
  accelerator for flexible high-performance low-power packet
  processing", ISCA'21 — the hardware the paper's Sec. 3 switch model
  is built on); 30 mW at 1 GHz ≙ 30 pJ/cycle for a whole cluster
  sharing L1/DMA, of which we attribute ~a third to the active core.
* **Link transfer energy** — bytes carried x ``link_pj_per_byte``.
  Default 40 pJ/byte (= 5 pJ/bit): the commonly cited electrical
  SerDes + switch-traversal cost per bit for 100 Gb/s-class datacenter
  links (Abts et al., "Energy proportional datacenter networks",
  ISCA'10 order of magnitude, refreshed by modern 56G SerDes surveys).
* **Switch static energy** — ``switch_static_watts`` x makespan x
  switch count.  Default 25 W: the idle floor of a ToR-class ASIC plus
  the PsPIN unit's ~6 W envelope (ISCA'21, Table 5 scale).

All three constants are deliberate *model defaults*, overridable per
:class:`EnergyModel` instance; README "Observability & provenance"
documents them next to their sources.  Per-tenant energy attributes the
link component by each tenant's recorded wire bytes (HPU and static
energy are fabric-shared and reported at run scope only).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Energy table rows are (scope, component, joules); these are the
#: component names every consumer (CLI diff, CI gate) can rely on.
ENERGY_COMPONENTS = ("hpu_active_j", "link_transfer_j", "switch_static_j", "total_j")


@dataclass(frozen=True)
class EnergyModel:
    """Per-op energy costs (see module docstring for sources)."""

    hpu_pj_per_cycle: float = 10.0
    link_pj_per_byte: float = 40.0
    switch_static_watts: float = 25.0

    # ------------------------------------------------------------------
    def hpu_energy_j(self, busy_cycles: float) -> float:
        """Active energy of ``busy_cycles`` of handler execution."""
        return busy_cycles * self.hpu_pj_per_cycle * 1e-12

    def link_energy_j(self, nbytes: float) -> float:
        """Transfer energy for ``nbytes`` carried over links."""
        return nbytes * self.link_pj_per_byte * 1e-12

    def static_energy_j(self, makespan_ns: float, n_switches: int) -> float:
        """Static switch power integrated over the run's makespan."""
        return self.switch_static_watts * (makespan_ns * 1e-9) * n_switches

    # ------------------------------------------------------------------
    def run_energy(
        self,
        switch_counters: dict,
        link_counters: dict,
        makespan_ns: float,
        n_switches: int,
    ) -> dict:
        """Run-scope energy components from provenance counter tables.

        ``switch_counters`` is ``{switch: {counter: value}}`` and
        ``link_counters`` ``{(src, dst): {counter: value}}`` — the
        shapes :class:`~repro.provenance.store.ProvenanceStore` reads
        back and :mod:`~repro.provenance.collect` produces.
        """
        busy_cycles = sum(
            c.get("hpu_busy_cycles", 0.0) for c in switch_counters.values()
        )
        nbytes = sum(c.get("bytes", 0.0) for c in link_counters.values())
        hpu = self.hpu_energy_j(busy_cycles)
        link = self.link_energy_j(nbytes)
        static = self.static_energy_j(makespan_ns, n_switches)
        return {
            "hpu_active_j": hpu,
            "link_transfer_j": link,
            "switch_static_j": static,
            "total_j": hpu + link + static,
        }

    def tenant_energy(self, wire_bytes: float) -> dict:
        """Tenant-scope energy: the link transfer attributable to one
        tenant's recorded wire bytes.  HPU and static energy are shared
        fabric costs reported at run scope."""
        link = self.link_energy_j(wire_bytes)
        return {"link_transfer_j": link, "total_j": link}


def energy_rows(
    model: EnergyModel,
    switch_counters: dict,
    link_counters: dict,
    makespan_ns: float,
    n_switches: int,
    tenant_wire_bytes: dict | None = None,
) -> list[tuple]:
    """Flatten run + per-tenant energy into store rows
    ``(scope, component, joules)``."""
    rows = [
        ("run", component, joules)
        for component, joules in model.run_energy(
            switch_counters, link_counters, makespan_ns, n_switches
        ).items()
    ]
    for tenant, wire in sorted((tenant_wire_bytes or {}).items()):
        scope = f"tenant:{tenant}"
        rows.extend(
            (scope, component, joules)
            for component, joules in model.tenant_energy(wire).items()
        )
    return rows
