"""Sqlite-backed provenance database: one file per session directory.

Modeled on SpiNNFrontEndCommon's ``interface/provenance`` pattern: a
single sqlite file accumulates one row per *run* plus long-format
counter tables, so a whole benchmarking session (or a long service run
streaming incremental rows) stays queryable after every process exits::

    with ProvenanceStore("provenance.db") as store:
        store.record_run(run_row, switch_rows, link_rows, energy_rows)
        ...
    # later, possibly from another process:
    flare-repro prov list --db provenance.db
    flare-repro prov diff run-ab12 run-cd34 --db provenance.db

Schema (version 3)
------------------
* ``meta(key, value)`` — schema version and bookkeeping.
* ``runs`` — one row per recorded run: identity (run id, git SHA,
  UTC timestamp, seed), engine config (workers, arbitration, routing),
  topology fingerprint, algorithm, makespan, and the full config JSON.
* ``switch_counters(run_id, switch, counter, value)`` — long format:
  HPU cycles, handler dispatches, L1/L2 high-water marks, admission
  rejections... one row per (switch, counter family).
* ``link_counters(run_id, src, dst, counter, value)`` — bytes, busy
  time, drops/duplicates, WFQ queue-depth peaks per directed link.
* ``energy(run_id, scope, component, joules)`` — the energy model's
  output per run (scope ``"run"``) and per tenant (``"tenant:<name>"``);
  added by the version 1 → 2 migration.
* ``degradations(run_id, seq, sim_time_ns, event, reason,
  detail_json)`` — engine degradation events (a sharded run losing a
  worker and recovering sequentially, a fault schedule recalled to the
  coordinator): results stay bitwise identical, so this table is the
  only record that a run did not execute the way it was configured to.
  Added by the version 2 → 3 migration.

Writes are idempotent upserts keyed on the run id, which is what lets
:class:`~repro.provenance.recorder.ProvenanceRecorder` stream the same
run's rows incrementally on every service-mode SLO tick.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterable, Optional

#: Current schema version.  Version 1 lacked the ``energy`` table,
#: version 2 the ``degradations`` table; :data:`_MIGRATIONS` upgrades
#: older files in place on open.
SCHEMA_VERSION = 3

_DDL_V1 = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT
);
CREATE TABLE IF NOT EXISTS runs (
    run_id          TEXT PRIMARY KEY,
    created_utc     TEXT,
    git_sha         TEXT,
    git_dirty       INTEGER,
    seed            INTEGER,
    workers         INTEGER,
    arbitration     TEXT,
    routing         TEXT,
    topology        TEXT,
    topology_family TEXT,
    n_hosts         INTEGER,
    algorithm       TEXT,
    makespan_ns     REAL,
    label           TEXT,
    config_json     TEXT
);
CREATE TABLE IF NOT EXISTS switch_counters (
    run_id  TEXT NOT NULL,
    switch  TEXT NOT NULL,
    counter TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (run_id, switch, counter)
);
CREATE TABLE IF NOT EXISTS link_counters (
    run_id  TEXT NOT NULL,
    src     TEXT NOT NULL,
    dst     TEXT NOT NULL,
    counter TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (run_id, src, dst, counter)
);
"""

_DDL_ENERGY = """
CREATE TABLE IF NOT EXISTS energy (
    run_id    TEXT NOT NULL,
    scope     TEXT NOT NULL,
    component TEXT NOT NULL,
    joules    REAL NOT NULL,
    PRIMARY KEY (run_id, scope, component)
);
"""

_DDL_DEGRADATIONS = """
CREATE TABLE IF NOT EXISTS degradations (
    run_id      TEXT NOT NULL,
    seq         INTEGER NOT NULL,
    sim_time_ns REAL,
    event       TEXT NOT NULL,
    reason      TEXT,
    detail_json TEXT,
    PRIMARY KEY (run_id, seq)
);
"""

#: Column order of the ``runs`` table (minus the primary key), used by
#: the upsert; values default to None when a run row omits them.
_RUN_COLUMNS = (
    "created_utc", "git_sha", "git_dirty", "seed", "workers",
    "arbitration", "routing", "topology", "topology_family", "n_hosts",
    "algorithm", "makespan_ns", "label", "config_json",
)


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """Version 1 predates the energy model: add its table."""
    conn.executescript(_DDL_ENERGY)


def _migrate_2_to_3(conn: sqlite3.Connection) -> None:
    """Version 2 predates degradation events: add their table."""
    conn.executescript(_DDL_DEGRADATIONS)


_MIGRATIONS = {1: _migrate_1_to_2, 2: _migrate_2_to_3}


class ProvenanceStore:
    """One sqlite provenance database (see module docstring).

    Opens (creating or migrating as needed) immediately; usable as a
    context manager.  All mutating calls commit before returning, so a
    crash between ticks never loses settled rows.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._init_schema()

    # ------------------------------------------------------------------
    # Schema & migration
    # ------------------------------------------------------------------
    def _init_schema(self) -> None:
        conn = self._conn
        conn.executescript(_DDL_V1)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            # Fresh database: write the full current schema.
            conn.executescript(_DDL_ENERGY)
            conn.executescript(_DDL_DEGRADATIONS)
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
            return
        version = int(row["value"])
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"provenance DB {self.path!r} has schema version {version}; "
                f"this build reads up to {SCHEMA_VERSION} — upgrade the code, "
                "not the database"
            )
        while version < SCHEMA_VERSION:
            _MIGRATIONS[version](conn)
            version += 1
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(version),),
            )
            conn.commit()

    @property
    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row["value"])

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def upsert_run(self, run_row: dict) -> None:
        """Insert or update one ``runs`` row (keyed on ``run_id``).

        Unknown keys land in ``config_json`` untouched only if the
        caller put them there; this method writes exactly the declared
        columns.
        """
        run_id = run_row["run_id"]
        row = dict(run_row)
        config = row.get("config_json")
        if isinstance(config, dict):
            row["config_json"] = json.dumps(config, sort_keys=True, default=str)
        if row.get("git_dirty") is not None:
            row["git_dirty"] = int(bool(row["git_dirty"]))
        columns = ("run_id", *_RUN_COLUMNS)
        self._conn.execute(
            f"INSERT OR REPLACE INTO runs ({', '.join(columns)}) "
            f"VALUES ({', '.join('?' * len(columns))})",
            (run_id, *(row.get(c) for c in _RUN_COLUMNS)),
        )
        self._conn.commit()

    def upsert_switch_counters(
        self, run_id: str, rows: Iterable[tuple]
    ) -> None:
        """``rows`` are ``(switch, counter, value)`` tuples."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO switch_counters "
            "(run_id, switch, counter, value) VALUES (?, ?, ?, ?)",
            [(run_id, s, c, float(v)) for s, c, v in rows],
        )
        self._conn.commit()

    def upsert_link_counters(self, run_id: str, rows: Iterable[tuple]) -> None:
        """``rows`` are ``(src, dst, counter, value)`` tuples."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO link_counters "
            "(run_id, src, dst, counter, value) VALUES (?, ?, ?, ?, ?)",
            [(run_id, a, b, c, float(v)) for a, b, c, v in rows],
        )
        self._conn.commit()

    def upsert_energy(self, run_id: str, rows: Iterable[tuple]) -> None:
        """``rows`` are ``(scope, component, joules)`` tuples."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO energy "
            "(run_id, scope, component, joules) VALUES (?, ?, ?, ?)",
            [(run_id, s, c, float(j)) for s, c, j in rows],
        )
        self._conn.commit()

    def upsert_degradations(self, run_id: str, rows: Iterable[tuple]) -> None:
        """``rows`` are ``(seq, sim_time_ns, event, reason,
        detail_json)`` tuples, idempotent per (run, seq)."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO degradations "
            "(run_id, seq, sim_time_ns, event, reason, detail_json) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id, int(seq),
                    None if t is None else float(t),
                    event, reason, detail,
                )
                for seq, t, event, reason, detail in rows
            ],
        )
        self._conn.commit()

    def record_run(
        self,
        run_row: dict,
        switch_rows: Iterable[tuple] = (),
        link_rows: Iterable[tuple] = (),
        energy_rows: Iterable[tuple] = (),
        degradation_rows: Iterable[tuple] = (),
    ) -> None:
        """Write one complete run (row + all counter families) at once."""
        self.upsert_run(run_row)
        run_id = run_row["run_id"]
        self.upsert_switch_counters(run_id, switch_rows)
        self.upsert_link_counters(run_id, link_rows)
        self.upsert_energy(run_id, energy_rows)
        self.upsert_degradations(run_id, degradation_rows)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def runs(self) -> list[dict]:
        """All recorded runs, oldest first."""
        rows = self._conn.execute(
            "SELECT * FROM runs ORDER BY created_utc, run_id"
        ).fetchall()
        return [self._run_dict(r) for r in rows]

    def run(self, run_id: str) -> Optional[dict]:
        """One run row (None when absent).  ``run_id`` may be a unique
        prefix — ``prov show run-ab`` works like git's short SHAs."""
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            matches = self._conn.execute(
                "SELECT * FROM runs WHERE run_id LIKE ?", (run_id + "%",)
            ).fetchall()
            if len(matches) == 1:
                row = matches[0]
            elif len(matches) > 1:
                raise ValueError(
                    f"run id prefix {run_id!r} is ambiguous: "
                    f"{[m['run_id'] for m in matches]}"
                )
        return self._run_dict(row) if row is not None else None

    @staticmethod
    def _run_dict(row: sqlite3.Row) -> dict:
        out = dict(row)
        if out.get("config_json"):
            try:
                out["config"] = json.loads(out["config_json"])
            except (TypeError, ValueError):
                out["config"] = None
        if out.get("git_dirty") is not None:
            out["git_dirty"] = bool(out["git_dirty"])
        return out

    def switch_counters(self, run_id: str) -> dict:
        """``{switch: {counter: value}}`` for one run."""
        out: dict[str, dict] = {}
        for row in self._conn.execute(
            "SELECT switch, counter, value FROM switch_counters "
            "WHERE run_id = ? ORDER BY switch, counter", (run_id,)
        ):
            out.setdefault(row["switch"], {})[row["counter"]] = row["value"]
        return out

    def link_counters(self, run_id: str) -> dict:
        """``{(src, dst): {counter: value}}`` for one run."""
        out: dict[tuple, dict] = {}
        for row in self._conn.execute(
            "SELECT src, dst, counter, value FROM link_counters "
            "WHERE run_id = ? ORDER BY src, dst, counter", (run_id,)
        ):
            out.setdefault((row["src"], row["dst"]), {})[row["counter"]] = (
                row["value"]
            )
        return out

    def energy(self, run_id: str) -> dict:
        """``{scope: {component: joules}}`` for one run."""
        out: dict[str, dict] = {}
        for row in self._conn.execute(
            "SELECT scope, component, joules FROM energy "
            "WHERE run_id = ? ORDER BY scope, component", (run_id,)
        ):
            out.setdefault(row["scope"], {})[row["component"]] = row["joules"]
        return out

    def degradations(self, run_id: str) -> list[dict]:
        """Recorded degradation events for one run, in order."""
        out = []
        for row in self._conn.execute(
            "SELECT seq, sim_time_ns, event, reason, detail_json "
            "FROM degradations WHERE run_id = ? ORDER BY seq", (run_id,)
        ):
            entry = {
                "seq": row["seq"],
                "sim_time_ns": row["sim_time_ns"],
                "event": row["event"],
                "reason": row["reason"],
            }
            if row["detail_json"]:
                try:
                    entry["detail"] = json.loads(row["detail_json"])
                except (TypeError, ValueError):
                    entry["detail"] = None
            out.append(entry)
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def create_v1_database(path: str) -> None:
    """Write an empty *version 1* database (no energy table).

    Exists for the schema-migration test and as executable
    documentation of what the migration upgrades from.
    """
    conn = sqlite3.connect(path)
    try:
        conn.executescript(_DDL_V1)
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', '1')"
        )
        conn.commit()
    finally:
        conn.close()
