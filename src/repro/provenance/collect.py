"""Canonical provenance counter families and their collectors.

One module owns the *names* and the *collection code* for every counter
the provenance database records, so the parity guarantees are testable
as dict equality:

* :func:`collect_switch` reads a :class:`~repro.pspin.switch.PsPINSwitch`
  after a run.  The packet-train fast path commits the same telemetry
  as the per-packet DES (``TrainRunner.commit``): integer-valued
  families are bitwise-identical whichever tier simulated the run, and
  the cycle accumulators (``busy_cycles``, ``hpu_busy_cycles``,
  ``contention_wait_cycles``) agree to float addition-order tolerance —
  the fast-path parity suite pins both.
* :func:`collect_links` reads a :class:`~repro.network.simulator
  .NetworkSimulator` (sequential or sharded) at quiescence.  The
  sharded engine merges worker-side link tables bitwise-identically to
  the sequential engine, so these rows are engine-independent too.

Counter families (not individual names) are what the CI smoke gate
checks for: a run missing a whole family means a collection path broke.
"""

from __future__ import annotations

#: Switch-side counter families, the keys :func:`collect_switch` emits.
SWITCH_COUNTER_FAMILIES = (
    "hpu_busy_cycles",
    "hpu_handlers_run",
    "handler_invocations",
    "busy_cycles",
    "contention_wait_cycles",
    "icache_fills",
    "bytes_in",
    "bytes_out",
    "packets_in",
    "packets_out",
    "l1_peak_bytes",
    "l2_packet_peak_bytes",
    "l2_handler_peak_bytes",
    "l2_program_peak_bytes",
    "working_memory_peak_bytes",
    "input_buffer_peak_bytes",
    "deferred_arrivals",
    "stalled_admissions",
    "dropped_packets",
    "alloc_failures",
    "admission_rejections",
)

#: Link-side counter families :func:`collect_links` can emit (the
#: reliability counters appear only on fault-injection runs).
LINK_COUNTER_FAMILIES = (
    "bytes",
    "messages",
    "busy_ns",
    "queue_depth_peak",
    "drops",
    "duplicates",
)


def collect_switch(switch) -> dict:
    """Snapshot one simulated switch's provenance counters.

    Pure reads — safe to call mid-run or after; values are plain floats
    so the dict round-trips sqlite and JSON unchanged.
    """
    tel = switch.telemetry
    mem = switch.memories
    clusters = switch.clusters
    hpus = [hpu for cl in clusters for hpu in cl.hpus]
    deferred = float(tel.deferred_arrivals.value)
    stalled = float(tel.stalled_admissions.value)
    dropped = float(tel.dropped_packets.value)
    alloc_failures = float(
        mem.l2_packet.alloc_failures
        + mem.l2_handler.alloc_failures
        + mem.l2_program.alloc_failures
        + sum(cl.l1.alloc_failures for cl in clusters)
    )
    return {
        "hpu_busy_cycles": float(sum(h.busy_cycles for h in hpus)),
        "hpu_handlers_run": float(sum(h.handlers_run for h in hpus)),
        "handler_invocations": float(tel.handler_invocations.value),
        "busy_cycles": float(tel.busy_cycles.value),
        "contention_wait_cycles": float(tel.contention_wait_cycles.value),
        "icache_fills": float(tel.icache_fills.value),
        "bytes_in": float(tel.bytes_in.value),
        "bytes_out": float(tel.bytes_out.value),
        "packets_in": float(tel.packets_in.value),
        "packets_out": float(tel.packets_out.value),
        "l1_peak_bytes": float(max(
            (cl.l1.peak_bytes for cl in clusters), default=0
        )),
        "l2_packet_peak_bytes": float(mem.l2_packet.peak_bytes),
        "l2_handler_peak_bytes": float(mem.l2_handler.peak_bytes),
        "l2_program_peak_bytes": float(mem.l2_program.peak_bytes),
        "working_memory_peak_bytes": float(tel.working_memory_bytes.peak),
        "input_buffer_peak_bytes": float(tel.input_buffer_bytes.peak),
        "deferred_arrivals": deferred,
        "stalled_admissions": stalled,
        "dropped_packets": dropped,
        "alloc_failures": alloc_failures,
        # The paper's reject-and-fall-back behaviors in one number:
        # arrivals the switch could not take on time, for any reason.
        "admission_rejections": deferred + stalled + dropped + alloc_failures,
    }


def collect_links(net) -> list[tuple]:
    """Per-link provenance rows ``(src, dst, counter, value)``.

    Reads the network simulator at quiescence: bytes/messages from the
    link objects (the sharded engine merges worker deltas into these
    bitwise-identically), busy time from each link's serialization
    occupancy, WFQ queue-depth peaks from the arbitration queues, and —
    on fault-injection runs — per-link drop/duplicate counts.  All-zero
    links are omitted to keep the database proportional to traffic, not
    to fabric size.
    """
    rows: list[tuple] = []
    peaks = net.queue_depth_peaks()
    traffic = net.traffic
    for link in net.topology.links():
        key = link.key
        counters = []
        if link.bytes_carried:
            counters.append(("bytes", float(link.bytes_carried)))
            counters.append(("messages", float(link.messages_carried)))
            counters.append(("busy_ns", float(link.busy_ns)))
        peak = peaks.get(key)
        if peak:
            counters.append(("queue_depth_peak", float(peak)))
        drops = traffic.link_drops.get(key)
        if drops:
            counters.append(("drops", float(drops)))
        dups = traffic.link_duplicates.get(key)
        if dups:
            counters.append(("duplicates", float(dups)))
        rows.extend((key[0], key[1], name, value) for name, value in counters)
    return rows


def link_rows_to_table(rows: list[tuple]) -> dict:
    """``(src, dst, counter, value)`` rows -> ``{(src, dst): {counter:
    value}}``, the shape the store reads back — lets the parity tests
    compare live collections against database round-trips directly."""
    out: dict[tuple, dict] = {}
    for src, dst, counter, value in rows:
        out.setdefault((src, dst), {})[counter] = value
    return out


def tenant_wire_bytes(fabric) -> dict:
    """Per-tenant wire bytes from the fabric's settled timeline (the
    energy model's per-tenant attribution basis)."""
    return {
        tenant: stats["wire_bytes"]
        for tenant, stats in fabric.tenant_stats().items()
        if tenant is not None and stats["wire_bytes"]
    }
