"""Run identity: who produced a measurement, and from what tree.

Every recorded run — a provenance-DB row, a ``--perf-json`` report, a
version-3 timeline envelope — carries the same identity block so a
number in an artifact can be traced back to the exact code state and
configuration that produced it:

* ``run_id`` — short unique id (sha1 over the identity fields plus a
  process-unique nonce); the provenance database's primary key.
* ``git_sha`` — ``git rev-parse HEAD`` of the working tree (None when
  not in a git checkout or git is unavailable), plus a ``git_dirty``
  flag so a measurement from an uncommitted tree is never mistaken for
  the commit's.
* ``created_utc`` — ISO-8601 UTC timestamp.
* ``seed`` / ``engine`` — the run's RNG seed and engine configuration
  (worker count, arbitration, routing, ...), whatever the caller used.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import time
from typing import Optional

#: Process-local nonce: two identities minted in the same second from
#: the same config still get distinct run ids.
_COUNTER = itertools.count()

_GIT_CACHE: "dict[str, object] | None" = None


def git_state(repo_dir: Optional[str] = None) -> dict:
    """``{"git_sha": ..., "git_dirty": ...}`` of the enclosing checkout.

    Both fields are None outside a git checkout (or when the git binary
    is missing) — identity degrades gracefully rather than failing the
    run.  The answer is cached per process: benches mint many
    identities and ``git`` is a subprocess.
    """
    global _GIT_CACHE
    if repo_dir is None and _GIT_CACHE is not None:
        return dict(_GIT_CACHE)
    cwd = repo_dir or os.getcwd()
    out = {"git_sha": None, "git_dirty": None}
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode == 0:
            out["git_sha"] = sha.stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=cwd, capture_output=True, text=True, timeout=10,
            )
            if status.returncode == 0:
                out["git_dirty"] = bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    if repo_dir is None:
        _GIT_CACHE = dict(out)
    return out


def utc_now() -> str:
    """ISO-8601 UTC timestamp (microsecond resolution — ``prov list``
    and the diff-latest-two default sort runs by this string, and two
    runs recorded back to back land within the same second)."""
    now = time.time()
    return time.strftime(
        "%Y-%m-%dT%H:%M:%S", time.gmtime(now)
    ) + f".{int((now % 1) * 1e6):06d}Z"


def new_run_id(*parts: object) -> str:
    """A short, unique run id (``run-`` + 12 hex chars).

    ``parts`` season the hash with caller context (seed, config); a
    process-local counter plus pid/clock guarantee uniqueness even for
    identical parts.
    """
    seed = "|".join((
        *(str(p) for p in parts),
        str(os.getpid()),
        repr(time.time()),
        str(next(_COUNTER)),
    ))
    return "run-" + hashlib.sha1(seed.encode()).hexdigest()[:12]


def run_identity(
    seed: Optional[int] = None,
    engine: Optional[dict] = None,
    run_id: Optional[str] = None,
    repo_dir: Optional[str] = None,
) -> dict:
    """The identity block stamped into every recorded artifact.

    ``engine`` is a JSON-serializable dict of whatever configuration
    shaped the run (workers, arbitration, routing, scale points...).
    """
    engine = dict(engine or {})
    git = git_state(repo_dir)
    if run_id is None:
        run_id = new_run_id(git["git_sha"], seed, json.dumps(engine, sort_keys=True, default=str))
    return {
        "run_id": run_id,
        "created_utc": utc_now(),
        "seed": seed,
        "engine": engine,
        **git,
    }
