"""Memory capacity and occupancy accounting.

Models the three memories the paper manages explicitly (Sec. 3-4):

* **L2 packet memory** (4 MiB): input buffers — packets occupy it from
  arrival until their handler completes (queueing time + service time).
* **L1 TCDM** (1 MiB per cluster): working memory — aggregation buffers
  live here for the lifetime of a block.
* **L2 handler memory** (4 MiB) and **L2 program memory** (32 KiB) are
  tracked for completeness (handler state / code images).

Occupancy is tracked as a time-weighted series so experiments can report
both the peak (what must fit) and the average (what Little's law
predicts) — Fig. 7's "Inp. Buff." and "Work. Mem." panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class MemoryRegion:
    """A byte-accounted memory region with peak/time-weighted tracking."""

    __slots__ = (
        "name",
        "capacity_bytes",
        "used_bytes",
        "peak_bytes",
        "_weighted_sum",
        "_last_time",
        "alloc_failures",
        "release_listener",
    )

    def __init__(self, name: str, capacity_bytes: int) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.peak_bytes = 0
        self._weighted_sum = 0.0   # integral of used_bytes over time
        self._last_time = 0.0
        self.alloc_failures = 0
        #: Optional ``f(release_time)`` hook fired after every release.
        #: The switch uses it to wake packets stalled on working-memory
        #: admission the moment (simulated time) memory frees, instead
        #: of polling on a retry quantum.
        self.release_listener = None

    def _advance(self, now: float) -> None:
        if now > self._last_time:
            self._weighted_sum += self.used_bytes * (now - self._last_time)
            self._last_time = now

    def allocate(self, nbytes: int, now: float) -> bool:
        """Reserve ``nbytes``; returns False (and counts a failure) if full.

        The paper's behaviour on exhaustion is network-specific ("the
        packet is dropped or congestion is notified", Sec. 3 fn. 2); the
        caller decides, we only account.
        """
        if nbytes < 0:
            raise ValueError("negative allocation")
        self._advance(now)
        if self.used_bytes + nbytes > self.capacity_bytes:
            self.alloc_failures += 1
            return False
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return True

    def release(self, nbytes: int, now: float) -> None:
        """Return ``nbytes`` to the region.

        ``now`` may lie in the simulated future (handlers book releases
        eagerly at their completion timestamps); the listener receives
        it unchanged so wakeups land at the *semantic* release time.
        """
        self._advance(now)
        if nbytes > self.used_bytes:
            raise ValueError(
                f"{self.name}: releasing {nbytes} B but only {self.used_bytes} B in use"
            )
        self.used_bytes -= nbytes
        if self.release_listener is not None:
            self.release_listener(now)

    def average_bytes(self, now: float) -> float:
        """Time-weighted average occupancy up to ``now``."""
        self._advance(now)
        if self._last_time == 0:
            return 0.0
        return self._weighted_sum / self._last_time

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes


@dataclass
class MemoryAccounting:
    """The PsPIN memory map (paper Sec. 3 / Fig. 2 defaults)."""

    l2_packet: MemoryRegion = field(
        default_factory=lambda: MemoryRegion("L2 packet", 4 * 1024 * 1024)
    )
    l2_handler: MemoryRegion = field(
        default_factory=lambda: MemoryRegion("L2 handler", 4 * 1024 * 1024)
    )
    l2_program: MemoryRegion = field(
        default_factory=lambda: MemoryRegion("L2 program", 32 * 1024)
    )

    @staticmethod
    def l1_tcdm() -> MemoryRegion:
        """A fresh per-cluster 1 MiB L1 scratchpad region."""
        return MemoryRegion("L1 TCDM", 1024 * 1024)
