"""Full PsPIN switch assembly and event loop glue.

The switch wires together the parser, the packet scheduler, the clusters
and the memories, and drives handler execution through the discrete-event
engine.  Aggregation *logic* (what a handler does with a packet and what
it costs) is supplied by handler objects from ``repro.core`` (dense) and
``repro.sparse`` — the switch only provides the substrate, mirroring how
sPIN separates the NIC/switch architecture from user handlers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.pspin.cluster import Cluster
from repro.pspin.costs import CostModel
from repro.pspin.engine import Simulator
from repro.pspin.memory import MemoryAccounting
from repro.pspin.packets import SwitchPacket
from repro.pspin.parser import PacketParser
from repro.pspin.scheduler import FCFSScheduler, HierarchicalFCFSScheduler
from repro.pspin.telemetry import Telemetry


@dataclass
class SwitchConfig:
    """Dimensions and policies of one PsPIN switch.

    Defaults follow the paper's target design point (Sec. 3): 64 clusters
    of 8 HPUs within a 180 mm^2 processing-unit area budget, 64 ports at
    100 Gbps.  The paper's RTL simulations use 4 clusters and scale
    linearly ("the clusters are organized in a shared-nothing
    configuration"); set ``n_clusters=4`` and use
    ``repro.core.allreduce.scale_bandwidth`` to do the same.
    """

    n_clusters: int = 64
    cores_per_cluster: int = 8
    n_ports: int = 64
    port_gbps: float = 100.0
    scheduler: str = "hierarchical"  # "hierarchical" | "fcfs"
    subset_size: Optional[int] = None  # S; defaults to cores_per_cluster
    cost_model: CostModel = field(default_factory=CostModel)
    l1_bytes: int = 1024 * 1024
    drop_on_full: bool = False
    #: Allow the packet-train fast path (:mod:`repro.pspin.train`) to
    #: handle uncontended bursts analytically.  Parity-pinned: disabling
    #: it (or ``REPRO_FASTPATH=0``) changes nothing but wall-clock time.
    fast_path: bool = True

    @property
    def n_cores(self) -> int:
        return self.n_clusters * self.cores_per_cluster

    @property
    def line_rate_bytes_per_cycle(self) -> float:
        """Aggregate ingress line rate in bytes/cycle at the 1 GHz clock."""
        bits_per_second = self.n_ports * self.port_gbps * 1e9
        return bits_per_second / 8.0 / (self.cost_model.clock_ghz * 1e9)

    def packet_interarrival_cycles(self, packet_bytes: int) -> float:
        """delta: mean cycles between packet arrivals at full line rate."""
        return packet_bytes / self.line_rate_bytes_per_cycle


@dataclass(slots=True)
class HandlerContext:
    """Everything a handler may consult while processing one packet."""

    switch: "PsPINSwitch"
    packet: SwitchPacket
    cluster: Cluster
    hpu_id: int
    dispatch_time: float   # when the core picked the packet up
    start_time: float      # dispatch_time + i-cache fill penalty (if any)

    @property
    def costs(self) -> CostModel:
        return self.switch.config.cost_model


@dataclass(slots=True)
class HandlerResult:
    """What one handler invocation did.

    ``finish_time`` is absolute (cycles); the HPU is busy from dispatch
    to finish, *including* any cycles spent spinning on a critical
    section (PsPIN handlers are never suspended, Sec. 6.1).

    ``continuation``, if set, is invoked when ``finish_time`` is reached
    and may return a further :class:`HandlerResult` that *extends* the
    same handler on the same core.  Tree aggregation needs this: whether
    a handler climbs the merge tree depends on which sibling buffer
    filled *last*, which is only known at its own finish time, not at
    dispatch time (Sec. 6.3: "the computation on the next level of the
    tree is carried only if a core finds available data in both
    buffers").
    """

    finish_time: float
    outputs: list[SwitchPacket] = field(default_factory=list)
    completed_block: Optional[tuple[int, int]] = None
    wait_cycles: float = 0.0
    continuation: Optional[Callable[[float], Optional["HandlerResult"]]] = None


class Handler(Protocol):
    """Aggregation-handler interface (the sPIN 'packet handler')."""

    name: str

    def process(self, ctx: HandlerContext) -> HandlerResult: ...


class PsPINSwitch:
    """Behavioral PsPIN switch: inject packets, run, read telemetry.

    Typical use::

        sw = PsPINSwitch(SwitchConfig(n_clusters=4))
        sw.register_handler(SingleBufferHandler(...))
        sw.parser.install_allreduce(allreduce_id=1, handler="flare-single")
        for t, pkt in arrivals:
            sw.inject(pkt, at=t)
        makespan = sw.run()
    """

    #: Core-cycles burned by a handler that finds working memory full
    #: (roughly one aggregation time: the failed admission check plus
    #: back-off, Sec. 4.3).  Retries are *event-driven* — the packet
    #: re-queues and is woken by the next working-memory release — so a
    #: saturated run costs O(releases) events, not O(retries).
    WORKING_MEMORY_RETRY_CYCLES = 1024.0

    def __init__(self, config: SwitchConfig, sim: Optional[Simulator] = None) -> None:
        if config.subset_size is None:
            config.subset_size = config.cores_per_cluster
        self.config = config
        self.sim = sim or Simulator()
        self.clusters = [
            Cluster(i, config.cores_per_cluster, config.l1_bytes)
            for i in range(config.n_clusters)
        ]
        for cluster in self.clusters:
            cluster.l1.release_listener = self._on_working_memory_release
        self._hpus = [hpu for cl in self.clusters for hpu in cl.hpus]
        if config.scheduler == "hierarchical":
            self.scheduler = HierarchicalFCFSScheduler(self._hpus, config.subset_size)
        elif config.scheduler == "fcfs":
            self.scheduler = FCFSScheduler(self._hpus)
        else:
            raise ValueError(f"unknown scheduler {config.scheduler!r}")
        self.parser = PacketParser()
        self.memories = MemoryAccounting()
        self.telemetry = Telemetry()
        self._handlers: dict[str, Handler] = {}
        self.egress: list[tuple[float, SwitchPacket]] = []
        self.egress_callback: Optional[Callable[[float, SwitchPacket], None]] = None
        self._first_arrival: Optional[float] = None
        self._last_completion: float = 0.0
        #: Packets held at the ingress by back-pressure, FIFO.
        self._admission_queue: deque[SwitchPacket] = deque()
        #: Queued packets waiting for a working-memory release wakeup.
        self._stalled_waiters = 0
        #: Earliest pending stall-wakeup event time (None = none armed).
        self._stall_wakeup_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def register_handler(self, handler: Handler) -> None:
        """Install a handler image (control-plane operation, Sec. 4)."""
        self._handlers[handler.name] = handler

    def handler(self, name: str) -> Handler:
        return self._handlers[name]

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def inject(self, packet: SwitchPacket, at: float) -> None:
        """Schedule a packet arrival at absolute cycle ``at``."""
        self.sim.schedule_fast(at, self._on_arrival, (packet,))

    def inject_train(self, train) -> bool:
        """Inject a :class:`~repro.pspin.train.PacketTrain`.

        Attempts the analytic fast path first; if the train cannot be
        reproduced exactly (contention, back-pressure, exotic configs),
        falls back transparently to per-packet arrival events.  Returns
        True iff the fast path handled the train.
        """
        from repro.pspin.train import fast_path_env_enabled, try_run_train

        if (
            self.config.fast_path
            and fast_path_env_enabled()
            and try_run_train(self, train)
        ):
            return True
        schedule = self.sim.schedule_fast
        on_arrival = self._on_arrival
        for t, pkt in zip(train.times.tolist(), train.packets()):
            schedule(t, on_arrival, (pkt,))
        return False

    def _on_arrival(self, packet: SwitchPacket) -> None:
        now = self.sim.now
        if self._first_arrival is None:
            self._first_arrival = now
        handler_name = self.parser.classify(packet)
        if handler_name is None:
            # Bypass: straight to routing, no processing-unit involvement.
            packet.arrival_time = now
            self.telemetry.packets_in.add(1)
            self.telemetry.bytes_in.add(packet.wire_bytes)
            self._emit(now, packet)
            return
        packet._handler_name = handler_name
        if not self.memories.l2_packet.allocate(packet.wire_bytes, now):
            # Input buffers full.  The paper leaves the reaction to the
            # surrounding network ("the packet is dropped or congestion
            # is notified before filling the buffer", Sec. 3 fn. 2):
            # dropping exercises the retransmission path; otherwise we
            # model credit-based back-pressure: the packet waits at the
            # ingress (upstream link holds it) and is admitted FIFO as
            # soon as a buffer frees — one event per admission, so a
            # saturated run costs O(packets), not O(packets x retries).
            # Ingress wire counters tick only at admission (or drop),
            # so they stay monotone; a deferred packet is counted once,
            # when it actually enters the processing unit.
            if self.config.drop_on_full:
                self.telemetry.packets_in.add(1)
                self.telemetry.bytes_in.add(packet.wire_bytes)
                self.telemetry.dropped_packets.add(1)
            else:
                self.telemetry.deferred_arrivals.add(1)
                self._admission_queue.append(packet)
            return
        self._admit(packet, now)

    def _admit(self, packet: SwitchPacket, now: float) -> None:
        """Packet enters the processing unit (L2 space already held)."""
        packet.arrival_time = now
        self.telemetry.packets_in.add(1)
        self.telemetry.bytes_in.add(packet.wire_bytes)
        self.scheduler.enqueue(packet)
        self.telemetry.queued_packets.record(now, self.scheduler.queued())
        self.telemetry.input_buffer_bytes.record(now, self.memories.l2_packet.used_bytes)
        self._dispatch()

    def _dispatch(self) -> None:
        now = self.sim.now
        for hpu, packet in self.scheduler.dispatch(now):
            cluster = self.clusters[hpu.cluster_id]
            handler_name: str = packet._handler_name  # type: ignore[attr-defined]
            handler = self._handlers[handler_name]
            start = now
            if not cluster.icache_warm(handler_name):
                cluster.icache_load(handler_name)
                start += self.config.cost_model.icache_fill_cycles
                self.telemetry.icache_fills.add(1)
            ctx = HandlerContext(
                switch=self,
                packet=packet,
                cluster=cluster,
                hpu_id=hpu.hpu_id,
                dispatch_time=now,
                start_time=start,
            )
            try:
                result = handler.process(ctx)
            except Exception as exc:
                if type(exc).__name__ == "WorkingMemoryStall":
                    # Working memory cannot admit this block yet: the
                    # packet stays in its input buffer and re-queues; the
                    # core burns the failed check plus back-off (roughly
                    # one aggregation time) and frees.  This is the
                    # switch-side face of the Sec. 4.3 in-flight block
                    # bound.  No retry event is scheduled — the next
                    # working-memory release wakes the queue (see
                    # :meth:`_on_working_memory_release`), so sustained
                    # pressure costs O(releases) events, not O(retries).
                    hpu.occupy(now, now + self.WORKING_MEMORY_RETRY_CYCLES)
                    self.telemetry.stalled_admissions.add(1)
                    self.scheduler.enqueue(packet)
                    self._stalled_waiters += 1
                    continue
                raise
            if result.finish_time < start:
                raise RuntimeError(
                    f"handler {handler_name} finished before it started "
                    f"({result.finish_time} < {start})"
                )
            hpu.occupy(now, result.finish_time)
            hpu.pending_decision = result.continuation is not None
            self.telemetry.handler_invocations.add(1)
            self.telemetry.busy_cycles.add(result.finish_time - now)
            self.telemetry.contention_wait_cycles.add(result.wait_cycles)
            self.sim.schedule_fast(
                result.finish_time,
                self._on_completion,
                (hpu, packet, result, False),
                priority=0,
            )
        self.telemetry.queued_packets.record(now, self.scheduler.queued())

    def _on_working_memory_release(self, release_time: float) -> None:
        """Working memory freed (possibly at a *future* simulated time —
        handlers book releases eagerly at completion timestamps): arm a
        wakeup for any packets stalled on admission.

        One priority-0 event per distinct release instant at most; the
        wakeup re-runs the dispatcher, which either admits the stalled
        packets or re-marks them as waiting.
        """
        if not self._stalled_waiters:
            return
        at = release_time if release_time > self.sim.now else self.sim.now
        if self._stall_wakeup_at is not None and self._stall_wakeup_at <= at:
            return  # an earlier (or equal) wakeup is already armed
        self._stall_wakeup_at = at
        self.sim.schedule_fast(at, self._stall_wakeup, (at,), priority=0)

    def _stall_wakeup(self, armed_at: float) -> None:
        if self._stall_wakeup_at == armed_at:
            self._stall_wakeup_at = None
        # Dispatch re-raises the waiting flag if admissions still stall.
        self._stalled_waiters = 0
        self._dispatch()

    def _on_completion(
        self,
        hpu,
        packet: SwitchPacket,
        result: HandlerResult,
        buffer_released: bool,
    ) -> None:
        now = self.sim.now
        if not buffer_released:
            # The input buffer is held for queueing + service time of the
            # *packet handler*; tree-merge extensions operate on working
            # memory only.
            self.memories.l2_packet.release(packet.wire_bytes, now)
            self.telemetry.input_buffer_bytes.record(
                now, self.memories.l2_packet.used_bytes
            )
        if result.completed_block is not None:
            self.scheduler.release_block(result.completed_block)
        for out in result.outputs:
            self._emit(now, out)
        extended = False
        hpu.pending_decision = False
        if result.continuation is not None:
            # The continuation must run before anything else can claim
            # this core: a tree merge extends the same HPU (dispatchers
            # were held off by ``pending_decision`` until this point).
            next_result = result.continuation(now)
            if next_result is not None:
                hpu.occupy(now, next_result.finish_time)
                hpu.pending_decision = next_result.continuation is not None
                self.telemetry.busy_cycles.add(next_result.finish_time - now)
                self.telemetry.contention_wait_cycles.add(next_result.wait_cycles)
                self.sim.schedule_fast(
                    next_result.finish_time,
                    self._on_completion,
                    (hpu, packet, next_result, True),
                    priority=0,
                )
                extended = True
        if not buffer_released:
            # Freed space admits back-pressured packets (FIFO); safe now
            # that the core's extension (if any) is booked.
            while self._admission_queue:
                head = self._admission_queue[0]
                if head.wire_bytes > self.memories.l2_packet.free_bytes:
                    break
                self._admission_queue.popleft()
                self.memories.l2_packet.allocate(head.wire_bytes, now)
                self._admit(head, now)
        if not extended:
            self._last_completion = now
        self._dispatch()

    def _emit(self, time: float, packet: SwitchPacket) -> None:
        self.telemetry.packets_out.add(1)
        self.telemetry.bytes_out.add(packet.wire_bytes)
        if self.egress_callback is not None:
            self.egress_callback(time, packet)
        else:
            self.egress.append((time, packet))

    # ------------------------------------------------------------------
    # Execution / reporting
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run to quiescence (or ``until``); returns the makespan in cycles.

        Makespan is measured from the first packet arrival to the last
        handler completion, which is what the paper's bandwidth numbers
        (payload volume / time) divide by.
        """
        self.sim.run(until=until)
        if until is None and self._stalled_waiters and self.scheduler.queued():
            raise RuntimeError(
                f"working-memory deadlock: {self.scheduler.queued()} packets "
                "stalled on admission but no release is pending to wake them"
            )
        if self._first_arrival is None:
            return 0.0
        return max(self._last_completion - self._first_arrival, 0.0)

    def achieved_tbps(self) -> float:
        """Ingress goodput over the measured makespan."""
        makespan = max(self._last_completion - (self._first_arrival or 0.0), 0.0)
        return self.telemetry.achieved_tbps(makespan, self.config.cost_model.clock_ghz)
