"""Full PsPIN switch assembly and event loop glue.

The switch wires together the parser, the packet scheduler, the clusters
and the memories, and drives handler execution through the discrete-event
engine.  Aggregation *logic* (what a handler does with a packet and what
it costs) is supplied by handler objects from ``repro.core`` (dense) and
``repro.sparse`` — the switch only provides the substrate, mirroring how
sPIN separates the NIC/switch architecture from user handlers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.pspin.cluster import Cluster
from repro.pspin.costs import CostModel
from repro.pspin.engine import Simulator
from repro.pspin.memory import MemoryAccounting
from repro.pspin.packets import SwitchPacket
from repro.pspin.parser import PacketParser
from repro.pspin.scheduler import FCFSScheduler, HierarchicalFCFSScheduler
from repro.pspin.telemetry import Telemetry


@dataclass
class SwitchConfig:
    """Dimensions and policies of one PsPIN switch.

    Defaults follow the paper's target design point (Sec. 3): 64 clusters
    of 8 HPUs within a 180 mm^2 processing-unit area budget, 64 ports at
    100 Gbps.  The paper's RTL simulations use 4 clusters and scale
    linearly ("the clusters are organized in a shared-nothing
    configuration"); set ``n_clusters=4`` and use
    ``repro.core.allreduce.scale_bandwidth`` to do the same.
    """

    n_clusters: int = 64
    cores_per_cluster: int = 8
    n_ports: int = 64
    port_gbps: float = 100.0
    scheduler: str = "hierarchical"  # "hierarchical" | "fcfs"
    subset_size: Optional[int] = None  # S; defaults to cores_per_cluster
    cost_model: CostModel = field(default_factory=CostModel)
    l1_bytes: int = 1024 * 1024
    drop_on_full: bool = False

    @property
    def n_cores(self) -> int:
        return self.n_clusters * self.cores_per_cluster

    @property
    def line_rate_bytes_per_cycle(self) -> float:
        """Aggregate ingress line rate in bytes/cycle at the 1 GHz clock."""
        bits_per_second = self.n_ports * self.port_gbps * 1e9
        return bits_per_second / 8.0 / (self.cost_model.clock_ghz * 1e9)

    def packet_interarrival_cycles(self, packet_bytes: int) -> float:
        """delta: mean cycles between packet arrivals at full line rate."""
        return packet_bytes / self.line_rate_bytes_per_cycle


@dataclass
class HandlerContext:
    """Everything a handler may consult while processing one packet."""

    switch: "PsPINSwitch"
    packet: SwitchPacket
    cluster: Cluster
    hpu_id: int
    dispatch_time: float   # when the core picked the packet up
    start_time: float      # dispatch_time + i-cache fill penalty (if any)

    @property
    def costs(self) -> CostModel:
        return self.switch.config.cost_model


@dataclass
class HandlerResult:
    """What one handler invocation did.

    ``finish_time`` is absolute (cycles); the HPU is busy from dispatch
    to finish, *including* any cycles spent spinning on a critical
    section (PsPIN handlers are never suspended, Sec. 6.1).

    ``continuation``, if set, is invoked when ``finish_time`` is reached
    and may return a further :class:`HandlerResult` that *extends* the
    same handler on the same core.  Tree aggregation needs this: whether
    a handler climbs the merge tree depends on which sibling buffer
    filled *last*, which is only known at its own finish time, not at
    dispatch time (Sec. 6.3: "the computation on the next level of the
    tree is carried only if a core finds available data in both
    buffers").
    """

    finish_time: float
    outputs: list[SwitchPacket] = field(default_factory=list)
    completed_block: Optional[tuple[int, int]] = None
    wait_cycles: float = 0.0
    continuation: Optional[Callable[[float], Optional["HandlerResult"]]] = None


class Handler(Protocol):
    """Aggregation-handler interface (the sPIN 'packet handler')."""

    name: str

    def process(self, ctx: HandlerContext) -> HandlerResult: ...


class PsPINSwitch:
    """Behavioral PsPIN switch: inject packets, run, read telemetry.

    Typical use::

        sw = PsPINSwitch(SwitchConfig(n_clusters=4))
        sw.register_handler(SingleBufferHandler(...))
        sw.parser.install_allreduce(allreduce_id=1, handler="flare-single")
        for t, pkt in arrivals:
            sw.inject(pkt, at=t)
        makespan = sw.run()
    """

    #: Poll interval for packets stalled on working-memory admission.
    WORKING_MEMORY_RETRY_CYCLES = 1024.0

    def __init__(self, config: SwitchConfig, sim: Optional[Simulator] = None) -> None:
        if config.subset_size is None:
            config.subset_size = config.cores_per_cluster
        self.config = config
        self.sim = sim or Simulator()
        self.clusters = [
            Cluster(i, config.cores_per_cluster, config.l1_bytes)
            for i in range(config.n_clusters)
        ]
        self._hpus = [hpu for cl in self.clusters for hpu in cl.hpus]
        if config.scheduler == "hierarchical":
            self.scheduler = HierarchicalFCFSScheduler(self._hpus, config.subset_size)
        elif config.scheduler == "fcfs":
            self.scheduler = FCFSScheduler(self._hpus)
        else:
            raise ValueError(f"unknown scheduler {config.scheduler!r}")
        self.parser = PacketParser()
        self.memories = MemoryAccounting()
        self.telemetry = Telemetry()
        self._handlers: dict[str, Handler] = {}
        self.egress: list[tuple[float, SwitchPacket]] = []
        self.egress_callback: Optional[Callable[[float, SwitchPacket], None]] = None
        self._first_arrival: Optional[float] = None
        self._last_completion: float = 0.0
        #: Packets held at the ingress by back-pressure, FIFO.
        self._admission_queue: deque[SwitchPacket] = deque()

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def register_handler(self, handler: Handler) -> None:
        """Install a handler image (control-plane operation, Sec. 4)."""
        self._handlers[handler.name] = handler

    def handler(self, name: str) -> Handler:
        return self._handlers[name]

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def inject(self, packet: SwitchPacket, at: float) -> None:
        """Schedule a packet arrival at absolute cycle ``at``."""
        self.sim.schedule_at(at, self._on_arrival, packet)

    def _on_arrival(self, packet: SwitchPacket) -> None:
        now = self.sim.now
        packet.arrival_time = now
        if self._first_arrival is None:
            self._first_arrival = now
        self.telemetry.packets_in.add(1)
        self.telemetry.bytes_in.add(packet.wire_bytes)
        handler_name = self.parser.classify(packet)
        if handler_name is None:
            # Bypass: straight to routing, no processing-unit involvement.
            self._emit(now, packet)
            return
        if not self.memories.l2_packet.allocate(packet.wire_bytes, now):
            # Input buffers full.  The paper leaves the reaction to the
            # surrounding network ("the packet is dropped or congestion
            # is notified before filling the buffer", Sec. 3 fn. 2):
            # dropping exercises the retransmission path; otherwise we
            # model credit-based back-pressure: the packet waits at the
            # ingress (upstream link holds it) and is admitted FIFO as
            # soon as a buffer frees — one event per admission, so a
            # saturated run costs O(packets), not O(packets x retries).
            if self.config.drop_on_full:
                self.telemetry.dropped_packets.add(1)
            else:
                self.telemetry.deferred_arrivals.add(1)
                self._admission_queue.append(packet)
                # Undo the ingress accounting; admission will re-count.
                self.telemetry.packets_in.add(-1)
                self.telemetry.bytes_in.add(-packet.wire_bytes)
            return
        packet._handler_name = handler_name  # type: ignore[attr-defined]
        self.scheduler.enqueue(packet)
        self.telemetry.queued_packets.record(now, self.scheduler.queued())
        self.telemetry.input_buffer_bytes.record(now, self.memories.l2_packet.used_bytes)
        self._dispatch()

    def _dispatch(self) -> None:
        now = self.sim.now
        for hpu, packet in self.scheduler.dispatch(now):
            cluster = self.clusters[hpu.cluster_id]
            handler_name: str = packet._handler_name  # type: ignore[attr-defined]
            handler = self._handlers[handler_name]
            start = now
            if not cluster.icache_warm(handler_name):
                cluster.icache_load(handler_name)
                start += self.config.cost_model.icache_fill_cycles
                self.telemetry.icache_fills.add(1)
            ctx = HandlerContext(
                switch=self,
                packet=packet,
                cluster=cluster,
                hpu_id=hpu.hpu_id,
                dispatch_time=now,
                start_time=start,
            )
            try:
                result = handler.process(ctx)
            except Exception as exc:
                if type(exc).__name__ == "WorkingMemoryStall":
                    # Working memory cannot admit this block yet: the
                    # packet stays in its input buffer and re-queues; the
                    # core burns the check cost and frees shortly.  This
                    # is the switch-side face of the Sec. 4.3 in-flight
                    # block bound.
                    # Back off roughly one aggregation time: memory frees
                    # at block-completion granularity, so finer polling
                    # only burns core cycles and simulator events.
                    retry_at = now + self.WORKING_MEMORY_RETRY_CYCLES
                    hpu.occupy(now, retry_at)
                    self.telemetry.stalled_admissions.add(1)
                    self.scheduler.enqueue(packet)
                    self.sim.schedule_at(retry_at, self._dispatch, priority=0)
                    continue
                raise
            if result.finish_time < start:
                raise RuntimeError(
                    f"handler {handler_name} finished before it started "
                    f"({result.finish_time} < {start})"
                )
            hpu.occupy(now, result.finish_time)
            hpu.pending_decision = result.continuation is not None
            self.telemetry.handler_invocations.add(1)
            self.telemetry.busy_cycles.add(result.finish_time - now)
            self.telemetry.contention_wait_cycles.add(result.wait_cycles)
            self.sim.schedule_at(
                result.finish_time, self._on_completion, hpu, packet, result, False,
                priority=0,
            )
        self.telemetry.queued_packets.record(now, self.scheduler.queued())

    def _on_completion(
        self,
        hpu,
        packet: SwitchPacket,
        result: HandlerResult,
        buffer_released: bool,
    ) -> None:
        now = self.sim.now
        if not buffer_released:
            # The input buffer is held for queueing + service time of the
            # *packet handler*; tree-merge extensions operate on working
            # memory only.
            self.memories.l2_packet.release(packet.wire_bytes, now)
            self.telemetry.input_buffer_bytes.record(
                now, self.memories.l2_packet.used_bytes
            )
        if result.completed_block is not None:
            self.scheduler.release_block(result.completed_block)
        for out in result.outputs:
            self._emit(now, out)
        extended = False
        hpu.pending_decision = False
        if result.continuation is not None:
            # The continuation must run before anything else can claim
            # this core: a tree merge extends the same HPU (dispatchers
            # were held off by ``pending_decision`` until this point).
            next_result = result.continuation(now)
            if next_result is not None:
                hpu.occupy(now, next_result.finish_time)
                hpu.pending_decision = next_result.continuation is not None
                self.telemetry.busy_cycles.add(next_result.finish_time - now)
                self.telemetry.contention_wait_cycles.add(next_result.wait_cycles)
                self.sim.schedule_at(
                    next_result.finish_time,
                    self._on_completion,
                    hpu,
                    packet,
                    next_result,
                    True,
                    priority=0,
                )
                extended = True
        if not buffer_released:
            # Freed space admits back-pressured packets (FIFO); safe now
            # that the core's extension (if any) is booked.
            while self._admission_queue:
                head = self._admission_queue[0]
                if head.wire_bytes > self.memories.l2_packet.free_bytes:
                    break
                self._admission_queue.popleft()
                self._on_arrival(head)
        if not extended:
            self._last_completion = now
        self._dispatch()

    def _emit(self, time: float, packet: SwitchPacket) -> None:
        self.telemetry.packets_out.add(1)
        self.telemetry.bytes_out.add(packet.wire_bytes)
        if self.egress_callback is not None:
            self.egress_callback(time, packet)
        else:
            self.egress.append((time, packet))

    # ------------------------------------------------------------------
    # Execution / reporting
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run to quiescence (or ``until``); returns the makespan in cycles.

        Makespan is measured from the first packet arrival to the last
        handler completion, which is what the paper's bandwidth numbers
        (payload volume / time) divide by.
        """
        self.sim.run(until=until)
        if self._first_arrival is None:
            return 0.0
        return max(self._last_completion - self._first_arrival, 0.0)

    def achieved_tbps(self) -> float:
        """Ingress goodput over the measured makespan."""
        makespan = max(self._last_completion - (self._first_arrival or 0.0), 0.0)
        return self.telemetry.achieved_tbps(makespan, self.config.cost_model.clock_ghz)
