"""A PsPIN cluster: HPUs + L1 TCDM + DMA + instruction cache state.

Clusters are shared-nothing for Flare's purposes (the paper scales the
4-cluster RTL simulation linearly to 64 clusters on that basis), so the
cluster object owns everything a block's aggregation touches: the L1
scratchpad where its buffers live and the i-cache that must hold the
handler image before the first packet runs at full speed.
"""

from __future__ import annotations

from repro.pspin.hpu import HPU
from repro.pspin.memory import MemoryRegion


class Cluster:
    """One cluster of ``cores_per_cluster`` HPUs with a private L1."""

    def __init__(self, cluster_id: int, cores_per_cluster: int, l1_bytes: int = 1024 * 1024) -> None:
        self.cluster_id = cluster_id
        self.hpus: list[HPU] = [
            HPU(hpu_id=cluster_id * cores_per_cluster + i, cluster_id=cluster_id)
            for i in range(cores_per_cluster)
        ]
        self.l1 = MemoryRegion(f"L1[{cluster_id}]", l1_bytes)
        #: Handler images currently resident in the 4 KiB i-cache.
        self._icache: set[str] = set()

    def icache_warm(self, handler_name: str) -> bool:
        """True if the handler image is already resident."""
        return handler_name in self._icache

    def icache_load(self, handler_name: str) -> None:
        """Load a handler image (evicting nothing — Flare installs one
        aggregation handler per switch; multi-handler eviction would only
        matter for workloads this reproduction does not model)."""
        self._icache.add(handler_name)

    def icache_flush(self) -> None:
        """Drop all resident images (used to re-create cold-start runs)."""
        self._icache.clear()

    def free_hpu(self, now: float) -> HPU | None:
        """Earliest-indexed free HPU, or None."""
        for hpu in self.hpus:
            if hpu.is_free(now):
                return hpu
        return None

    @property
    def n_cores(self) -> int:
        return len(self.hpus)
