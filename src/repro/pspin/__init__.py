"""Behavioral model of the PsPIN programmable-switch processing unit.

The paper builds Flare on PsPIN (Di Girolamo et al., ISCA '21): a
clustered RISC-V packet processor with per-cluster HPUs (handler
processing units), single-cycle L1 TCDM scratchpads, a shared L2, DMA
engines, and a two-level packet scheduler.  The original evaluation uses
the cycle-accurate PsPIN RTL simulator; this package substitutes a
discrete-event behavioral model calibrated with the paper's published
costs (see ``repro.pspin.costs``), which is the granularity the paper's
own analysis operates at.

Structure
---------
``engine``      generic discrete-event simulator (cycle timestamps)
``costs``       calibrated cycle-cost model
``packets``     switch-level packet records
``memory``      L1/L2 capacity + occupancy accounting
``parser``      match rules -> handler dispatch
``scheduler``   FCFS and hierarchical FCFS packet scheduling (Sec. 5)
``hpu``         handler processing unit
``cluster``     cluster = HPUs + L1 + DMA + i-cache
``switch``      full switch assembly and run loop
``telemetry``   occupancy/utilization time series
"""

from repro.pspin.engine import Event, Simulator
from repro.pspin.costs import CostModel, DType, DTYPES
from repro.pspin.packets import SwitchPacket
from repro.pspin.memory import MemoryRegion, MemoryAccounting
from repro.pspin.parser import MatchRule, PacketParser
from repro.pspin.scheduler import FCFSScheduler, HierarchicalFCFSScheduler
from repro.pspin.hpu import HPU
from repro.pspin.cluster import Cluster
from repro.pspin.switch import PsPINSwitch, SwitchConfig
from repro.pspin.telemetry import Telemetry

__all__ = [
    "Event",
    "Simulator",
    "CostModel",
    "DType",
    "DTYPES",
    "SwitchPacket",
    "MemoryRegion",
    "MemoryAccounting",
    "MatchRule",
    "PacketParser",
    "FCFSScheduler",
    "HierarchicalFCFSScheduler",
    "HPU",
    "Cluster",
    "PsPINSwitch",
    "SwitchConfig",
    "Telemetry",
]
