"""Discrete-event simulation core.

A minimal, fast event loop with integer-friendly cycle timestamps.  The
switch model is compute-bound in Python, so the loop is kept lean: a
binary heap of ``(time, seq, callback, args)`` tuples, FIFO-stable for
simultaneous events via the monotonically increasing sequence number
(matters for FCFS semantics: two packets arriving in the same cycle are
scheduled in arrival order).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering key is ``(time, priority, seq)``.

    ``priority`` breaks timestamp ties: completions/releases (priority
    0) must settle before new arrivals (priority 1) claim the freed
    resources — otherwise an arrival event created at setup time (low
    seq) would overtake a completion scheduled later for the same
    instant.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1) lazy deletion)."""
        self.cancelled = True


class Simulator:
    """Heap-based discrete-event simulator.

    Timestamps are in *cycles* for the switch model (1 cycle == 1 ns at
    the paper's 1 GHz clock) and in *nanoseconds* for the network model;
    the engine itself is unit-agnostic.

    Example
    -------
    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(5.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 1,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 1,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        ``priority=0`` runs before same-timestamp ``priority=1`` events
        regardless of insertion order (see :class:`Event`).
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        ev = Event(time=time, priority=priority, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest pending event.  Returns False when idle."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            ev.callback(*ev.args)
            self._events_processed += 1
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events in order; stop when the heap drains or time passes ``until``."""
        while self._heap:
            ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and ev.time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = ev.time
            ev.callback(*ev.args)
            self._events_processed += 1
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed so far (for profiling/tests)."""
        return self._events_processed
