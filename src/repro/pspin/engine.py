"""Discrete-event simulation core.

A minimal, fast event loop with integer-friendly cycle timestamps.  The
switch model is compute-bound in Python, so the loop is kept lean: a
binary heap of plain ``[time, priority, seq, callback, args]`` list
entries, FIFO-stable for simultaneous events via the monotonically
increasing sequence number (matters for FCFS semantics: two packets
arriving in the same cycle are scheduled in arrival order).

Plain lists beat an ordered dataclass on the heap by >2x: list
comparison short-circuits in C on the ``(time, priority, seq)`` prefix
(``seq`` is unique, so the callback is never compared), and there is no
``__init__``/``__lt__`` Python frame per push.  :class:`Event` survives
as a thin slotted handle over the heap entry so callers keep the
``cancel()`` API; hot paths that discard the handle use
:meth:`Simulator.schedule_fast` and skip even that allocation.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

# Heap-entry layout (plain list, compared element-wise):
_TIME, _PRIORITY, _SEQ, _CALLBACK, _ARGS = range(5)


class Event:
    """Handle to a scheduled callback.  Ordering key is ``(time,
    priority, seq)``.

    ``priority`` breaks timestamp ties: completions/releases (priority
    0) must settle before new arrivals (priority 1) claim the freed
    resources — otherwise an arrival event created at setup time (low
    seq) would overtake a completion scheduled later for the same
    instant.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def priority(self) -> int:
        return self._entry[_PRIORITY]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def args(self) -> tuple:
        return self._entry[_ARGS]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1) lazy deletion)."""
        self._entry[_CALLBACK] = None


class Simulator:
    """Heap-based discrete-event simulator.

    Timestamps are in *cycles* for the switch model (1 cycle == 1 ns at
    the paper's 1 GHz clock) and in *nanoseconds* for the network model;
    the engine itself is unit-agnostic.

    Example
    -------
    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(5.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[list] = []
        self._seq: int = 0
        self._events_processed: int = 0
        #: Cooperative stop for :meth:`run_stoppable` — a callback sets
        #: it (e.g. a future settling) to hand control back to the
        #: driver without a per-event predicate call.
        self.stop_requested: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 1,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 1,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        ``priority=0`` runs before same-timestamp ``priority=1`` events
        regardless of insertion order (see :class:`Event`).
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        entry = [time, priority, self._seq, callback, args]
        self._seq += 1
        heappush(self._heap, entry)
        return Event(entry)

    def schedule_fast(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 1,
    ) -> None:
        """Like :meth:`schedule_at` but returns no cancellation handle.

        The hot paths (switch dispatch, network hops) never cancel, so
        they skip the :class:`Event` allocation.  ``args`` is passed as
        a tuple rather than varargs to avoid re-packing.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        heappush(self._heap, [time, priority, self._seq, callback, args])
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest pending event.  Returns False when idle."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            self.now = entry[_TIME]
            callback(*entry[_ARGS])
            self._events_processed += 1
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events in order; stop when the heap drains or time passes ``until``."""
        heap = self._heap
        processed = 0
        if until is None:
            while heap:
                entry = heappop(heap)
                callback = entry[_CALLBACK]
                if callback is None:
                    continue
                self.now = entry[_TIME]
                callback(*entry[_ARGS])
                processed += 1
            self._events_processed += processed
            return
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                heappop(heap)
                continue
            if entry[_TIME] > until:
                self.now = until
                self._events_processed += processed
                return
            heappop(heap)
            self.now = entry[_TIME]
            entry[_CALLBACK](*entry[_ARGS])
            processed += 1
        self._events_processed += processed
        if until > self.now:
            self.now = until

    def run_stoppable(self) -> bool:
        """Run events until a callback sets :attr:`stop_requested` or
        the heap drains.  Returns True iff stopped by request.

        The flag is cleared on entry; checking an instance attribute
        once per event is the cheapest wakeup the fabric's
        ``run_until`` can get without overrunning a completion.
        """
        self.stop_requested = False
        heap = self._heap
        processed = 0
        while heap:
            entry = heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            self.now = entry[_TIME]
            callback(*entry[_ARGS])
            processed += 1
            if self.stop_requested:
                break
        self._events_processed += processed
        return self.stop_requested

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event (None when idle).

        Lazily discards cancelled heap heads, so repeated peeks stay
        O(1) amortized.  This is the conservative-PDES probe: a shard
        advertises its next event time so the coordinator can compute a
        global safe window.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                heappop(heap)
                continue
            return entry[_TIME]
        return None

    def run_window(self, stop: float) -> int:
        """Run every event with ``time < stop`` (strict); return count.

        The workhorse of window-synchronized conservative PDES: a shard
        granted the window ``[now, stop)`` may execute exactly the
        events strictly before ``stop`` — events *at* ``stop`` belong
        to the next window (they may race with cross-shard arrivals
        carrying the same timestamp, whose tie-break lives with the
        coordinator).  ``self.now`` is left at the last executed event,
        never advanced to ``stop``: the clock must not outrun a
        cross-shard arrival at ``stop`` itself.
        """
        heap = self._heap
        processed = 0
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                heappop(heap)
                continue
            if entry[_TIME] >= stop:
                break
            heappop(heap)
            self.now = entry[_TIME]
            entry[_CALLBACK](*entry[_ARGS])
            processed += 1
        self._events_processed += processed
        return processed

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._heap if e[_CALLBACK] is not None)

    @property
    def events_processed(self) -> int:
        """Total events executed so far (for profiling/tests)."""
        return self._events_processed
