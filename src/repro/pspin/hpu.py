"""Handler Processing Unit (HPU).

Each HPU is one RI5CY core executing sPIN handlers to completion —
"to avoid expensive context switches, PsPIN handlers are never suspended
and terminate only after the packet has been processed" (Sec. 6.1).
The behavioral model therefore reduces an HPU to a ``busy_until``
timestamp plus utilization accounting; all cost arithmetic lives in the
handlers and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class HPU:
    """One handler processing unit.

    Attributes
    ----------
    hpu_id:
        Global core index (0 .. K-1).
    cluster_id:
        Cluster this core belongs to (hpu_id // cores_per_cluster).
    busy_until:
        Absolute cycle at which the current handler retires; the core is
        free iff ``busy_until <= now``.
    """

    hpu_id: int
    cluster_id: int
    busy_until: float = 0.0
    #: True while a handler's continuation decision is outstanding: the
    #: core may extend itself at ``busy_until`` (tree merges), so no
    #: dispatcher may claim it until the decision event has run — even
    #: if another event fires at exactly the same timestamp first.
    pending_decision: bool = field(default=False, compare=False)
    handlers_run: int = field(default=0, compare=False)
    busy_cycles: float = field(default=0.0, compare=False)

    def is_free(self, now: float) -> bool:
        return self.busy_until <= now and not self.pending_decision

    def occupy(self, start: float, finish: float) -> None:
        """Mark the core busy for [start, finish)."""
        if finish < start:
            raise ValueError(f"handler finishes before it starts ({finish} < {start})")
        if start < self.busy_until:
            raise RuntimeError(
                f"HPU {self.hpu_id} double-booked: start {start} < busy_until {self.busy_until}"
            )
        self.busy_until = finish
        self.handlers_run += 1
        self.busy_cycles += finish - start
