"""Packet-to-core scheduling policies (paper Sec. 5).

Two policies:

* :class:`FCFSScheduler` — "by default, packets are scheduled to the
  cores with a First Come First Serve policy, so that they are evenly
  distributed across the cores."  Any queued packet may start on any
  free core.  With per-cluster L1s this causes remote-L1 traffic, which
  handlers penalize (paper: remote L1 access latency is up to 25x the
  local one).

* :class:`HierarchicalFCFSScheduler` — "we assign packets belonging to
  the same block with an FCFS policy to the same subset of cores, and
  different blocks to different subsets."  Subsets have size S and never
  span a cluster when S <= C, so all L1 accesses stay local; the price
  is bursty per-subset queues (Fig. 5 B), quantified by Eq. 1.

Both expose the same interface: ``enqueue`` a packet, then ``dispatch``
returns (hpu, packet) pairs that may start *now*.  The switch drives
dispatch on arrivals and on handler completions.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.pspin.hpu import HPU
from repro.pspin.packets import SwitchPacket


class FCFSScheduler:
    """Single global FIFO; any free core takes the head packet."""

    name = "fcfs"

    def __init__(self, hpus: list[HPU]) -> None:
        self._hpus = hpus
        self._queue: deque[SwitchPacket] = deque()
        self._n_queued = 0

    def enqueue(self, packet: SwitchPacket) -> None:
        self._queue.append(packet)
        self._n_queued += 1

    def dispatch(self, now: float) -> list[tuple[HPU, SwitchPacket]]:
        """Pair free cores with queued packets in FIFO order."""
        started: list[tuple[HPU, SwitchPacket]] = []
        if not self._queue:
            return started
        for hpu in self._hpus:
            if not self._queue:
                break
            if hpu.is_free(now):
                started.append((hpu, self._queue.popleft()))
        self._n_queued -= len(started)
        return started

    def queued(self) -> int:
        return self._n_queued

    def subset_of(self, packet: SwitchPacket) -> tuple[int, ...]:
        """All cores are eligible under plain FCFS."""
        return tuple(h.hpu_id for h in self._hpus)

    def release_block(self, key: tuple[int, int]) -> None:
        """No per-block state to release."""

    def iter_queued(self) -> Iterator[SwitchPacket]:
        return iter(self._queue)


class HierarchicalFCFSScheduler:
    """Block-affine scheduling onto fixed-size core subsets.

    ``subset_size`` is the paper's S.  Subsets are contiguous core
    ranges, so for S <= C a subset lies within one cluster and the
    block's aggregation buffer is always in the local L1.

    Blocks are mapped to subsets round-robin *on first sight*, which is
    what evens out load in the long run while preserving the bursty
    short-term behaviour Sec. 5 analyzes.
    """

    name = "hierarchical-fcfs"

    def __init__(self, hpus: list[HPU], subset_size: int) -> None:
        if subset_size < 1:
            raise ValueError("subset_size must be >= 1")
        if len(hpus) % subset_size != 0:
            raise ValueError(
                f"subset_size {subset_size} must divide core count {len(hpus)}"
            )
        self._hpus = hpus
        self.subset_size = subset_size
        self.n_subsets = len(hpus) // subset_size
        self._queues: list[deque[SwitchPacket]] = [deque() for _ in range(self.n_subsets)]
        self._block_to_subset: dict[tuple[int, int], int] = {}
        self._next_subset = 0
        self._n_queued = 0
        #: Subsets that might have dispatchable work (avoids full scans).
        self._active: set[int] = set()

    def _subset_for(self, packet: SwitchPacket) -> int:
        key = packet.key()
        subset = self._block_to_subset.get(key)
        if subset is None:
            subset = self._next_subset
            self._next_subset = (self._next_subset + 1) % self.n_subsets
            self._block_to_subset[key] = subset
        return subset

    def enqueue(self, packet: SwitchPacket) -> None:
        subset = self._subset_for(packet)
        self._queues[subset].append(packet)
        self._active.add(subset)
        self._n_queued += 1

    def dispatch(self, now: float) -> list[tuple[HPU, SwitchPacket]]:
        started: list[tuple[HPU, SwitchPacket]] = []
        drained: list[int] = []
        for subset in list(self._active):
            queue = self._queues[subset]
            base = subset * self.subset_size
            for hpu in self._hpus[base : base + self.subset_size]:
                if not queue:
                    break
                if hpu.is_free(now):
                    started.append((hpu, queue.popleft()))
            if not queue:
                drained.append(subset)
        for subset in drained:
            self._active.discard(subset)
        self._n_queued -= len(started)
        return started

    def queued(self) -> int:
        return self._n_queued

    def queue_length(self, subset: int) -> int:
        """Current queue length of one subset (Fig. 5's Q)."""
        return len(self._queues[subset])

    def subset_of(self, packet: SwitchPacket) -> tuple[int, ...]:
        """Core ids eligible to process this packet's block."""
        subset = self._subset_for(packet)
        base = subset * self.subset_size
        return tuple(h.hpu_id for h in self._hpus[base : base + self.subset_size])

    def release_block(self, key: tuple[int, int]) -> None:
        """Forget a completed block's subset mapping (bounded state)."""
        self._block_to_subset.pop(key, None)

    def iter_queued(self) -> Iterator[SwitchPacket]:
        for queue in self._queues:
            yield from queue
