"""Switch-level packet records.

A packet as seen by the processing unit: a small header identifying the
allreduce and the reduction block, plus either a dense payload or a
sparse (indices, values) pair.  Payloads are numpy arrays so handlers
compute *real* aggregation results — the model is behavioral for timing
but exact for data, which is what lets the test suite check numerics and
reproducibility end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Per-packet header carried in addition to the payload (allreduce id,
#: block id, shard count, flags).  Sec. 4: "a small header containing the
#: identifier of the allreduce and of the packet within that allreduce".
HEADER_BYTES = 16


@dataclass(slots=True)
class SwitchPacket:
    """One packet arriving at the switch processing unit.

    Attributes
    ----------
    allreduce_id:
        Unique id assigned by the network manager; packets from different
        allreduces are never aggregated together (Sec. 4).
    block_id:
        Position of the reduction block within the allreduce.
    port:
        Ingress port (== child index in the reduction tree).
    payload:
        Dense values (1-D array) or sparse values when ``indices`` set.
    indices:
        For sparse packets, the positions of ``payload`` values within
        the block span (Sec. 7).
    last_of_block:
        Sparse only — marks the final shard from this child; carries
        ``shard_count`` so the switch knows how many packets to expect
        from this child for this block (Sec. 7, "Block split").
    shard_count:
        Number of packets this child used for this block (valid when
        ``last_of_block``).
    is_retransmission:
        Set by failure-injection tests; the bitmap logic must not
        aggregate the payload twice (Sec. 4.1).
    """

    allreduce_id: int
    block_id: int
    port: int
    payload: np.ndarray
    indices: Optional[np.ndarray] = None
    last_of_block: bool = True
    shard_count: int = 1
    is_retransmission: bool = False
    arrival_time: float = field(default=0.0, compare=False)
    #: Set by the switch ingress after classification (slotted class:
    #: the attribute must be declared here).
    _handler_name: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def is_sparse(self) -> bool:
        return self.indices is not None

    @property
    def payload_bytes(self) -> int:
        """Bytes on the wire for the payload (+ indices for sparse)."""
        n = int(self.payload.nbytes)
        if self.indices is not None:
            n += int(self.indices.nbytes)
        return n

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire including the Flare header."""
        return self.payload_bytes + HEADER_BYTES

    def key(self) -> tuple[int, int]:
        """Aggregation key: packets with equal keys reduce together."""
        return (self.allreduce_id, self.block_id)
