"""Calibrated cycle-cost model for PsPIN handlers.

All constants trace to the paper:

* Sec. 3: the processing unit is clocked at **1 GHz**; each HPU is a
  RI5CY core, extended with an FP32/FP16 FPU.
* Sec. 6 (intro): "a core of the PsPIN unit needs **four cycles to sum
  two 4-byte floating point values** and to store the result back in the
  aggregation buffer", i.e. ~1 ns/byte for fp32 — the packet-aggregation
  cost L = 4 * 256 = 1024 cycles for a 1 KiB packet of 256 fp32 values.
* Sec. 6.3: a DMA copy of a packet costs **64 cycles** "instead of the
  1024 cycles needed for the aggregation".
* Sec. 6.4: RI5CY SIMD "can aggregate, for example, two int16 elements
  in a single cycle" — we model per-dtype cycles/element accordingly
  (int16 at 2x the int32 element rate, int8 at 4x).
* Sec. 6.4: small reductions observe a "cold start" because handler code
  is not yet in the 4 KiB cluster instruction cache; we charge a one-off
  i-cache fill per cluster, modeled as loading the handler image from
  the L2 program memory.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DType:
    """An element data type processed by aggregation handlers.

    ``cycles_per_element`` is the steady-state cost to read one element
    from each of two operands, combine, and store (RI5CY + FPU, with
    SIMD packing for sub-word integers).
    """

    name: str
    size_bytes: int
    cycles_per_element: float
    is_float: bool = False

    @property
    def elements_per_kib(self) -> int:
        """Elements carried by a 1 KiB dense payload."""
        return 1024 // self.size_bytes


#: Built-in dtypes (paper Fig. 11 right).  fp64 is intentionally absent:
#: "Flare currently does not support the aggregation of double-precision
#: floating-point elements" (Sec. 6.4).
DTYPES: dict[str, DType] = {
    "float32": DType("float32", 4, 4.0, is_float=True),
    "float16": DType("float16", 2, 2.0, is_float=True),
    "int32": DType("int32", 4, 4.0),
    "int16": DType("int16", 2, 2.0),
    "int8": DType("int8", 1, 1.0),
}


def get_dtype(name: str) -> DType:
    """Look up a dtype by name, with a helpful error for fp64."""
    if name in ("float64", "double"):
        raise ValueError(
            "float64 aggregation is not supported by Flare (paper Sec. 6.4); "
            "use float32, or extend DTYPES with a custom cost"
        )
    try:
        return DTYPES[name]
    except KeyError:
        raise ValueError(f"unknown dtype {name!r}; known: {sorted(DTYPES)}") from None


@dataclass
class CostModel:
    """Cycle costs charged by the behavioral switch model.

    Attributes
    ----------
    clock_ghz:
        HPU clock; 1 GHz in the paper, so cycles == nanoseconds.
    dma_copy_cycles_per_kib:
        DMA engine cost to copy one 1 KiB packet L2 -> L1 (64 cycles,
        Sec. 6.3); scales linearly with payload size.
    handler_dispatch_cycles:
        Fixed scheduling/dispatch overhead per handler invocation
        (parser decision + CSCHED pick + handler prologue/epilogue).
    icache_fill_cycles:
        One-off cost the *first* time a cluster executes a given handler:
        loading the handler image from the 32 KiB L2 program memory into
        the 4 KiB cluster i-cache.
    buffer_mgmt_cycles:
        Cost to locate/claim an aggregation buffer (free-list pop, state
        update).  Charged once per handler; multi-buffer and tree designs
        pay it per buffer touched, which is what makes them slightly
        slower than single-buffer at large sizes (paper Sec. 6.4:
        "some additional overhead caused by the management of multiple
        buffers").
    hash_cycles_per_element / array_cycles_per_element:
        Sparse-storage per-element costs (Sec. 7): hash = compute slot +
        probe + insert-or-spill; array = bounds-checked indexed store.
    array_flush_cycles_per_element:
        Scan cost per *span* element when flushing an array-storage block
        at completion (non-zero filtering + packet build).
    spill_flush_cycles:
        Fixed cost to emit a full spill buffer onto the wire.
    remote_l1_penalty:
        Slowdown multiplier applied to aggregation cycles when a handler
        touches a *remote* cluster's L1 (plain FCFS scheduling can place
        a block's packets on any cluster; Sec. 5 cites up to 25x latency
        per access — for a load/store-bound aggregation loop we charge a
        configurable effective multiplier, default 8x, and hierarchical
        scheduling exists precisely to avoid ever paying it).
    """

    clock_ghz: float = 1.0
    dma_copy_cycles_per_kib: float = 64.0
    remote_l1_penalty: float = 8.0
    handler_dispatch_cycles: float = 24.0
    icache_fill_cycles: float = 512.0
    buffer_mgmt_cycles: float = 16.0
    hash_cycles_per_element: float = 20.0
    array_cycles_per_element: float = 14.0
    array_flush_cycles_per_element: float = 1.0
    spill_flush_cycles: float = 64.0

    def aggregation_cycles(self, payload_bytes: int, dtype: DType) -> float:
        """Cycles to element-wise aggregate one dense payload into a buffer.

        This is the paper's ``L`` for a full packet: 1024 cycles for
        1 KiB of fp32.
        """
        n_elements = payload_bytes // dtype.size_bytes
        return n_elements * dtype.cycles_per_element

    def copy_cycles(self, payload_bytes: int) -> float:
        """Cycles for a DMA copy of a payload into a fresh buffer."""
        return self.dma_copy_cycles_per_kib * (payload_bytes / 1024.0)

    def sparse_insert_cycles(self, n_elements: int, storage: str) -> float:
        """Cycles to insert ``n_elements`` (index, value) pairs (Sec. 7)."""
        if storage == "hash":
            return n_elements * self.hash_cycles_per_element
        if storage == "array":
            return n_elements * self.array_cycles_per_element
        raise ValueError(f"unknown sparse storage {storage!r}")

    def array_flush_cycles(self, span_elements: int) -> float:
        """Cycles to scan and emit an array-storage block of given span."""
        return span_elements * self.array_flush_cycles_per_element

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert cycles to wall-clock nanoseconds at the model clock."""
        return cycles / self.clock_ghz
