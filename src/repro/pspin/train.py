"""Packet-train fast path: vectorized simulation of uncontended bursts.

A :class:`PacketTrain` is a struct-of-arrays description of a contiguous
same-allreduce packet burst (the whole ingress stream of one switch-level
allreduce in the common case): arrival times, block ids, ingress ports,
and a dense ``(hosts, blocks, elements)`` payload cube.

When a train is injected into an otherwise idle switch
(:meth:`repro.pspin.switch.PsPINSwitch.inject_train`), the
:class:`TrainRunner` computes dispatch/aggregation/egress timing
analytically — one lean per-subset sweep over arrival offsets plus a
handler-specific *train kernel* — instead of pushing one heap event, one
``HandlerContext`` and one handler call per packet through the
discrete-event engine.  Aggregation itself runs as whole-train numpy
block reductions where the operator's algebra allows, and as an exact
order-replay otherwise, so payloads are **bitwise identical** to the
per-packet path.

The fast path is *pinned to parity*: it only engages when its timing
model provably coincides with the per-packet DES —

* the switch is pristine and the simulator heap empty (the train is the
  only traffic);
* hierarchical FCFS scheduling with ``subset_size == cores_per_cluster``
  (core subsets == clusters, so subsets share no mutable state: no
  remote-L1 penalties, per-subset i-caches and L1s);
* the L2 packet memory never fills (validated *post hoc* against the
  exact occupancy profile — the first would-be deferral aborts);
* no working-memory admission stalls, drops, or incomplete blocks.

The moment any of these fail, :func:`try_run_train` abandons the
(side-effect-free) fast computation and the caller transparently falls
back to per-packet injection — contention, admission-queueing and drops
always take the existing DES path.

Kernels for the dense aggregation designs live in
:mod:`repro.core.fastpath` and register themselves here via
:func:`register_train_kernel`.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.pspin.packets import HEADER_BYTES, SwitchPacket
from repro.pspin.parser import OPAQUE

if TYPE_CHECKING:  # pragma: no cover
    from repro.pspin.switch import PsPINSwitch


class FastPathAbort(Exception):
    """Internal: the fast path cannot reproduce the DES for this train."""


#: handler type -> kernel factory ``f(handler, switch, train, name)``.
TRAIN_KERNELS: dict[type, Callable] = {}


def register_train_kernel(handler_cls: type, factory: Callable) -> None:
    """Register the train kernel for one handler class."""
    TRAIN_KERNELS[handler_cls] = factory


def fast_path_env_enabled() -> bool:
    """Process-wide kill switch: ``REPRO_FASTPATH=0`` disables the fast
    path everywhere (the parity suite and the benchmark harness use it
    to drive the per-packet baseline)."""
    return os.environ.get("REPRO_FASTPATH", "1") not in ("0", "false", "no")


class PacketTrain:
    """A same-allreduce packet burst in struct-of-arrays form.

    ``data`` is the dense payload cube ``(hosts, blocks, elements)``;
    packet ``i`` carries ``data[ports[i], block_ids[i]]`` (a view — the
    same arrays the per-packet injection path would carry).
    """

    __slots__ = ("allreduce_id", "times", "block_ids", "ports", "data", "_packets")

    def __init__(self, allreduce_id: int, times, block_ids, ports, data) -> None:
        self.times = np.asarray(times, dtype=np.float64)
        self.block_ids = np.asarray(block_ids, dtype=np.int64)
        self.ports = np.asarray(ports, dtype=np.int64)
        if not (len(self.times) == len(self.block_ids) == len(self.ports)):
            raise ValueError("times/block_ids/ports must have equal length")
        if data.ndim != 3:
            raise ValueError("data must be (hosts, blocks, elements)")
        self.allreduce_id = allreduce_id
        self.data = data
        self._packets: Optional[list[SwitchPacket]] = None

    @property
    def n_packets(self) -> int:
        return len(self.times)

    @property
    def payload_nbytes(self) -> int:
        """Per-packet payload bytes (uniform across the train)."""
        return int(self.data.shape[2] * self.data.dtype.itemsize)

    @property
    def wire_bytes(self) -> int:
        return self.payload_nbytes + HEADER_BYTES

    def packets(self) -> list[SwitchPacket]:
        """The equivalent :class:`SwitchPacket` objects, injection order
        (built lazily; the fast path itself never needs them)."""
        if self._packets is None:
            data = self.data
            aid = self.allreduce_id
            self._packets = [
                SwitchPacket(
                    allreduce_id=aid,
                    block_id=b,
                    port=p,
                    payload=data[p, b],
                )
                for b, p in zip(self.block_ids.tolist(), self.ports.tolist())
            ]
        return self._packets


def try_run_train(switch: "PsPINSwitch", train: PacketTrain) -> bool:
    """Attempt the analytic fast path; True iff it committed.

    Never mutates the switch unless the whole train validated, so the
    caller can fall back to per-packet injection on False.
    """
    from repro.pspin.scheduler import HierarchicalFCFSScheduler

    if train.n_packets == 0:
        return False
    sim = switch.sim
    if sim._heap or sim.now > float(train.times[0]):
        return False                      # other traffic in flight
    if switch.egress_callback is not None:
        return False                      # egress feeds live events
    scheduler = switch.scheduler
    if not isinstance(scheduler, HierarchicalFCFSScheduler):
        return False
    if scheduler.subset_size != switch.config.cores_per_cluster:
        return False                      # subsets would share a cluster
    if (
        switch._first_arrival is not None
        or switch.telemetry.packets_in.value
        or scheduler.queued()
        or switch._admission_queue
        or scheduler._block_to_subset
    ):
        return False                      # not pristine
    handler_name = switch.parser.classify_allreduce(train.allreduce_id)
    if handler_name is OPAQUE:
        # Un-introspectable rules: probe every packet like the DES would.
        packets = train.packets()
        classify = switch.parser.classify
        handler_name = classify(packets[0])
        if any(classify(pkt) != handler_name for pkt in packets):
            return False
    if handler_name is None:
        return False
    handler = switch._handlers.get(handler_name)
    if handler is None:
        return False
    factory = TRAIN_KERNELS.get(type(handler))
    if factory is None:
        return False
    try:
        kernel = factory(handler, switch, train, handler_name)
        runner = TrainRunner(switch, train, handler_name, kernel)
        runner.simulate()
    except FastPathAbort:
        return False
    runner.commit()
    return True


def replay_region_profile(region, events: list[tuple[float, int]]) -> None:
    """Load a (time, delta) *call-order* sequence into a MemoryRegion,
    reproducing the accounting the per-packet path would leave behind
    (used/peak bytes and the clamped time-weighted integral — handlers
    book releases eagerly at future timestamps, so call order, not time
    order, is what the region saw)."""
    used = region.used_bytes
    peak = region.peak_bytes
    weighted = region._weighted_sum
    last_t = region._last_time
    for t, delta in events:
        if t > last_t:
            weighted += used * (t - last_t)
            last_t = t
        used += delta
        if used > peak:
            peak = used
    region.used_bytes = used
    region.peak_bytes = peak
    region._weighted_sum = weighted
    region._last_time = last_t


class _SubsetState:
    """Mini-DES state for one core subset (== one cluster)."""

    __slots__ = (
        "subset",
        "arr_idx",
        "arr_times",
        "arr_blocks",
        "arr_ports",
        "busy",
        "pending",
        "handlers_run",
        "busy_cycles",
        "comp_seq",
        "warm",
    )

    def __init__(self, subset: int, n_slots: int, warm: bool) -> None:
        self.subset = subset
        self.arr_idx: list[int] = []
        self.arr_times: list[float] = []
        self.arr_blocks: list[int] = []
        self.arr_ports: list[int] = []
        self.busy = [0.0] * n_slots
        self.pending = [False] * n_slots
        self.handlers_run = [0] * n_slots
        self.busy_cycles = [0.0] * n_slots
        self.comp_seq = 0
        self.warm = warm


class TrainRunner:
    """Exact per-subset replication of the switch event loop for one
    uncontended train, with the per-event Python machinery stripped.

    The simulation phase computes timing and telemetry only (payload
    values never affect dense handler timing); the payload reductions
    run once, vectorized, at commit time.
    """

    def __init__(
        self, switch: "PsPINSwitch", train: PacketTrain, handler_name: str, kernel
    ) -> None:
        self.switch = switch
        self.train = train
        self.handler_name = handler_name
        self.kernel = kernel
        cfg = switch.config
        self.n_subsets = switch.scheduler.n_subsets
        self.n_slots = cfg.subset_size
        self.icache_fill = cfg.cost_model.icache_fill_cycles
        # Outputs of the simulation phase --------------------------------
        self.icache_fills = 0
        self.handler_invocations = 0
        self.busy_total = 0.0
        self.wait_total = 0.0
        self.l2_release_times: list[float] = []
        #: Per-dispatch records (instant + tie-break keys) for the
        #: queued-packets gauge reconstruction.
        self.disp_t: list[float] = []
        self.disp_p: list[int] = []
        self.disp_s: list[int] = []
        self.last_completion = 0.0
        self.end_time = 0.0
        self.subsets: list[_SubsetState] = []
        self.block_subset: dict[int, int] = {}
        self.n_blocks_seen = 0

    # ------------------------------------------------------------------
    def _assign_subsets(self) -> None:
        """Round-robin block -> subset on first sight, arrival order
        (exactly :class:`HierarchicalFCFSScheduler`'s policy)."""
        switch = self.switch
        train = self.train
        self.subsets = [
            _SubsetState(
                s, self.n_slots, switch.clusters[s].icache_warm(self.handler_name)
            )
            for s in range(self.n_subsets)
        ]
        blocks = train.block_ids
        # First-sight order == order of first occurrence in the stream.
        _uniq, first_pos, inverse = np.unique(
            blocks, return_index=True, return_inverse=True
        )
        rank_by_uniq = np.empty(len(first_pos), dtype=np.int64)
        rank_by_uniq[np.argsort(first_pos, kind="stable")] = np.arange(len(first_pos))
        packet_subset = rank_by_uniq[inverse] % self.n_subsets
        self.n_blocks_seen = len(first_pos)
        self.block_subset = {
            int(b): int(rank_by_uniq[i]) % self.n_subsets
            for i, b in enumerate(_uniq.tolist())
        }
        # Stable grouping by subset keeps each group in stream order.
        grouped = np.argsort(packet_subset, kind="stable")
        bounds = np.searchsorted(packet_subset[grouped], np.arange(self.n_subsets + 1))
        for s, st in enumerate(self.subsets):
            idx = grouped[bounds[s] : bounds[s + 1]]
            if len(idx):
                st.arr_idx = idx.tolist()
                st.arr_times = train.times[idx].tolist()
                st.arr_blocks = blocks[idx].tolist()
                st.arr_ports = train.ports[idx].tolist()

    # ------------------------------------------------------------------
    def simulate(self) -> None:
        self._assign_subsets()
        self.kernel.set_block_clusters(self.block_subset)
        run = (
            self._run_subset
            if getattr(self.kernel, "has_continuations", False)
            else self._run_subset_simple
        )
        done_arrivals: list[list[float]] = []
        done_packets = 0
        capacity = self.switch.memories.l2_packet.capacity_bytes
        wire = self.train.wire_bytes
        for st in self.subsets:
            if not st.arr_idx:
                continue
            run(st)
            done_arrivals.append(st.arr_times)
            done_packets += len(st.arr_times)
            # Incremental lower-bound check: the simulated subsets'
            # packets alone (a pointwise lower bound on occupancy) must
            # already fit the L2 input buffers — a contended train
            # aborts after a fraction of the sweep instead of at the
            # end.  Skipped while the simulated packets could not fill
            # the buffers even if they all overlapped.
            if done_packets * wire > capacity:
                self._check_l2(done_arrivals, self.l2_release_times)
        self.kernel.finish_check()
        self._validate_l2()
        self.end_time = max(
            float(self.train.times[-1]),
            max(self.l2_release_times, default=0.0),
            self.last_completion,
        )

    def _run_subset_simple(self, st: _SubsetState) -> None:
        """Heap-free sweep for kernels without continuations.

        Completion events of non-extending handlers only ever free a
        core, release L2, and hand the core to the queue head — all of
        which derive from the core ``busy`` times: a queued packet
        dispatches at ``min(busy)`` (the completion instant, priority 0)
        on the first free core index, exactly the event loop's order.
        """
        kernel_process = self.kernel.process
        busy = st.busy
        handlers_run = st.handlers_run
        busy_cycles = st.busy_cycles
        n_slots = self.n_slots
        slot_range = range(n_slots)
        arr_idx = st.arr_idx
        arr_times = st.arr_times
        arr_blocks = st.arr_blocks
        arr_ports = st.arr_ports
        n_arr = len(arr_idx)
        queue: list[int] = []
        queue_head = 0
        disp_t = self.disp_t
        disp_p = self.disp_p
        disp_s = self.disp_s
        l2_release = self.l2_release_times
        last_completion = self.last_completion
        icache_fill = self.icache_fill
        invocations = 0
        busy_total = 0.0
        wait_total = 0.0
        warm = st.warm
        inf = float("inf")
        arr_i = 0
        while arr_i < n_arr or queue_head < len(queue):
            next_arr = arr_times[arr_i] if arr_i < n_arr else inf
            if queue_head < len(queue):
                # Queued head dispatches at the next completion instant
                # (its own arrival precedes every core's busy time).
                now = min(busy)
                if now <= next_arr:
                    k = queue[queue_head]
                    queue_head += 1
                    if queue_head > 512:
                        del queue[:queue_head]
                        queue_head = 0
                    pri, seq = 0, 0
                else:
                    k = arr_i
                    arr_i += 1
                    now = next_arr
                    queue.append(k)
                    continue
            else:
                k = arr_i
                arr_i += 1
                now = next_arr
                pri, seq = 1, 2 * arr_idx[k] + 1
            slot = -1
            for s in slot_range:
                if busy[s] <= now:
                    slot = s
                    break
            if slot < 0:
                queue.append(k)
                continue
            start = now
            if not warm:
                warm = True
                start += icache_fill
                self.icache_fills += 1
            finish, wait, _cont = kernel_process(
                arr_blocks[k], arr_ports[k], now, start
            )
            disp_t.append(now)
            disp_p.append(pri)
            disp_s.append(seq)
            busy[slot] = finish
            handlers_run[slot] += 1
            busy_cycles[slot] += finish - now
            invocations += 1
            busy_total += finish - now
            wait_total += wait
            l2_release.append(finish)
            if finish > last_completion:
                last_completion = finish
        st.warm = warm
        self.handler_invocations += invocations
        self.busy_total += busy_total
        self.wait_total += wait_total
        self.last_completion = last_completion

    def _run_subset(self, st: _SubsetState) -> None:
        kernel_process = self.kernel.process
        kernel_resume = self.kernel.resume
        busy = st.busy
        pending = st.pending
        handlers_run = st.handlers_run
        busy_cycles = st.busy_cycles
        comp_heap: list[tuple] = []
        n_slots = self.n_slots
        slot_range = range(n_slots)
        arr_idx = st.arr_idx
        arr_times = st.arr_times
        arr_blocks = st.arr_blocks
        arr_ports = st.arr_ports
        n_arr = len(arr_idx)
        arr_i = 0
        queue_head = 0
        queue: list[int] = []   # indices (into arr_*) awaiting dispatch
        disp_t = self.disp_t
        disp_p = self.disp_p
        disp_s = self.disp_s
        l2_release = self.l2_release_times
        last_completion = self.last_completion
        icache_fill = self.icache_fill
        comp_seq = 0
        invocations = 0
        busy_total = 0.0
        wait_total = 0.0
        inf = float("inf")

        def run_one(k: int, slot: int, now: float, pri: int, seq: int) -> None:
            """Dispatch packet ``k`` on core ``slot`` (DES conventions)."""
            nonlocal comp_seq, invocations, busy_total, wait_total
            start = now
            if not st.warm:
                st.warm = True
                start += icache_fill
                self.icache_fills += 1
            finish, wait, cont = kernel_process(
                arr_blocks[k], arr_ports[k], now, start
            )
            disp_t.append(now)
            disp_p.append(pri)
            disp_s.append(seq)
            busy[slot] = finish
            pending[slot] = cont is not None
            handlers_run[slot] += 1
            busy_cycles[slot] += finish - now
            invocations += 1
            busy_total += finish - now
            wait_total += wait
            heappush(comp_heap, (finish, comp_seq, slot, True, cont))
            comp_seq += 1

        def dispatch(now: float, pri: int, seq: int) -> None:
            nonlocal queue_head
            while queue_head < len(queue):
                slot = -1
                for s in slot_range:
                    if busy[s] <= now and not pending[s]:
                        slot = s
                        break
                if slot < 0:
                    break
                k = queue[queue_head]
                queue_head += 1
                run_one(k, slot, now, pri, seq)
            if queue_head > 512:
                del queue[:queue_head]
                queue_head = 0

        while arr_i < n_arr or comp_heap:
            next_arr = arr_times[arr_i] if arr_i < n_arr else inf
            if comp_heap and comp_heap[0][0] <= next_arr:
                # Completion event (priority 0 beats same-instant
                # arrivals; same-instant completions pop in scheduling
                # order via comp_seq).
                t, _seq, slot, primary, cont = heappop(comp_heap)
                if primary:
                    # Input buffers hold queueing + service of the
                    # packet handler; extensions work in L1 only.
                    l2_release.append(t)
                extended = False
                if cont is not None:
                    nxt = kernel_resume(cont, t)
                    if nxt is not None:
                        finish, cont2 = nxt
                        busy[slot] = finish
                        pending[slot] = cont2 is not None
                        handlers_run[slot] += 1      # occupy() counts these
                        busy_cycles[slot] += finish - t
                        busy_total += finish - t
                        heappush(
                            comp_heap, (finish, comp_seq, slot, False, cont2)
                        )
                        comp_seq += 1
                        extended = True
                    else:
                        pending[slot] = False
                if not extended and t > last_completion:
                    last_completion = t
                if queue_head < len(queue):
                    dispatch(t, 0, 0)
            else:
                k = arr_i
                arr_i += 1
                t = arr_times[k]
                if queue_head == len(queue):
                    # Uncontended steady state: straight to a free core.
                    slot = -1
                    for s in slot_range:
                        if busy[s] <= t and not pending[s]:
                            slot = s
                            break
                    if slot >= 0:
                        run_one(k, slot, t, 1, 2 * arr_idx[k] + 1)
                    else:
                        queue.append(k)
                else:
                    queue.append(k)
                    dispatch(t, 1, 2 * arr_idx[k] + 1)
        st.comp_seq = comp_seq
        self.handler_invocations += invocations
        self.busy_total += busy_total
        self.wait_total += wait_total
        self.last_completion = last_completion

    # ------------------------------------------------------------------
    def _l2_profile(self, arrivals, releases):
        wire = self.train.wire_bytes
        n_a, n_r = len(arrivals), len(releases)
        times = np.concatenate([arrivals, np.asarray(releases)])
        deltas = np.concatenate(
            [np.full(n_a, wire, dtype=np.int64), np.full(n_r, -wire, dtype=np.int64)]
        )
        # Releases (priority 0) settle before same-instant arrivals.
        pri = np.concatenate(
            [np.ones(n_a, dtype=np.int8), np.zeros(n_r, dtype=np.int8)]
        )
        order = np.lexsort((pri, times))
        return times[order], np.cumsum(deltas[order])

    def _check_l2(self, arrival_lists, releases) -> None:
        arrivals = np.concatenate([np.asarray(a) for a in arrival_lists])
        _times, occ = self._l2_profile(arrivals, releases)
        if int(occ.max(initial=0)) > self.switch.memories.l2_packet.capacity_bytes:
            raise FastPathAbort("L2 packet memory would back-pressure")

    def _validate_l2(self) -> None:
        """Exact L2 packet-memory occupancy check: the DES would defer
        (or drop) the first arrival that does not fit; any overshoot
        invalidates the analytic timing, so the fast path aborts."""
        n = self.train.n_packets
        if len(self.l2_release_times) != n:
            raise FastPathAbort("not every packet completed")
        times, occ = self._l2_profile(self.train.times, self.l2_release_times)
        if int(occ.max(initial=0)) > self.switch.memories.l2_packet.capacity_bytes:
            raise FastPathAbort("L2 packet memory would back-pressure")
        self._l2_occ = occ
        self._l2_times = times

    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Apply the computed run to the switch (telemetry, memories,
        cores, egress) and execute the payload programs."""
        switch = self.switch
        train = self.train
        tel = switch.telemetry
        n = train.n_packets
        wire = train.wire_bytes

        tel.packets_in.add(n)
        tel.bytes_in.add(n * wire)
        tel.handler_invocations.add(self.handler_invocations)
        tel.busy_cycles.add(self.busy_total)
        tel.contention_wait_cycles.add(self.wait_total)
        tel.icache_fills.add(self.icache_fills)

        # Input-buffer gauge + L2 region accounting --------------------
        l2 = switch.memories.l2_packet
        occ = self._l2_occ
        ts = self._l2_times
        tel.input_buffer_bytes.bulk_record_arrays(ts, occ)
        l2.peak_bytes = max(l2.peak_bytes, int(occ.max(initial=0)))
        l2.used_bytes = int(occ[-1]) if len(occ) else 0
        if len(ts):
            widths = np.diff(ts, append=ts[-1])
            l2._weighted_sum += float(np.dot(occ, widths))
            l2._last_time = float(ts[-1])

        self._commit_queue_gauge()

        # Cores + i-caches ---------------------------------------------
        for st in self.subsets:
            cluster = switch.clusters[st.subset]
            if st.warm:
                cluster.icache_load(self.handler_name)
            for s, hpu in enumerate(cluster.hpus):
                hpu.busy_until = max(hpu.busy_until, st.busy[s])
                hpu.handlers_run += st.handlers_run[s]
                hpu.busy_cycles += st.busy_cycles[s]

        # Scheduler bookkeeping (all blocks mapped, then released).
        switch.scheduler._next_subset = self.n_blocks_seen % self.n_subsets

        # Kernel state: L1 accounting, working-memory gauge, handler
        # counters, and the payload programs -> egress packets.
        emissions, out_bytes = self.kernel.commit()   # (time, block) sorted
        switch.egress.extend(emissions)
        tel.packets_out.add(len(emissions))
        tel.bytes_out.add(out_bytes)

        switch._first_arrival = float(train.times[0])
        switch._last_completion = self.last_completion
        sim = switch.sim
        if self.end_time > sim.now:
            sim.now = self.end_time

    def _commit_queue_gauge(self) -> None:
        """Reconstruct the queued-packets gauge from static enqueue
        instants (+1 at each arrival) and the recorded dispatch instants
        (-1 each, ordered after their triggering event's enqueues).
        Sample positions differ from the per-packet path only by
        zero-width intermediate points, so peak and time-weighted mean
        are identical."""
        train = self.train
        n = train.n_packets
        times = np.concatenate([train.times, np.asarray(self.disp_t)])
        pri = np.concatenate(
            [np.ones(n, dtype=np.int8), np.asarray(self.disp_p, dtype=np.int8)]
        )
        seq = np.concatenate(
            [2 * np.arange(n, dtype=np.int64), np.asarray(self.disp_s, dtype=np.int64)]
        )
        delta = np.concatenate(
            [np.ones(n, dtype=np.int64), np.full(n, -1, dtype=np.int64)]
        )
        order = np.lexsort((seq, pri, times))
        values = np.cumsum(delta[order])
        self.switch.telemetry.queued_packets.bulk_record_arrays(
            times[order], values
        )
