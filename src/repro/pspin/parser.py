"""Packet parser: configurable match rules -> handler dispatch.

Paper Sec. 3: "After a packet is received from any of the switch ports,
its headers are processed by a parser that, based on configurable
matching rules, decides if the packet must be processed by a processing
unit (or sent directly to the routing tables unit), and which function
must be executed on the packet."

The control plane (our ``repro.core.manager.NetworkManager``) installs
one rule per active allreduce.  Rules match on the packet's allreduce
id — the behavioral analogue of matching EtherType / IP option headers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.pspin.packets import SwitchPacket

#: Sentinel: the rule table cannot be classified structurally.
OPAQUE = object()


@dataclass
class MatchRule:
    """One parser rule: predicate -> handler name (+ priority).

    Lower ``priority`` wins, mirroring longest-prefix-match tie-breaking
    in real parsers.

    ``allreduce_id`` declares (when not None) that the predicate matches
    exactly the packets of that allreduce — the structured form of the
    rule :meth:`PacketParser.install_allreduce` creates.  The packet-
    train fast path uses it to classify a whole same-allreduce train in
    O(rules) instead of probing the opaque predicate per packet.
    """

    name: str
    predicate: Callable[[SwitchPacket], bool]
    handler: str
    priority: int = 100
    allreduce_id: "int | None" = None


class PacketParser:
    """Ordered rule table; first (highest-priority) match dispatches."""

    def __init__(self) -> None:
        self._rules: list[MatchRule] = []

    def install(self, rule: MatchRule) -> None:
        """Install a rule; keeps the table priority-sorted and stable."""
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.priority)

    def uninstall(self, name: str) -> bool:
        """Remove a rule by name.  Returns True if one was removed."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.name != name]
        return len(self._rules) != before

    def install_allreduce(self, allreduce_id: int, handler: str = "flare") -> None:
        """Convenience: match packets of one allreduce id."""
        self.install(
            MatchRule(
                name=f"allreduce-{allreduce_id}",
                predicate=lambda p, _id=allreduce_id: p.allreduce_id == _id,
                handler=handler,
                priority=10,
                allreduce_id=allreduce_id,
            )
        )

    def classify(self, packet: SwitchPacket) -> Optional[str]:
        """Return the handler name for this packet, or None (bypass).

        None means the packet "does not need additional processing" and
        goes straight to the routing tables (Sec. 3 fn. 1).
        """
        for rule in self._rules:
            if rule.predicate(packet):
                return rule.handler
        return None

    def classify_allreduce(self, allreduce_id: int) -> "str | None | object":
        """Classify *every* packet of one allreduce without probing.

        Returns the handler name (or None for bypass) when the rule
        table is made of structured allreduce rules up to the first
        match; returns :data:`OPAQUE` when an un-introspectable rule
        could fire first, in which case the caller must fall back to
        per-packet :meth:`classify`.
        """
        for rule in self._rules:
            if rule.allreduce_id is None:
                return OPAQUE
            if rule.allreduce_id == allreduce_id:
                return rule.handler
        return None

    @property
    def rules(self) -> tuple[MatchRule, ...]:
        return tuple(self._rules)
