"""Time-series telemetry for switch experiments.

Collects the quantities the paper plots: input-buffer occupancy (Fig. 7
center), working-memory occupancy (Fig. 7 right), queue lengths (Fig. 5),
per-HPU utilization, and wire counters (bytes in/out, for Fig. 14's
extra-traffic panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """Monotonic counter with a helper for rate computation."""

    value: float = 0.0

    def add(self, amount: float) -> None:
        self.value += amount


class GaugeSeries:
    """A sampled gauge: records (time, value) transitions, tracks peak.

    Stores transitions rather than fixed-interval samples, so peak and
    time-weighted mean are exact regardless of event spacing.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[float, float]] = []
        self.peak: float = 0.0
        self._weighted = 0.0
        self._last_t = 0.0
        self._last_v = 0.0

    def record(self, time: float, value: float) -> None:
        if time < self._last_t:
            raise ValueError(f"{self.name}: time went backwards ({time} < {self._last_t})")
        self._weighted += self._last_v * (time - self._last_t)
        self._last_t, self._last_v = time, value
        self.peak = max(self.peak, value)
        self.samples.append((time, value))

    def bulk_record_arrays(self, times, values) -> None:
        """Append a pre-sorted run of samples in one vectorized pass
        (the packet-train fast path commits its reconstructed series
        this way): peak and the time-weighted integral are computed
        with array ops, equivalent to per-sample :meth:`record` calls."""
        import numpy as np

        n = len(times)
        if n == 0:
            return
        t0 = float(times[0])
        if t0 < self._last_t:
            raise ValueError(
                f"{self.name}: time went backwards ({t0} < {self._last_t})"
            )
        self._weighted += self._last_v * (t0 - self._last_t)
        if n > 1:
            self._weighted += float(np.dot(values[:-1], np.diff(times)))
        self._last_t = float(times[-1])
        self._last_v = float(values[-1])
        self.peak = max(self.peak, float(values.max()))
        self.samples.extend(zip(times.tolist(), values.tolist()))

    def mean(self, until: float | None = None) -> float:
        """Time-weighted mean up to ``until`` (default: last sample)."""
        end = self._last_t if until is None else until
        if end <= 0:
            return 0.0
        extra = self._last_v * max(0.0, end - self._last_t)
        return (self._weighted + extra) / end

    @property
    def current(self) -> float:
        return self._last_v


class DeltaGauge:
    """A gauge fed by (time, delta) events that may arrive out of order.

    Handlers are evaluated eagerly at dispatch time but release working
    memory at *future* timestamps; this gauge therefore accumulates
    deltas and reconstructs the exact time profile (peak, time-weighted
    mean) lazily by sorting.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.events: list[tuple[float, float]] = []
        self._cache_len = -1
        self._cache: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def add(self, time: float, delta: float) -> None:
        self.events.append((time, delta))

    def _profile(self) -> tuple[float, float, float]:
        """Returns (peak, time_weighted_mean, final_value)."""
        if self._cache_len == len(self.events):
            return self._cache
        events = sorted(self.events, key=lambda e: e[0])
        value = 0.0
        peak = 0.0
        weighted = 0.0
        last_t = 0.0
        for t, d in events:
            weighted += value * (t - last_t)
            last_t = t
            value += d
            peak = max(peak, value)
        mean = weighted / last_t if last_t > 0 else 0.0
        self._cache = (peak, mean, value)
        self._cache_len = len(self.events)
        return self._cache

    @property
    def peak(self) -> float:
        return self._profile()[0]

    def mean(self) -> float:
        return self._profile()[1]

    @property
    def current(self) -> float:
        return self._profile()[2]


@dataclass
class Telemetry:
    """Bundle of counters/gauges one switch run produces."""

    input_buffer_bytes: GaugeSeries = field(default_factory=lambda: GaugeSeries("input_buffer_bytes"))
    working_memory_bytes: DeltaGauge = field(default_factory=lambda: DeltaGauge("working_memory_bytes"))
    queued_packets: GaugeSeries = field(default_factory=lambda: GaugeSeries("queued_packets"))
    bytes_in: Counter = field(default_factory=Counter)
    bytes_out: Counter = field(default_factory=Counter)
    packets_in: Counter = field(default_factory=Counter)
    packets_out: Counter = field(default_factory=Counter)
    handler_invocations: Counter = field(default_factory=Counter)
    busy_cycles: Counter = field(default_factory=Counter)
    contention_wait_cycles: Counter = field(default_factory=Counter)
    icache_fills: Counter = field(default_factory=Counter)
    dropped_packets: Counter = field(default_factory=Counter)
    deferred_arrivals: Counter = field(default_factory=Counter)
    stalled_admissions: Counter = field(default_factory=Counter)

    def utilization(self, n_cores: int, makespan_cycles: float) -> float:
        """Fraction of core-cycles spent in handlers over the run."""
        if makespan_cycles <= 0:
            return 0.0
        return self.busy_cycles.value / (n_cores * makespan_cycles)

    def achieved_tbps(self, makespan_cycles: float, clock_ghz: float = 1.0) -> float:
        """Goodput over the run: ingress bytes / makespan, in Tbps."""
        if makespan_cycles <= 0:
            return 0.0
        seconds = makespan_cycles / (clock_ghz * 1e9)
        return self.bytes_in.value * 8.0 / seconds / 1e12
