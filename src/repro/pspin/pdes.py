"""Engine backends: sequential DES vs sharded conservative PDES.

The sequential :class:`~repro.pspin.engine.Simulator` stays the default
engine and the parity oracle; this module is the seam that lets the
fabric (and the bench harness) swap in the sharded parallel engine
without any caller-visible API change:

``build_engine(topology, workers=N, ...)`` returns a ``(sim, net)``
pair.  ``workers=0`` (the default) builds the classic pair.  ``workers
>= 1`` partitions the fabric (``repro.network.shard``), spins the
window-synchronized coordinator (``repro.network.parallel``), and
returns a :class:`ShardedSimulator` whose ``run``/``run_stoppable``/
``step`` drive the PDES barrier protocol — every existing driver loop
(``Fabric.run_until``, service engine, benches) works unchanged.

Synchronization strategies are pluggable via ``SYNC_STRATEGIES``
(currently ``"window"``: conservative time-stepping with the fabric's
minimum link latency as lookahead; null-message CMB is a documented
extension point).  Any reason the sharded engine cannot engage — no
clean cut, more workers than edge switches, a non-cacheable routing
policy, an armed fault injector — degrades *gracefully*: a
``RuntimeWarning`` and the sequential engine, never an error.

Conservative window protocol (coordinator side)
-----------------------------------------------
The coordinator owns the driver loop.  Each barrier it computes the
global minimum next-event time ``T0`` (its own heap, worker-advertised
next events, undelivered cross-shard batches) and grants everyone the
window ``[T0, T0 + lookahead)``.  Any message generated at ``t >= T0``
reaches another shard no earlier than ``t + lookahead``, so every
event strictly inside the window is safe to execute without further
coordination — the classic lookahead argument, with the window length
fixed at exactly the lookahead.  When all workers are idle the
coordinator *free-runs* its local heap (no barriers) until it next
offloads work across a shard boundary — the dynamic ``local_bound``
below — which makes coordinator-heavy phases (plan execution, service
callbacks) cost nothing extra.
"""

from __future__ import annotations

import math
import warnings

from repro.pspin.engine import _ARGS, _CALLBACK, _TIME, Simulator

try:  # pragma: no cover - trivial import guard
    from heapq import heappop
except ImportError:  # pragma: no cover
    raise


class ShardedSimulator(Simulator):
    """Drop-in :class:`Simulator` that interleaves local execution with
    PDES window barriers run by an attached coupler (the sharded
    network simulator).

    Uncoupled — or after the coupler disengages (fault recall, worker
    shutdown) — it behaves exactly like the sequential engine.
    """

    def __init__(self) -> None:
        super().__init__()
        self._coupler = None
        #: Granted local window bound (exclusive); persists across
        #: ``stop_requested`` interruptions so a window resumes rather
        #: than re-barriers.
        self._window_stop: float | None = None
        #: Dynamic bound during free-run: earliest timestamp offloaded
        #: across a shard boundary.  Events at or past it need a
        #: barrier first.
        self.local_bound: float = math.inf

    def attach_coupler(self, coupler) -> None:
        self._coupler = coupler

    # ------------------------------------------------------------------
    # Local window execution
    # ------------------------------------------------------------------
    def _run_local(self, stop: float, stoppable: bool) -> bool:
        """Run events with ``time < min(stop, local_bound)``; returns
        True iff interrupted by ``stop_requested``."""
        heap = self._heap
        processed = 0
        stopped = False
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                heappop(heap)
                continue
            t = entry[_TIME]
            if t >= stop or t >= self.local_bound:
                break
            heappop(heap)
            self.now = t
            entry[_CALLBACK](*entry[_ARGS])
            processed += 1
            if stoppable and self.stop_requested:
                stopped = True
                break
        self._events_processed += processed
        return stopped

    # ------------------------------------------------------------------
    # Driver API overrides
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        c = self._coupler
        if c is None or not c.engaged:
            return super().run(until)
        while True:
            if self._window_stop is not None:
                self._run_local(self._window_stop, stoppable=False)
                self._window_stop = None
            if not c.engaged:
                return super().run(until)
            nxt = c.advance(until)
            if not c.engaged:
                return super().run(until)
            if nxt is None:
                break
            self._window_stop = nxt
        if until is not None and until > self.now:
            self.now = until

    def run_stoppable(self) -> bool:
        c = self._coupler
        if c is None or not c.engaged:
            return super().run_stoppable()
        self.stop_requested = False
        while True:
            if self._window_stop is not None:
                if self._run_local(self._window_stop, stoppable=True):
                    return True
                self._window_stop = None
            if not c.engaged:
                return super().run_stoppable()
            nxt = c.advance(None)
            if not c.engaged:
                return super().run_stoppable()
            if nxt is None:
                return False
            self._window_stop = nxt

    def step(self) -> bool:
        c = self._coupler
        if c is None or not c.engaged:
            return super().step()
        while True:
            if self._window_stop is not None:
                t = self.peek_time()
                if t is not None and t < self._window_stop and t < self.local_bound:
                    return super().step()
                self._window_stop = None
            if not c.engaged:
                return super().step()
            nxt = c.advance(None)
            if not c.engaged:
                return super().step()
            if nxt is None:
                return False
            self._window_stop = nxt

    # ------------------------------------------------------------------
    # Introspection (merged across shards)
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        local = super().pending
        c = self._coupler
        if c is None or not c.engaged:
            return local
        return local + c.remote_pending()

    @property
    def events_processed(self) -> int:
        c = self._coupler
        extra = c.remote_events() if c is not None else 0
        return self._events_processed + extra


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def _sequential(topology, router, routing_seed, arbitration):
    from repro.network.simulator import NetworkSimulator

    sim = Simulator()
    net = NetworkSimulator(
        topology, router=router, routing_seed=routing_seed,
        sim=sim, arbitration=arbitration,
    )
    return sim, net


def _window_backend(
    topology, router, routing_seed, arbitration, workers, coordinator_hosts
):
    from repro.network.parallel import ShardedNetworkSimulator
    from repro.network.routing import build_router
    from repro.network.shard import ShardingError, plan_shards

    policy = build_router(router, topology, seed=routing_seed)
    if not policy.cacheable:
        raise ShardingError(
            f"routing policy {policy.name!r} consults live cross-shard link "
            "state and cannot be partitioned"
        )
    plan = plan_shards(topology, workers, coordinator_hosts=coordinator_hosts)
    sim = ShardedSimulator()
    net = ShardedNetworkSimulator(
        topology,
        router=policy,
        routing_seed=routing_seed,
        sim=sim,
        arbitration=arbitration,
        plan=plan,
    )
    return sim, net


#: Pluggable conservative-sync strategies for the sharded engine.
#: ``"window"`` is lookahead-wide time-stepping; null-message CMB would
#: register here.
SYNC_STRATEGIES = {"window": _window_backend}


def build_engine(
    topology,
    workers: int = 0,
    router=None,
    routing_seed: int = 0,
    arbitration: str = "wfq",
    coordinator_hosts: bool = True,
    sync: str = "window",
):
    """Build a ``(sim, net)`` engine pair, sharded when requested.

    Every sharding failure degrades to the sequential engine with a
    :class:`RuntimeWarning` naming the reason — callers never have to
    guard ``workers=N`` against topology shape.
    """
    if workers and workers > 0:
        try:
            strategy = SYNC_STRATEGIES[sync]
        except KeyError:
            raise ValueError(
                f"unknown sync strategy {sync!r}; "
                f"available: {tuple(sorted(SYNC_STRATEGIES))}"
            ) from None
        try:
            return strategy(
                topology, router, routing_seed, arbitration,
                workers, coordinator_hosts,
            )
        except Exception as exc:  # ShardingError and friends
            from repro.network.shard import ShardingError

            if not isinstance(exc, ShardingError):
                raise
            warnings.warn(
                f"sharded engine unavailable ({exc}); "
                "falling back to the sequential engine",
                RuntimeWarning,
                stacklevel=2,
            )
    return _sequential(topology, router, routing_seed, arbitration)
