"""Dense-span array block storage (paper Sec. 7).

"For denser data, Flare uses a contiguous memory buffer of the size of
the block.  From a computational perspective, this is the design with
the lowest latency, because the handler simply needs to store the
element in a specific position.  However, when the reduction is
completed, the buffer needs to be entirely scanned and only the non-zero
elements inserted in the packet.  Moreover, the memory consumption will
be equal to that of the dense case."

No spilling, no extra traffic — but memory ∝ block span (1/density),
which is why Fig. 14 has no array bars at 1% density: the 600 KiB-per-
block arrays of all concurrently processed blocks do not fit in Flare's
working memory (we reproduce that as an explicit capacity failure).
"""

from __future__ import annotations

import numpy as np


class ArrayStorage:
    """Per-block aggregation state backed by a span-sized dense array."""

    kind = "array"

    def __init__(self, span: int, dtype: str = "float32", op=None) -> None:
        if span < 1:
            raise ValueError("span must be >= 1")
        self.span = span
        self._values = np.zeros(span, dtype=dtype)
        self._touched = np.zeros(span, dtype=bool)
        self._op = op
        self.inserted_elements = 0

    def insert(self, indices: np.ndarray, values: np.ndarray) -> list:
        """Indexed accumulate; O(1) per element, never spills."""
        idx = np.asarray(indices)
        self.inserted_elements += len(idx)
        if self._op is None:
            # Duplicate indices within one packet are legal for sum.
            np.add.at(self._values, idx, values)
        else:
            for i, v in zip(idx, values):
                if self._touched[i]:
                    acc = self._values[i : i + 1]
                    self._op.combine_into(acc, np.asarray([v]))
                else:
                    self._values[i] = v
        self._touched[idx] = True
        return []

    def finalize(self) -> tuple[np.ndarray, np.ndarray, None]:
        """Scan the span, extract non-zeros (the flush cost the cost
        model charges per span element)."""
        mask = self._touched & (self._values != 0)
        indices = np.flatnonzero(mask).astype(np.int32)
        return indices, self._values[indices].copy(), None

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: the dense value array (+1 bit/elem touched
        map, counted at a byte for model simplicity)."""
        return int(self._values.nbytes + self.span)

    @property
    def spilled_bytes(self) -> int:
        return 0

    @property
    def spilled_elements(self) -> int:
        return 0
