"""Sparse aggregation handler (paper Sec. 7).

Differences from the dense handlers:

* **Shard counters** instead of one-packet-per-child: a child may split
  a block over several packets and announces the count in the last one.
* **Storage backends**: a hash table with spill buffer or a dense span
  array (see the storage modules); chosen at install time, with the
  paper's guidance being hash at the (sparser) leaves and array at the
  (denser) root.
* **Mutual exclusion**: sparse inserts mutate shared structures with
  data-dependent access patterns, so the whole per-block update runs in
  one critical section (the paper: sparse aggregation "in most cases
  needs to be executed anyhow in a mutually exclusive way").
* **Spill traffic**: hash-backend spill flushes leave the switch as
  extra packets the moment the buffer fills — Fig. 14's extra-traffic
  metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.blockstate import BlockState
from repro.core.ops import ReductionOp, SUM, get_op
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import HandlerContext, HandlerResult
from repro.sparse.array_storage import ArrayStorage
from repro.sparse.hash_storage import HashStorage
from repro.sparse.models import sparse_elements_per_packet

PARENT_PORT = -1


@dataclass
class SparseHandlerConfig:
    """Install-time parameters for one sparse allreduce on one switch."""

    allreduce_id: int
    n_children: int
    storage: str = "hash"          # "hash" | "array"
    density: float = 0.1           # sizing hint: block span = N / density
    dtype_name: str = "float32"
    packet_bytes: int = 1024
    hash_slots_factor: float = 4.0
    spill_capacity: Optional[int] = None   # default: one packet's worth
    multicast_ports: Optional[list[int]] = None
    #: Working-memory budget per cluster for THIS allreduce.  The paper
    #: statically partitions switch memory across a maximum number of
    #: concurrent allreduces (Sec. 4); 1 MiB L1 partitioned across concurrent allreduces; the default grants half the L1, i.e. two concurrent allreduces per switch.
    l1_budget_bytes: int = 512 * 1024
    op: ReductionOp = field(default_factory=lambda: SUM)

    def __post_init__(self) -> None:
        self.op = get_op(self.op)
        if self.storage not in ("hash", "array"):
            raise ValueError(f"unknown sparse storage {self.storage!r}")
        if not 0 < self.density <= 1:
            raise ValueError("density must be in (0, 1]")

    @property
    def elements_per_packet(self) -> int:
        return sparse_elements_per_packet(self.packet_bytes)

    @property
    def block_span(self) -> int:
        return max(1, int(round(self.elements_per_packet / self.density)))


@dataclass(slots=True)
class _SparseBlockRecord:
    state: BlockState
    storage: object
    home_cluster: int
    lock_free_at: float = 0.0
    memory_bytes: int = 0


class SparseAggregationHandler:
    """Hash- or array-backed sparse block aggregation."""

    def __init__(self, config: SparseHandlerConfig) -> None:
        self.config = config
        self.name = f"flare-sparse-{config.storage}"
        self._blocks: dict[tuple[int, int], _SparseBlockRecord] = {}
        self._budget_used: dict[int, int] = {}   # cluster -> bytes in use
        self.blocks_completed = 0
        self.spilled_bytes_total = 0
        self.peak_block_memory = 0

    # ------------------------------------------------------------------
    def _make_storage(self):
        cfg = self.config
        op = None if cfg.op.name == "sum" else cfg.op
        if cfg.storage == "hash":
            spill_cap = cfg.spill_capacity or cfg.elements_per_packet
            return HashStorage(
                n_slots=max(1, int(cfg.elements_per_packet * cfg.hash_slots_factor)),
                dtype=cfg.dtype_name,
                spill_capacity=spill_cap,
                op=op,
            )
        return ArrayStorage(span=cfg.block_span, dtype=cfg.dtype_name, op=op)

    def _record(self, ctx: HandlerContext) -> _SparseBlockRecord:
        key = ctx.packet.key()
        rec = self._blocks.get(key)
        if rec is None:
            storage = self._make_storage()
            rec = _SparseBlockRecord(
                state=BlockState(key=key, n_children=self.config.n_children),
                storage=storage,
                home_cluster=ctx.cluster.cluster_id,
                memory_bytes=storage.memory_bytes,
            )
            l1 = ctx.switch.clusters[rec.home_cluster].l1
            used = self._budget_used.get(rec.home_cluster, 0)
            over_budget = used + rec.memory_bytes > self.config.l1_budget_bytes
            if over_budget or not l1.allocate(rec.memory_bytes, ctx.dispatch_time):
                raise MemoryError(
                    f"cluster {rec.home_cluster} cannot fit "
                    f"{self.config.storage} storage of {rec.memory_bytes} B "
                    f"for block {key} within this allreduce's "
                    f"{self.config.l1_budget_bytes} B partition "
                    f"(density {self.config.density:.2%}); "
                    "array storage at low density does not fit Flare memory "
                    "(paper Fig. 14: no array bars at 1%)"
                )
            self._budget_used[rec.home_cluster] = used + rec.memory_bytes
            ctx.switch.telemetry.working_memory_bytes.add(
                ctx.dispatch_time, rec.memory_bytes
            )
            self.peak_block_memory = max(self.peak_block_memory, rec.memory_bytes)
            self._blocks[key] = rec
        return rec

    # ------------------------------------------------------------------
    def process(self, ctx: HandlerContext) -> HandlerResult:
        cfg = self.config
        packet = ctx.packet
        if packet.indices is None:
            raise ValueError("sparse handler received a dense packet")
        rec = self._record(ctx)
        cm = ctx.costs

        t = ctx.start_time + cm.handler_dispatch_cycles
        n_elem = len(packet.payload)

        # Everything below runs inside the block's critical section.
        insert_cost = cm.sparse_insert_cycles(n_elem, cfg.storage)
        penalty = (
            1.0
            if ctx.cluster.cluster_id == rec.home_cluster
            else cm.remote_l1_penalty
        )
        flushes = rec.storage.insert(packet.indices, packet.payload)
        hold = insert_cost * penalty + len(flushes) * cm.spill_flush_cycles

        rec.state.mark_sparse(packet.port, packet.last_of_block, packet.shard_count)
        outputs: list[SwitchPacket] = []
        for flush in flushes:
            self.spilled_bytes_total += flush.bytes
            outputs.extend(
                self._emit_sparse(flush.indices, flush.values, packet.block_id)
            )

        completed: Optional[tuple[int, int]] = None
        if rec.state.complete:
            indices, values, residual = rec.storage.finalize()
            if residual is not None:
                self.spilled_bytes_total += residual.bytes
            if cfg.storage == "array":
                hold += cfg.block_span * cm.array_flush_cycles_per_element
            else:
                hold += len(indices) * cm.array_flush_cycles_per_element
            outputs.extend(self._emit_sparse(indices, values, packet.block_id))
            l1 = ctx.switch.clusters[rec.home_cluster].l1
            completed = rec.state.key
            self.blocks_completed += 1

        entry = max(t, rec.lock_free_at)
        wait = entry - t
        finish = entry + hold
        rec.lock_free_at = finish

        if completed is not None:
            l1 = ctx.switch.clusters[rec.home_cluster].l1
            l1.release(rec.memory_bytes, finish)
            ctx.switch.telemetry.working_memory_bytes.add(finish, -rec.memory_bytes)
            self._budget_used[rec.home_cluster] -= rec.memory_bytes
            del self._blocks[completed]

        return HandlerResult(
            finish_time=finish,
            outputs=outputs,
            completed_block=completed,
            wait_cycles=wait,
        )

    # ------------------------------------------------------------------
    def _emit_sparse(
        self, indices: np.ndarray, values: np.ndarray, block_id: int
    ) -> list[SwitchPacket]:
        """Packetize (indices, values) toward the parent (or multicast)."""
        cfg = self.config
        per_packet = cfg.elements_per_packet
        n = len(indices)
        n_shards = max(1, -(-n // per_packet))
        ports = cfg.multicast_ports if cfg.multicast_ports is not None else [PARENT_PORT]
        out: list[SwitchPacket] = []
        for port in ports:
            for s in range(n_shards):
                lo, hi = s * per_packet, min(n, (s + 1) * per_packet)
                out.append(
                    SwitchPacket(
                        allreduce_id=cfg.allreduce_id,
                        block_id=block_id,
                        port=port,
                        payload=values[lo:hi].copy(),
                        indices=indices[lo:hi].copy(),
                        last_of_block=(s == n_shards - 1),
                        shard_count=n_shards,
                    )
                )
        return out

    @property
    def in_flight_blocks(self) -> int:
        return len(self._blocks)
