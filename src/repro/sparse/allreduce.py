"""Switch-level sparse allreduce driver (Fig. 13/14 simulated results).

Mirrors :func:`repro.core.allreduce.run_switch_allreduce` for the sparse
path: generates a sparse workload at a target density, packetizes it
with the Sec. 7 rules, pushes it through the PsPIN switch with the
sparse handler, and reports bandwidth (of *sparsified* bytes), per-block
storage memory, and the extra traffic caused by hash spilling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.staggered import arrival_stream
from repro.pspin.costs import CostModel
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig
from repro.sparse.formats import SparseWorkload, make_sparse_workload, packetize_block
from repro.sparse.handlers import SparseAggregationHandler, SparseHandlerConfig
from repro.sparse.models import SPARSE_ELEMENT_BYTES
from repro.utils.units import parse_size

FULL_CLUSTERS = 64


@dataclass
class SparseAllreduceResult:
    """Outcome of one simulated sparse allreduce on one switch."""

    storage: str
    density: float
    data_bytes: int                  # sparsified bytes per host (approx)
    n_children: int
    n_blocks: int
    sim_clusters: int
    feasible: bool
    makespan_cycles: float = 0.0
    sim_bandwidth_tbps: float = 0.0
    bandwidth_tbps: float = 0.0
    block_memory_bytes: int = 0
    ingress_payload_bytes: int = 0
    egress_payload_bytes: int = 0
    ideal_egress_bytes: int = 0
    spilled_bytes: int = 0
    #: (actual egress - ideal egress) / ideal egress * 100: how much
    #: more traffic leaves the switch than perfect aggregation would
    #: produce ("for 20% data density, spilling doubles the network
    #: traffic" == ~100%).
    extra_traffic_pct: float = 0.0
    contention_wait_cycles: float = 0.0
    blocks_completed: int = 0
    infeasible_reason: str = ""
    outputs: dict[int, np.ndarray] = field(default_factory=dict)

    def summary(self) -> str:
        if not self.feasible:
            return f"sparse-{self.storage} d={self.density:.0%}: INFEASIBLE ({self.infeasible_reason})"
        return (
            f"sparse-{self.storage} d={self.density:.0%}: "
            f"{self.bandwidth_tbps:.2f} Tbps, block mem "
            f"{self.block_memory_bytes / 1024:.1f} KiB, extra traffic "
            f"{self.extra_traffic_pct:.0f}%"
        )


def run_sparse_switch_allreduce(
    data_bytes: int | str,
    density: float,
    storage: str = "hash",
    children: int = 64,
    n_clusters: int = 4,
    cores_per_cluster: int = 8,
    dtype: str = "float32",
    correlation: float = 0.0,
    seed: int = 0,
    packet_bytes: int = 1024,
    hash_slots_factor: float = 4.0,
    cost_model: Optional[CostModel] = None,
    workload: Optional[SparseWorkload] = None,
    jitter: float = 1.0,
    verify: bool = True,
) -> SparseAllreduceResult:
    """Simulate one sparse allreduce through a Flare switch.

    .. deprecated::
        Thin shim over the :mod:`repro.comm` registry
        ("flare_switch_sparse" algorithm); prefer
        ``Communicator.allreduce(..., sparse=True)``.
    """
    warnings.warn(
        "run_sparse_switch_allreduce is deprecated; use repro.comm."
        "Communicator.allreduce(..., algorithm='flare_switch_sparse')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm import legacy_execute

    result = legacy_execute(
        "flare_switch_sparse",
        nbytes=parse_size(data_bytes),
        n_hosts=children,
        dtype=dtype,
        sparse=True,
        density=density,
        params={
            "storage": storage,
            "n_clusters": n_clusters,
            "cores_per_cluster": cores_per_cluster,
            "correlation": correlation,
            "packet_bytes": packet_bytes,
            "hash_slots_factor": hash_slots_factor,
            "cost_model": cost_model,
            "workload": workload,
        },
        execute_args={"seed": seed, "jitter": jitter, "verify": verify},
    )
    return result.raw


def _run_sparse_switch_allreduce(
    data_bytes: int | str,
    density: float,
    storage: str = "hash",
    children: int = 64,
    n_clusters: int = 4,
    cores_per_cluster: int = 8,
    dtype: str = "float32",
    correlation: float = 0.0,
    seed: int = 0,
    packet_bytes: int = 1024,
    hash_slots_factor: float = 4.0,
    cost_model: Optional[CostModel] = None,
    workload: Optional[SparseWorkload] = None,
    jitter: float = 1.0,
    verify: bool = True,
) -> SparseAllreduceResult:
    """Sparse switch-level allreduce implementation.

    ``data_bytes`` is the *sparsified* per-host volume (indices +
    values), matching the paper's "Data Size (Sparsified)" axes.
    """
    data_bytes = parse_size(data_bytes)
    cost_model = cost_model or CostModel()
    elements_per_packet = max(1, packet_bytes // SPARSE_ELEMENT_BYTES)
    n_blocks = max(1, data_bytes // (elements_per_packet * SPARSE_ELEMENT_BYTES))

    if workload is None:
        workload = make_sparse_workload(
            n_hosts=children,
            n_blocks=n_blocks,
            elements_per_packet=elements_per_packet,
            density=density,
            dtype=dtype,
            seed=seed,
            correlation=correlation,
        )
    n_blocks = workload.n_blocks

    switch_cfg = SwitchConfig(
        n_clusters=n_clusters,
        cores_per_cluster=cores_per_cluster,
        cost_model=cost_model,
    )
    switch = PsPINSwitch(switch_cfg)
    hconf = SparseHandlerConfig(
        allreduce_id=1,
        n_children=children,
        storage=storage,
        density=density,
        dtype_name=dtype,
        packet_bytes=packet_bytes,
        hash_slots_factor=hash_slots_factor,
    )
    handler = SparseAggregationHandler(hconf)
    switch.register_handler(handler)
    switch.parser.install_allreduce(1, handler.name)

    # Arrival schedule: blocks staggered like the dense driver; a block's
    # shards from one host go back-to-back.
    delta_full = switch_cfg.packet_interarrival_cycles(packet_bytes)
    delta_sim = delta_full * FULL_CLUSTERS / n_clusters
    stream = arrival_stream(
        n_hosts=children,
        n_blocks=n_blocks,
        delta=delta_sim,
        staggered=True,
        jitter=jitter,
        seed=seed + 1,
    )
    ingress_payload = 0
    for sp in stream:
        chunks = packetize_block(
            workload.blocks[sp.host][sp.block], elements_per_packet
        )
        for i, chunk in enumerate(chunks):
            pkt = SwitchPacket(
                allreduce_id=1,
                block_id=chunk.block_id,
                port=sp.host,
                payload=chunk.values,
                indices=chunk.indices,
                last_of_block=chunk.last_of_block,
                shard_count=chunk.shard_count,
            )
            ingress_payload += chunk.wire_bytes
            switch.inject(pkt, at=sp.time + i * delta_sim)

    try:
        makespan = switch.run()
    except MemoryError as exc:
        return SparseAllreduceResult(
            storage=storage,
            density=density,
            data_bytes=data_bytes,
            n_children=children,
            n_blocks=n_blocks,
            sim_clusters=n_clusters,
            feasible=False,
            block_memory_bytes=_probe_block_memory(hconf),
            infeasible_reason=str(exc).split(";")[0],
        )

    # Reassemble per-block outputs (final result + spill packets).
    dense_out: dict[int, np.ndarray] = {}
    egress_payload = 0
    for _t, pkt in switch.egress:
        acc = dense_out.setdefault(
            pkt.block_id, np.zeros(workload.block_span, dtype=dtype)
        )
        np.add.at(acc, pkt.indices, pkt.payload)
        egress_payload += int(pkt.indices.nbytes + pkt.payload.nbytes)
    # Ideal egress: the fully aggregated union of each block, once.
    ideal_egress = 0
    for b in range(n_blocks):
        union = set()
        for h in range(workload.n_hosts):
            union.update(workload.blocks[h][b].indices.tolist())
        ideal_egress += len(union) * SPARSE_ELEMENT_BYTES
    if verify:
        for b in range(n_blocks):
            golden = workload.golden_dense_sum(b)
            got = dense_out.get(b)
            if got is None:
                raise AssertionError(f"block {b} never completed")
            if not np.allclose(got[: len(golden)], golden, rtol=1e-5, atol=1e-5):
                raise AssertionError(f"block {b}: sparse aggregation mismatch")

    seconds = makespan / (cost_model.clock_ghz * 1e9) if makespan > 0 else float("inf")
    sim_tbps = ingress_payload * 8.0 / seconds / 1e12 if makespan > 0 else 0.0
    spilled = handler.spilled_bytes_total
    return SparseAllreduceResult(
        storage=storage,
        density=density,
        data_bytes=data_bytes,
        n_children=children,
        n_blocks=n_blocks,
        sim_clusters=n_clusters,
        feasible=True,
        makespan_cycles=makespan,
        sim_bandwidth_tbps=sim_tbps,
        bandwidth_tbps=sim_tbps * FULL_CLUSTERS / n_clusters,
        block_memory_bytes=handler.peak_block_memory,
        ingress_payload_bytes=ingress_payload,
        egress_payload_bytes=egress_payload,
        ideal_egress_bytes=ideal_egress,
        spilled_bytes=spilled,
        extra_traffic_pct=(
            100.0 * max(0, egress_payload - ideal_egress) / ideal_egress
            if ideal_egress
            else 0.0
        ),
        contention_wait_cycles=switch.telemetry.contention_wait_cycles.value,
        blocks_completed=handler.blocks_completed,
        outputs=dense_out,
    )


def _probe_block_memory(hconf: SparseHandlerConfig) -> int:
    """Storage footprint for reporting even when the run is infeasible."""
    handler = SparseAggregationHandler(hconf)
    return handler._make_storage().memory_bytes
