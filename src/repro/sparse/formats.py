"""Sparse data formats and packetization (paper Sec. 7, Fig. 12).

Rules the paper derives for sparse packetization:

* **Block span**: hosts split the index space into blocks whose span is
  chosen so a block's expected non-zeros fill one packet:
  ``span = elements_per_packet / density``.
* **One block per packet**: a packet never carries elements of two
  blocks — the host sends a partially filled packet at a block boundary
  instead, so the switch learns the block id from the header alone.
* **Block split**: a block with more non-zeros than a packet holds is
  split into several *shards*; the last shard carries the shard count so
  the switch knows when the child's contribution is complete.
* **Empty blocks**: an all-zero block still produces one header-only
  packet, so children counters advance.

Indices inside a packet are block-relative (int32), values follow the
allreduce dtype; each pair costs 8 bytes on the wire for fp32/int32.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rngtools import seeded_rng


@dataclass
class SparseChunk:
    """One packet's worth of a block: (indices, values) + shard info."""

    block_id: int
    indices: np.ndarray        # block-relative positions, int32
    values: np.ndarray
    last_of_block: bool
    shard_count: int

    @property
    def n_elements(self) -> int:
        return int(len(self.values))

    @property
    def wire_bytes(self) -> int:
        """Payload bytes: 4 B index + value bytes per element."""
        return int(self.indices.nbytes + self.values.nbytes)


@dataclass
class SparseBlock:
    """A host's contribution to one reduction block."""

    block_id: int
    span: int                  # elements covered by the block
    indices: np.ndarray        # block-relative, sorted, unique
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.values):
            raise ValueError("indices and values must align")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.span
        ):
            raise ValueError("indices out of block span")

    @property
    def nnz(self) -> int:
        return int(len(self.indices))

    def to_dense(self, dtype=None) -> np.ndarray:
        out = np.zeros(self.span, dtype=dtype or self.values.dtype)
        out[self.indices] = self.values
        return out


def sparsify_dense(dense: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Extract (indices, values) of the non-zeros of a dense vector."""
    idx = np.flatnonzero(dense).astype(np.int32)
    return idx, dense[idx]


def split_into_blocks(
    indices: np.ndarray, values: np.ndarray, total_span: int, block_span: int
) -> list[SparseBlock]:
    """Partition a sparse vector into fixed-span reduction blocks.

    Produces a block for *every* span window (including empty ones) —
    the empty-block rule needs them downstream.
    """
    if block_span < 1:
        raise ValueError("block_span must be >= 1")
    n_blocks = -(-total_span // block_span)
    order = np.argsort(indices, kind="stable")
    indices = np.asarray(indices)[order]
    values = np.asarray(values)[order]
    block_of = indices // block_span
    boundaries = np.searchsorted(block_of, np.arange(n_blocks + 1))
    blocks: list[SparseBlock] = []
    for b in range(n_blocks):
        lo, hi = boundaries[b], boundaries[b + 1]
        span = min(block_span, total_span - b * block_span)
        blocks.append(
            SparseBlock(
                block_id=b,
                span=span,
                indices=(indices[lo:hi] - b * block_span).astype(np.int32),
                values=values[lo:hi],
            )
        )
    return blocks


def packetize_block(block: SparseBlock, max_elements: int) -> list[SparseChunk]:
    """Split one block into packet-sized shards (paper's "Block split").

    Always emits at least one chunk — an empty one for an all-zero block
    (paper: "we still send a packet with no elements ... so that the
    switch can increase the children counter nevertheless").
    """
    if max_elements < 1:
        raise ValueError("max_elements must be >= 1")
    n = block.nnz
    n_shards = max(1, -(-n // max_elements))
    chunks: list[SparseChunk] = []
    for s in range(n_shards):
        lo = s * max_elements
        hi = min(n, lo + max_elements)
        chunks.append(
            SparseChunk(
                block_id=block.block_id,
                indices=block.indices[lo:hi],
                values=block.values[lo:hi],
                last_of_block=(s == n_shards - 1),
                shard_count=n_shards,
            )
        )
    return chunks


@dataclass
class SparseWorkload:
    """Per-host sparse blocks plus the generation parameters."""

    blocks: list[list[SparseBlock]]     # [host][block]
    n_hosts: int
    n_blocks: int
    block_span: int
    density: float
    dtype: str

    def golden_dense_sum(self, block_id: int) -> np.ndarray:
        """Numpy golden model: dense element-wise sum of one block."""
        acc = self.blocks[0][block_id].to_dense()
        for h in range(1, self.n_hosts):
            acc = acc + self.blocks[h][block_id].to_dense()
        return acc


def make_sparse_workload(
    n_hosts: int,
    n_blocks: int,
    elements_per_packet: int,
    density: float,
    dtype: str = "float32",
    seed: int = 0,
    correlation: float = 0.0,
) -> SparseWorkload:
    """Generate per-host sparse blocks with a target density.

    Each block spans ``elements_per_packet / density`` positions, of
    which each host populates ``elements_per_packet`` on average —
    the paper's packet-filling block-span rule.

    ``correlation`` in [0, 1] biases hosts toward a shared "hot" index
    set (fraction of each host's non-zeros drawn from a common subset of
    the span), modeling top-k gradient selection where large-magnitude
    coordinates coincide across workers; 0 gives independent uniform
    positions.
    """
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    if not 0 <= correlation <= 1:
        raise ValueError("correlation must be in [0, 1]")
    span = max(1, int(round(elements_per_packet / density)))
    rng = seeded_rng(seed)
    hot_size = max(1, elements_per_packet)
    blocks: list[list[SparseBlock]] = [[] for _ in range(n_hosts)]
    for b in range(n_blocks):
        hot = rng.choice(span, size=min(hot_size, span), replace=False)
        for h in range(n_hosts):
            nnz = min(span, rng.poisson(elements_per_packet)) if density < 1 else span
            nnz = max(0, min(nnz, span))
            n_hot = int(round(correlation * nnz))
            picks = []
            if n_hot > 0:
                picks.append(rng.choice(hot, size=min(n_hot, len(hot)), replace=False))
            n_cold = nnz - (len(picks[0]) if picks else 0)
            if n_cold > 0:
                picks.append(rng.choice(span, size=n_cold, replace=False))
            idx = np.unique(np.concatenate(picks) if picks else np.array([], dtype=np.int64))
            values = rng.integers(1, 7, size=len(idx)).astype(dtype)
            blocks[h].append(
                SparseBlock(
                    block_id=b,
                    span=span,
                    indices=idx.astype(np.int32),
                    values=values,
                )
            )
    return SparseWorkload(
        blocks=blocks,
        n_hosts=n_hosts,
        n_blocks=n_blocks,
        block_span=span,
        density=density,
        dtype=dtype,
    )
