"""Densification analytics (paper Sec. 7).

"In general, sparse data get denser after each aggregation and, when
aggregating data on an in-network reduction tree, the data get denser
while traveling from the hosts to the root of the tree."

These closed forms size buffers, predict traffic, and drive the
network-level sparse collectives: if each of m hosts independently
populates each position of a span-s block with probability p = nnz/s,
the aggregate block's expected non-zero count is

    E|union(m)| = s * (1 - (1 - p)^m)

which starts ~m * nnz and saturates at the span.  The bucket-top-1
sparsification used for Fig. 15 (one survivor per 512-element bucket)
is the special case nnz=1, s=512 applied per bucket.
"""

from __future__ import annotations



def expected_union(span: int, nnz_per_host: float, n_hosts: int) -> float:
    """Expected distinct non-zero positions after aggregating n_hosts.

    Assumes independent uniform positions per host (the conservative,
    fastest-densifying case; correlated top-k selections densify less).

    >>> round(expected_union(512, 1, 64), 1)
    60.2
    """
    if span <= 0:
        raise ValueError("span must be positive")
    if nnz_per_host < 0 or nnz_per_host > span:
        raise ValueError("nnz_per_host must be in [0, span]")
    if n_hosts < 0:
        raise ValueError("n_hosts must be >= 0")
    p = nnz_per_host / span
    return span * (1.0 - (1.0 - p) ** n_hosts)


def densification_profile(
    span: int, nnz_per_host: float, fan_ins: list[int]
) -> list[float]:
    """Expected nnz after each level of a reduction tree.

    ``fan_ins`` lists the child counts level by level from the hosts up
    (e.g. [8, 8] for 8 hosts per leaf switch and 8 leaves under the
    root).  Returns expected per-block nnz entering each level's output,
    host data first.

    >>> prof = densification_profile(512, 1, [8, 8])
    >>> [round(x, 1) for x in prof]
    [1.0, 7.9, 60.2]
    """
    out = [float(nnz_per_host)]
    hosts_so_far = 1
    for fan in fan_ins:
        if fan < 1:
            raise ValueError("fan-in must be >= 1")
        hosts_so_far *= fan
        out.append(expected_union(span, nnz_per_host, hosts_so_far))
    return out


def density_after(span: int, nnz_per_host: float, n_hosts: int) -> float:
    """Aggregate density (fraction non-zero) after n_hosts combine."""
    return expected_union(span, nnz_per_host, n_hosts) / span


def expected_hash_collision_fraction(
    distinct_keys: float, n_slots: int
) -> float:
    """Fraction of distinct keys that lose the single-probe slot race.

    With k distinct keys hashed into T slots, the expected number of
    occupied slots is T(1 - (1 - 1/T)^k); every key beyond those winners
    spills on *every* arrival.  Used to size hash tables and predict
    Fig. 14's extra-traffic panel.
    """
    if n_slots <= 0:
        raise ValueError("n_slots must be positive")
    if distinct_keys < 0:
        raise ValueError("distinct_keys must be >= 0")
    if distinct_keys == 0:
        return 0.0
    winners = n_slots * (1.0 - (1.0 - 1.0 / n_slots) ** distinct_keys)
    winners = min(winners, distinct_keys)
    return (distinct_keys - winners) / distinct_keys


def expected_spill_fraction(
    span: int, nnz_per_host: float, n_hosts: int, n_slots: int
) -> float:
    """Expected fraction of arriving elements that spill.

    Each element instance belongs to one distinct position; instances of
    slot-losing positions spill.  Positions are symmetric, so the
    instance-spill fraction equals the key-collision fraction.
    """
    distinct = expected_union(span, nnz_per_host, n_hosts)
    return expected_hash_collision_fraction(distinct, n_slots)
