"""Closed-form sparse aggregation models (paper Fig. 13).

The sparse models reuse the dense pipeline of :mod:`repro.core.models`
with the per-packet cost L replaced by the sparse storage costs:

* **hash**: every element pays a constant insert cost (slot hash +
  compare + store/spill), so L depends only on the packet size — the
  "constant bandwidth ... independently from the density" behaviour of
  Fig. 14.
* **array**: cheaper per-element indexed stores, plus a per-block flush
  that scans the whole span (span = elements/density), amortized over
  the block's P packets — the reason array bandwidth sinks as density
  drops.

A sparse packet carries ``packet_bytes / 8`` elements (4 B index +
4 B value), half the dense element count, which together with the
costlier per-element handling produces the paper's "lower bandwidth for
the sparse allreduce compared to the dense one".
"""

from __future__ import annotations

from repro.core.config import FlareConfig
from repro.core.models import DesignPoint, evaluate_design

#: Wire bytes per sparse element: int32 index + 4-byte value.
SPARSE_ELEMENT_BYTES = 8


def sparse_elements_per_packet(packet_bytes: int) -> int:
    """Elements carried by one sparse packet."""
    return max(1, packet_bytes // SPARSE_ELEMENT_BYTES)


def sparse_packet_cycles(
    cfg: FlareConfig,
    storage: str,
    density: float,
) -> float:
    """The sparse L: cycles to fold one sparse packet into block storage."""
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    n_elem = sparse_elements_per_packet(cfg.packet_bytes)
    cm = cfg.cost_model
    if storage == "hash":
        return n_elem * cm.hash_cycles_per_element
    if storage == "array":
        span = n_elem / density
        flush_amortized = span * cm.array_flush_cycles_per_element / cfg.children
        return n_elem * cm.array_cycles_per_element + flush_amortized
    raise ValueError(f"unknown sparse storage {storage!r}")


def sparse_design_point(
    cfg: FlareConfig,
    algorithm: str,
    storage: str,
    density: float,
    n_buffers: int = 1,
) -> DesignPoint:
    """Fig. 13 model: a dense design point evaluated at the sparse L.

    ``cfg.data_bytes`` is the *sparsified* data size (what hosts send),
    matching the figure's x-axis.
    """
    L = sparse_packet_cycles(cfg, storage, density)
    return evaluate_design(cfg, algorithm, n_buffers=n_buffers, L=L)


def hash_block_memory_bytes(cfg: FlareConfig, slots_factor: float = 4.0) -> int:
    """Resident bytes of one hash-storage block (density-independent)."""
    n_elem = sparse_elements_per_packet(cfg.packet_bytes)
    n_slots = int(n_elem * slots_factor)
    keys = n_slots * 8          # int64 keys
    values = n_slots * 4
    spill = n_elem * SPARSE_ELEMENT_BYTES
    return keys + values + spill


def array_block_memory_bytes(cfg: FlareConfig, density: float) -> int:
    """Resident bytes of one array-storage block (~span * value size)."""
    n_elem = sparse_elements_per_packet(cfg.packet_bytes)
    span = int(round(n_elem / density))
    return span * 4 + span      # values + touched map byte
