"""Hash-table block storage with a spill buffer (paper Sec. 7).

"Flare stores the data and the indexes in a hash table.  To avoid
expensive collision resolution, when there is a collision, the colliding
element is put in a spill buffer.  When the spill buffer is full, the
spilled data is immediately sent to the next switch (or to the hosts)."

The behavioral model is a single-probe open table: an element hashes to
exactly one slot.  If the slot is empty it claims it; if the slot holds
the *same* index the values aggregate; if it holds a different index the
element spills.  Spilled elements are unaggregated extra traffic — the
quantity Fig. 14's right panel reports.

Memory per block is constant in the data density (table slots x 8 B +
spill buffer), which is the hash backend's selling point at high
sparsity; the cost is the spill traffic as the aggregated block's
distinct-index count approaches the table size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Wire bytes per (index, value) element (int32 index + 4-byte value).
ELEMENT_BYTES = 8


def _slot_of(indices: np.ndarray, n_slots: int) -> np.ndarray:
    """Deterministic multiplicative hash (Knuth) into table slots."""
    return ((indices.astype(np.uint64) * np.uint64(2654435761)) % np.uint64(n_slots)).astype(
        np.int64
    )


@dataclass
class SpillEvent:
    """One spill-buffer flush: elements forwarded unaggregated.

    Carries the actual (indices, values) so downstream consumers (the
    parent switch, or the verifying test) can still fold them in — the
    data is extra *traffic*, never lost information.
    """

    indices: np.ndarray
    values: np.ndarray

    @property
    def n_elements(self) -> int:
        return int(len(self.indices))

    @property
    def bytes(self) -> int:
        return self.n_elements * ELEMENT_BYTES


class HashStorage:
    """Per-block aggregation state backed by a single-probe hash table."""

    kind = "hash"

    def __init__(
        self,
        n_slots: int,
        dtype: str = "float32",
        spill_capacity: int = 128,
        op=None,
    ) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if spill_capacity < 1:
            raise ValueError("spill_capacity must be >= 1")
        self.n_slots = n_slots
        self.spill_capacity = spill_capacity
        self._keys = np.full(n_slots, -1, dtype=np.int64)
        self._values = np.zeros(n_slots, dtype=dtype)
        self._op = op
        self._spill_indices: list[int] = []
        self._spill_values: list = []
        self.spill_events: list[SpillEvent] = []
        self.spilled_elements = 0
        self.inserted_elements = 0

    # ------------------------------------------------------------------
    def insert(self, indices: np.ndarray, values: np.ndarray) -> list[SpillEvent]:
        """Insert one packet's elements; returns any spill flushes.

        Elements are processed in packet order (the handler holds the
        block's critical section, so inserts are serialized).  When the
        packet's indices are unique — always true for Flare packets,
        since a host's block contribution has unique positions — the
        batch is resolved vectorized; duplicate indices or a custom
        operator fall back to the exact sequential path.
        """
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        if self._op is not None or len(idx) != len(np.unique(idx)):
            return self._insert_sequential(idx, vals)
        self.inserted_elements += len(idx)
        slots = _slot_of(idx, self.n_slots)
        keys_at = self._keys[slots]
        empty = keys_at == -1
        same = keys_at == idx
        # Same-key aggregation: each matching slot appears once (table
        # keys are unique and the packet's indices are unique).
        hit = np.where(same)[0]
        self._values[slots[hit]] += vals[hit]
        # Empty slots: first packet element targeting a slot claims it;
        # later ones (intra-packet slot collisions) spill.
        cand = np.where(empty)[0]
        _u, first_pos = np.unique(slots[cand], return_index=True)
        winners = cand[first_pos]
        self._keys[slots[winners]] = idx[winners]
        self._values[slots[winners]] = vals[winners]
        losers = np.setdiff1d(cand, winners, assume_unique=True)
        spill = np.concatenate([np.where(~(empty | same))[0], losers])
        spill.sort()
        flushed: list[SpillEvent] = []
        if len(spill):
            self._spill_indices.extend(int(i) for i in idx[spill])
            self._spill_values.extend(vals[spill])
            self.spilled_elements += len(spill)
            while len(self._spill_indices) >= self.spill_capacity:
                flushed.append(self._flush_chunk(self.spill_capacity))
        self.spill_events.extend(flushed)
        return flushed

    def _insert_sequential(self, idx: np.ndarray, vals: np.ndarray) -> list[SpillEvent]:
        flushed: list[SpillEvent] = []
        slots = _slot_of(idx, self.n_slots)
        for i, slot, val in zip(idx, slots, vals):
            self.inserted_elements += 1
            key = self._keys[slot]
            if key == -1:
                self._keys[slot] = i
                self._values[slot] = val
            elif key == i:
                if self._op is None:
                    self._values[slot] += val
                else:
                    acc = self._values[slot : slot + 1]
                    self._op.combine_into(acc, np.asarray([val]))
            else:
                self._spill_indices.append(int(i))
                self._spill_values.append(val)
                self.spilled_elements += 1
                if len(self._spill_indices) >= self.spill_capacity:
                    flushed.append(self._flush_spill())
        self.spill_events.extend(flushed)
        return flushed

    def _flush_chunk(self, n: int) -> SpillEvent:
        event = SpillEvent(
            indices=np.array(self._spill_indices[:n], dtype=np.int32),
            values=np.array(self._spill_values[:n], dtype=self._values.dtype),
        )
        del self._spill_indices[:n]
        del self._spill_values[:n]
        return event

    def _flush_spill(self) -> SpillEvent:
        event = SpillEvent(
            indices=np.array(self._spill_indices, dtype=np.int32),
            values=np.array(self._spill_values, dtype=self._values.dtype),
        )
        self._spill_indices.clear()
        self._spill_values.clear()
        return event

    # ------------------------------------------------------------------
    def finalize(self) -> tuple[np.ndarray, np.ndarray, SpillEvent | None]:
        """Drain the table (+ any residual spill) at block completion.

        Returns ``(indices, values, residual_spill)`` where the residual
        spill covers elements still in the buffer (they ride along with
        the final result packet rather than a dedicated flush).
        """
        mask = self._keys != -1
        indices = self._keys[mask].astype(np.int32)
        values = self._values[mask].copy()
        order = np.argsort(indices, kind="stable")
        indices, values = indices[order], values[order]
        residual: SpillEvent | None = None
        if self._spill_indices:
            residual = SpillEvent(
                indices=np.array(self._spill_indices, dtype=np.int32),
                values=np.array(self._spill_values, dtype=self._values.dtype),
            )
            # Residual spilled elements merge into the output where the
            # index already exists, otherwise append (the *next* switch
            # would aggregate them; merging here models the final-hop
            # host doing it, keeping numerics exact).
            out = dict(zip(indices.tolist(), values.tolist()))
            for idx, val in zip(self._spill_indices, self._spill_values):
                if idx in out:
                    out[idx] = out[idx] + val
                else:
                    out[idx] = val
            items = sorted(out.items())
            indices = np.array([k for k, _ in items], dtype=np.int32)
            values = np.array([v for _, v in items], dtype=self._values.dtype)
            self._spill_indices.clear()
            self._spill_values.clear()
        return indices, values, residual

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Resident bytes: keys + values + spill buffer budget."""
        return int(
            self._keys.nbytes
            + self._values.nbytes
            + self.spill_capacity * ELEMENT_BYTES
        )

    @property
    def occupied_slots(self) -> int:
        return int((self._keys != -1).sum())

    @property
    def spilled_bytes(self) -> int:
        return self.spilled_elements * ELEMENT_BYTES
