"""Flare sparse in-network allreduce (paper Sec. 7).

The first in-network sparse allreduce: hosts send only non-zero
(index, value) pairs; the switch aggregates them in either a hash table
with a spill buffer (density-independent memory, extra traffic on
collisions) or a dense span array (faster, memory ∝ 1/density).  This
package provides the sparse data formats and packetization rules
(multiple-blocks-per-packet prohibition, block split via shard counts,
empty-block markers), both storage backends, the aggregation handler,
densification analytics, and a switch-level driver mirroring
``repro.core.allreduce``.
"""

from repro.sparse.formats import (
    SparseBlock,
    SparseChunk,
    sparsify_dense,
    split_into_blocks,
    packetize_block,
    make_sparse_workload,
)
from repro.sparse.hash_storage import HashStorage
from repro.sparse.array_storage import ArrayStorage
from repro.sparse.handlers import SparseAggregationHandler, SparseHandlerConfig
from repro.sparse.densify import expected_union, densification_profile
from repro.sparse.models import sparse_packet_cycles, sparse_design_point
from repro.sparse.allreduce import SparseAllreduceResult, run_sparse_switch_allreduce

__all__ = [
    "SparseBlock",
    "SparseChunk",
    "sparsify_dense",
    "split_into_blocks",
    "packetize_block",
    "make_sparse_workload",
    "HashStorage",
    "ArrayStorage",
    "SparseAggregationHandler",
    "SparseHandlerConfig",
    "expected_union",
    "densification_profile",
    "sparse_packet_cycles",
    "sparse_design_point",
    "SparseAllreduceResult",
    "run_sparse_switch_allreduce",
]
