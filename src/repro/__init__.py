"""repro — reproduction of "Flare: Flexible In-Network Allreduce" (SC '21).

A production-quality Python library rebuilding the paper's full stack
behind one front door, :class:`repro.comm.Communicator`::

    from repro import Communicator

    comm = Communicator(n_hosts=16)
    result = comm.allreduce("512KiB")                  # capability-matched
    result = comm.allreduce("512KiB", algorithm="ring")
    future = comm.iallreduce("512KiB")                 # non-blocking
    print(future.result().summary())

Every allreduce flavor is an entry in the algorithm registry
(``repro.comm.register_algorithm``) with declared capabilities —
dense/sparse, supported operators, reproducibility, in-network vs
host-based — and runs through the same plan/execute pipeline:
``comm.plan(request)`` performs tree construction, handler selection,
and message sizing once; the cached plan then executes any number of
collectives of that shape.

Layers:

* ``repro.comm`` — the unified Communicator API: algorithm registry,
  plan cache, futures.
* ``repro.pspin`` — behavioral model of the PsPIN programmable-switch
  processing unit (clusters, HPUs, memories, schedulers).
* ``repro.core`` — Flare's dense aggregation algorithms (single buffer,
  multi buffer, tree), analytical models, staggered sending, policy,
  and the network-manager control plane.
* ``repro.sparse`` — the first in-network *sparse* allreduce (hash and
  array storage, spill buffers, shard counters).
* ``repro.network`` — an SST-like chunk-level network simulator with
  pluggable topologies (fat tree, XGFT, dragonfly, torus, multi-rail),
  routing policies (shortest / seeded ECMP / congestion-adaptive),
  aggregation-tree planning, and in-switch aggregation hooks.
* ``repro.collectives`` — host-based baselines (ring, Rabenseifner,
  recursive doubling, SparCML) and the in-network collectives built on
  the network simulator.
* ``repro.baselines`` — SwitchML and SHARP behavioral reference models.
* ``repro.data`` — workload generators, including synthetic ResNet-50
  gradients with bucket sparsification.
* ``repro.figures`` — one runner per paper table/figure
  (``python -m repro <figure>``; ``python -m repro bench <algorithm>``
  drives any registered algorithm).

The pre-registry entry points (``run_switch_allreduce``,
``simulate_*_allreduce``) remain as deprecation shims over the
registry.
"""

from repro.core import (
    FlareConfig,
    run_switch_allreduce,
    select_algorithm,
    evaluate_design,
    NetworkManager,
)
from repro.pspin import PsPINSwitch, SwitchConfig, CostModel
from repro.comm import (
    AlgorithmCaps,
    CollectiveRequest,
    CollectiveResult,
    Communicator,
    available_algorithms,
    register_algorithm,
)

__version__ = "1.1.0"

__all__ = [
    "Communicator",
    "CollectiveRequest",
    "CollectiveResult",
    "AlgorithmCaps",
    "register_algorithm",
    "available_algorithms",
    "FlareConfig",
    "run_switch_allreduce",
    "select_algorithm",
    "evaluate_design",
    "NetworkManager",
    "PsPINSwitch",
    "SwitchConfig",
    "CostModel",
    "__version__",
]
