"""repro — reproduction of "Flare: Flexible In-Network Allreduce" (SC '21).

A production-quality Python library rebuilding the paper's full stack:

* ``repro.pspin`` — behavioral model of the PsPIN programmable-switch
  processing unit (clusters, HPUs, memories, schedulers).
* ``repro.core`` — Flare's dense aggregation algorithms (single buffer,
  multi buffer, tree), analytical models, staggered sending, policy,
  and the network-manager control plane.
* ``repro.sparse`` — the first in-network *sparse* allreduce (hash and
  array storage, spill buffers, shard counters).
* ``repro.network`` — an SST-like chunk-level network simulator with
  fat-tree topologies and in-switch aggregation hooks.
* ``repro.collectives`` — host-based baselines (ring, Rabenseifner,
  recursive doubling, SparCML) and the in-network collectives built on
  the network simulator.
* ``repro.baselines`` — SwitchML and SHARP behavioral reference models.
* ``repro.data`` — workload generators, including synthetic ResNet-50
  gradients with bucket sparsification.
* ``repro.figures`` — one runner per paper table/figure.

Quickstart::

    from repro import run_switch_allreduce
    result = run_switch_allreduce("512KiB", children=16, n_clusters=4)
    print(result.summary())
"""

from repro.core import (
    FlareConfig,
    run_switch_allreduce,
    select_algorithm,
    evaluate_design,
    NetworkManager,
)
from repro.pspin import PsPINSwitch, SwitchConfig, CostModel

__version__ = "1.0.0"

__all__ = [
    "FlareConfig",
    "run_switch_allreduce",
    "select_algorithm",
    "evaluate_design",
    "NetworkManager",
    "PsPINSwitch",
    "SwitchConfig",
    "CostModel",
    "__version__",
]
