"""Command-line entry point: paper experiments and the algorithm bench.

Usage::

    python -m repro list                   # available experiments
    python -m repro algorithms             # registered allreduce algorithms
    python -m repro topologies             # built-in topology families
    python -m repro fig11                  # run one figure (paper scale)
    python -m repro fig15 --fast           # reduced-scale smoke run
    python -m repro all --fast             # everything
    python -m repro bench ring --size 1MiB --hosts 16 --repeat 3
    python -m repro bench ring --topology dragonfly --routing adaptive
    python -m repro bench flare_dense --topology torus \
        --topo-params dim_x=4,dim_y=4,hosts_per_switch=2
    python -m repro bench ring --tenants 2 --overlap --weights 4,1 \
        --timeline-out timeline.json
    python -m repro bench ring --faults examples/faults/chaos.json \
        --fault-seed 1 --timeline-out chaos-timeline.json
    python -m repro bench simcore --perf-json BENCH_simcore.json

``bench`` drives any registered algorithm through the unified
:class:`repro.comm.Communicator`, re-executing the cached plan to show
the plan/execute split at work; ``--topology``/``--routing`` swap the
wiring and the path-selection policy under any network-simulated
algorithm.  With ``--tenants N`` the run becomes multi-tenant: N
communicators share one :class:`repro.comm.Fabric` (``--overlap``
issues their collectives concurrently into its single event loop, with
QoS ``--weights`` arbitrating the shared links) and the per-tenant
trace can be exported with ``--timeline-out``.  (Also installed as the
``flare-repro`` console script.)
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

EXPERIMENTS = ("table1", "fig7", "fig10", "fig11", "fig13", "fig14", "fig15")


def _run_one(name: str, fast: bool) -> None:
    mod = importlib.import_module(f"repro.figures.{name}")
    t0 = time.perf_counter()
    result = mod.run(fast=fast)
    elapsed = time.perf_counter() - t0
    print(mod.render(result))
    print(f"[{name} completed in {elapsed:.1f}s]")


def _cmd_list() -> int:
    for name in EXPERIMENTS:
        mod = importlib.import_module(f"repro.figures.{name}")
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"{name:8s} {doc}")
    return 0


def _cmd_algorithms() -> int:
    from repro.comm import Communicator
    from repro.utils.tables import ascii_table

    rows = []
    for a in Communicator.algorithms():
        rows.append([
            a["name"],
            "x" if a["dense"] else "",
            "x" if a["sparse"] else "",
            "in-network" if a["in_network"] else "host",
            "x" if a["reproducible"] else "",
            ",".join(a["ops"]) + ("+custom" if a["custom_ops"] else ""),
            a["priority"],
        ])
    print(ascii_table(
        ["algorithm", "dense", "sparse", "where", "repro", "ops", "prio"],
        rows,
        title="Registered allreduce algorithms (priority drives 'auto')",
    ))
    return 0


def _cmd_topologies() -> int:
    from repro.comm import Communicator
    from repro.network import available_routers, available_topologies, build_topology
    from repro.utils.tables import ascii_table

    rows = []
    for family in available_topologies():
        topo = build_topology(family)
        params = ", ".join(
            f"{k}={v}" for k, v in topo.describe().items()
            if k not in ("link_gbps", "link_latency_ns")
        )
        algos = [
            a["name"]
            for a in Communicator.algorithms()
            if "*" in a["topologies"] or family in a["topologies"]
        ]
        rows.append([family, params, len(topo.hosts), len(topo.switches),
                     ",".join(algos)])
    print(ascii_table(
        ["family", "default parameters", "hosts", "switches", "algorithms"],
        rows,
        title="Built-in topology families (bench --topology <family> "
        "--topo-params k=v,...)",
    ))
    print(f"routing policies: {', '.join(available_routers())} "
          "(bench --routing <policy>)")
    return 0


def _parse_topo_params(text: str) -> dict:
    """Parse "k=v,k=v" with ints, floats, bools, and AxB tuples."""
    out: dict = {}
    if not text:
        return out
    for item in text.split(","):
        key, _, raw = item.partition("=")
        if not _:
            raise ValueError(f"--topo-params entries are k=v, got {item!r}")
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        elif "x" in raw and all(p.isdigit() for p in raw.split("x")):
            value = tuple(int(p) for p in raw.split("x"))
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        out[key.strip()] = value
    return out


def _reliability_kwargs(args: argparse.Namespace) -> dict:
    """Fabric kwargs for the host reliability knobs (``--ack-timeout``
    maps to the end-to-end retransmission timer).  Only explicitly set
    flags appear, so Fabric's own defaults stay authoritative."""
    from repro.utils.units import parse_time_ns

    out: dict = {}
    if args.max_retransmits is not None:
        out["max_retransmits"] = args.max_retransmits
    if args.ack_timeout is not None:
        out["retransmit_timeout_ns"] = parse_time_ns(args.ack_timeout)
    return out


def _cmd_multi_tenant_bench(args: argparse.Namespace, topology) -> int:
    """N communicators on one shared fabric, overlapped or sequential."""
    from repro.comm import CommError, Fabric, wait_all

    weights = [1.0] * args.tenants
    if args.weights:
        try:
            parts = [float(w) for w in args.weights.split(",")]
        except ValueError:
            print(
                f"error: --weights must be comma-separated numbers, got "
                f"{args.weights!r}", file=sys.stderr,
            )
            return 2
        if len(parts) != args.tenants:
            print(
                f"error: --weights lists {len(parts)} values for "
                f"--tenants {args.tenants}", file=sys.stderr,
            )
            return 2
        weights = parts
    fabric = Fabric(
        topology=topology,
        n_hosts=args.hosts,
        routing=args.routing,
        routing_seed=args.seed,
        workers=args.workers or 0,
        provenance_db=args.provenance_db,
        run_label=f"bench/{args.algorithm}/{args.size}",
        **_reliability_kwargs(args),
    )
    if args.workers:
        print(f"[sharded engine: {args.workers} worker process(es)]")
    if args.provenance_db:
        print(f"[provenance: run {fabric.run_id} -> {args.provenance_db}]")
    if args.faults:
        try:
            schedule = fabric.load_faults(args.faults, seed=args.fault_seed)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: cannot load fault schedule: {exc}", file=sys.stderr)
            return 2
        print(f"[chaos armed: {len(schedule)} fault(s) from {args.faults}, "
              f"seed {schedule.seed}]")
    comms = [
        fabric.communicator(name=f"tenant{i}", weight=weights[i],
                            n_clusters=args.clusters,
                            auto_mode=args.auto_mode)
        for i in range(args.tenants)
    ]
    kwargs = dict(
        op=args.op,
        algorithm=args.algorithm,
        sparse=args.sparse,
        density=args.density,
        reproducible=args.reproducible,
    )
    mode = "overlapped" if args.overlap else "sequential"
    print(
        f"{args.tenants} tenants ({mode}) x {args.repeat} round(s) of "
        f"{args.algorithm} {args.size} on a shared "
        f"{fabric.topology.family} fabric "
        f"[weights {','.join(str(w) for w in weights)}]"
    )
    try:
        for rnd in range(args.repeat):
            if args.overlap:
                futures = [
                    c.iallreduce(args.size, seed=args.seed + rnd, **kwargs)
                    for c in comms
                ]
                results = wait_all(futures)
            else:
                results = [
                    c.allreduce(args.size, seed=args.seed + rnd, **kwargs)
                    for c in comms
                ]
            fabric.run()          # drain deferred resource releases
            for c, r in zip(comms, results):
                note = " [fell back]" if r.extra.get("fell_back") else ""
                print(f"  round {rnd + 1} {c.name} (w={c.weight:g}): "
                      f"{r.summary()}{note}")
    except CommError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = fabric.tenant_stats()
    print("\nper-tenant totals:")
    for name, s in stats.items():
        print(f"  {name}: {s['completed']}/{s['collectives']} done, "
              f"{s['bytes'] / 2**20:.1f} MiB reduced, "
              f"{s['wire_bytes'] / 2**30:.2f} GiB on wire, "
              f"{s['busy_ns'] / 1e6:.2f} ms busy, "
              f"{s['fell_back']} fell back, {s['recovered']} recovered")
    if fabric.faults is not None:
        traffic = fabric.net.traffic
        print(f"chaos totals: {traffic.drops} drops, "
              f"{traffic.duplicates} duplicates, "
              f"{traffic.retransmits} retransmits, "
              f"{len(fabric.fault_log())} fault event(s) applied")
        for event in fabric.fault_log():
            target = event.get("switch") or event.get("link")
            print(f"  t={event['at_ns']:.0f}ns {event['event']} "
                  f"{event['kind']} {target}")
    degradations = getattr(fabric.net, "degradations", None) or []
    for event in degradations:
        print(f"[degraded t={event['sim_time_ns']:.0f}ns "
              f"{event['event']}: {event['reason']}]")
    if args.timeline_out:
        fabric.timeline_json(path=args.timeline_out)
        print(f"[timeline written to {args.timeline_out}]")
    if args.perf_json:
        import json

        from repro.provenance.identity import run_identity

        payload = {
            "benchmark": "bench",
            "algorithm": args.algorithm,
            "size": args.size,
            "hosts": args.hosts,
            "tenants": args.tenants,
            # Shares the fabric's run id, so this report joins against
            # the provenance database (when one was recorded).
            "identity": run_identity(
                seed=args.seed,
                engine={"algorithm": args.algorithm, "hosts": args.hosts,
                        "tenants": args.tenants, "repeat": args.repeat,
                        "routing": args.routing},
                run_id=fabric.run_id,
            ),
            "provenance_db": args.provenance_db,
            "tenant_stats": stats,
        }
        with open(args.perf_json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[perf JSON written to {args.perf_json}]")
    fabric.shutdown()       # flushes provenance (no-op otherwise)
    return 0


def _build_cli_topology(args: argparse.Namespace):
    """Build the ``--topology``/``--topo-params`` wiring (None keeps the
    default fat tree).  Raises ``ValueError``/``TypeError`` on bad
    parameters; syncs ``args.hosts`` to the topology's actual count."""
    if args.topology is None:
        return None
    from repro.network import build_topology

    topo_params = _parse_topo_params(args.topo_params or "")
    if args.topology in ("fat-tree", "multi-rail") and "n_hosts" not in topo_params:
        topo_params["n_hosts"] = args.hosts
        if args.topology == "fat-tree" and "hosts_per_leaf" not in topo_params:
            from repro.comm.backends import _default_hosts_per_leaf

            hpl = _default_hosts_per_leaf(args.hosts)
            topo_params["hosts_per_leaf"] = hpl
            topo_params.setdefault("n_spines", min(4, hpl))
    topology = build_topology(args.topology, **topo_params)
    if topology.n_hosts != args.hosts:
        print(f"[topology {args.topology} wires {topology.n_hosts} hosts; "
              f"using that instead of --hosts {args.hosts}]")
        args.hosts = topology.n_hosts
    return topology


def _parse_class_spec(text: str):
    """Parse one ``--class name=prod,weight=4,rate=2000,size=1MiB,...``."""
    from repro.service import TenantClass
    from repro.utils.units import parse_size, parse_time_ns

    fields = _parse_topo_params(text)
    name = fields.pop("name", None)
    if not name:
        raise ValueError(f"--class needs name=..., got {text!r}")
    kwargs: dict = {"name": str(name)}
    mapping = {
        "weight": ("weight", float),
        "rate": ("rate_per_s", float),
        "size": ("nbytes", lambda v: float(parse_size(v))),
        "hosts": ("n_hosts", int),
        "iterations": ("iterations", int),
        "gap": ("gap_ns", parse_time_ns),
        "algorithm": ("algorithm", str),
        "dtype": ("dtype", str),
    }
    for key, value in fields.items():
        if key not in mapping:
            raise ValueError(
                f"--class field {key!r} unknown; allowed: "
                f"name,{','.join(mapping)}"
            )
        dest, conv = mapping[key]
        kwargs[dest] = conv(value)
    return TenantClass(**kwargs)


def _cmd_service(args: argparse.Namespace, topology) -> int:
    """Long-running service mode: workload in, SLO report out."""
    from repro.comm import CommError, Fabric
    from repro.service import FabricService, PoissonWorkload, TraceWorkload
    from repro.utils.units import parse_time_ns

    if args.trace:
        try:
            workload = TraceWorkload(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load trace: {exc}", file=sys.stderr)
            return 2
        source = f"trace {args.trace} ({len(workload.jobs())} jobs)"
    else:
        duration_ns = parse_time_ns(args.duration)
        try:
            classes = [_parse_class_spec(spec) for spec in (args.tenant_class or ())]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not classes:
            classes = [
                _parse_class_spec(
                    "name=prod,weight=4,rate=2000,size=1MiB,hosts=8,"
                    "iterations=4,gap=20us,algorithm=flare_dense"
                ),
                _parse_class_spec(
                    "name=batch,weight=1,rate=500,size=4MiB,hosts=8,"
                    "iterations=2,gap=50us,algorithm=ring"
                ),
            ]
        workload = PoissonWorkload(
            classes, seed=args.seed, duration_ns=duration_ns
        )
        source = (
            f"Poisson x{len(classes)} classes over "
            f"{duration_ns / 1e6:g} ms simulated"
        )
    fabric = Fabric(
        topology=topology,
        n_hosts=args.hosts,
        routing=args.routing,
        routing_seed=args.seed,
        max_allreduces_per_switch=args.max_per_switch,
        switch_memory_bytes=args.switch_memory,
        tenant_quota=args.quota,
        provenance_db=args.provenance_db,
        run_label=f"service/{args.placement}/{args.queue}",
        **_reliability_kwargs(args),
    )
    if args.provenance_db:
        print(f"[provenance: run {fabric.run_id} -> {args.provenance_db}]")
    if args.faults:
        try:
            schedule = fabric.load_faults(args.faults, seed=args.fault_seed)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: cannot load fault schedule: {exc}", file=sys.stderr)
            return 2
        print(f"[chaos armed: {len(schedule)} fault(s) from {args.faults}]")
    snapshot_ns = (
        parse_time_ns(args.snapshot_interval) if args.snapshot_interval else None
    )
    try:
        service = FabricService(
            fabric,
            workload,
            scheduler=args.placement,
            queue_policy=args.queue,
            snapshot_interval_ns=snapshot_ns,
            checkpoint_path=args.checkpoint,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"service: {source} on {fabric.topology.family} "
          f"({fabric.topology.n_hosts} hosts), placement={args.placement}, "
          f"queue={args.queue}")
    if args.checkpoint:
        mode = "resuming from" if (
            args.resume and os.path.exists(args.checkpoint)
        ) else "checkpointing to"
        print(f"[{mode} {args.checkpoint}]")
    if args.kill_at:
        # Crash drill: hard-kill the process at a simulated instant
        # (CI's crash-smoke job resumes from the surviving checkpoint).
        kill_ns = parse_time_ns(args.kill_at)

        def _die() -> None:
            print(f"[crash drill: hard exit at t={kill_ns:g}ns]", flush=True)
            os._exit(13)

        fabric.sim.schedule_at(kill_ns, _die)
    try:
        report = service.run(slo_out=args.slo_out, resume=args.resume)
    except (CommError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    jobs = report["jobs"]
    print(f"\njobs: {jobs['completed']}/{jobs['arrived']} completed "
          f"in {report['now_ns'] / 1e6:.2f} ms simulated; "
          f"fairness {report['fairness']:.3f}")
    for cls, s in report["classes"].items():
        if not s["iterations"]:
            continue
        print(f"  {cls} (w={s['weight']:g}): {s['iterations']} iterations, "
              f"p50 {s['p50_ns'] / 1e3:.0f} us / p95 {s['p95_ns'] / 1e3:.0f} us"
              f" / p99 {s['p99_ns'] / 1e3:.0f} us, "
              f"{s['goodput_gbps']:.2f} Gbps goodput, "
              f"{s['fell_back']} fallbacks, {s['recoveries']} recoveries")
    q = report["queue"]
    print(f"  queue[{q['policy']}]: {q['enqueued']} queued, "
          f"mean wait {q['mean_wait_ns'] / 1e3:.0f} us, "
          f"max depth {max(q['mean_depth'], q['depth']):.1f}")
    cache = report["plan_cache"]
    if cache["hit_rate"] is not None:
        print(f"  plan cache: {cache['hit_rate'] * 100:.1f}% hit rate "
              f"({cache['hits']}/{cache['hits'] + cache['misses']})")
    if report["starved_jobs"]:
        print(f"  WARNING: {len(report['starved_jobs'])} job(s) starved "
              f"(never admitted)", file=sys.stderr)
        return 3
    if report["faults"]:
        print(f"  chaos: {len(report['faults'])} fault event(s) applied; "
              "recoveries recorded per class above")
    if args.slo_out:
        print(f"[SLO report written to {args.slo_out}]")
    if args.checkpoint:
        print(f"[{service.checkpoints_written} checkpoint(s) written to "
              f"{args.checkpoint}]")
    if args.timeline_out:
        fabric.timeline_json(path=args.timeline_out)
        print(f"[timeline written to {args.timeline_out}]")
    fabric.shutdown()       # flushes provenance (no-op otherwise)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.comm import CommError, Communicator

    if args.algorithm == "simcore":
        # The tracked simulation-core harness (fast path vs per-packet
        # DES + two-tenant overlap); see benchmarks/bench_simcore.py.
        from repro.perf.simcore import main as simcore_main

        argv = ["--out", args.perf_json or "BENCH_simcore.json",
                "--reps", str(args.repeat)]
        if args.check_against:
            argv += ["--check-against", args.check_against]
        if args.workers is not None:
            argv += ["--workers", str(args.workers)]
        return simcore_main(argv)

    try:
        topology = _build_cli_topology(args)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if (
        args.tenants > 1 or args.faults or args.provenance_db
        or args.workers or _reliability_kwargs(args)
    ):
        # Chaos, provenance, sharded-engine, and reliability-knob runs
        # need the persistent shared fabric (faults, worker processes,
        # and retransmission timers live on its links and clock; the
        # provenance recorder hangs off it), so those flags route
        # through it even for one tenant.
        return _cmd_multi_tenant_bench(args, topology)

    comm = Communicator(
        n_hosts=args.hosts,
        n_clusters=args.clusters,
        topology=topology,
        routing=args.routing,
        routing_seed=args.seed,
        auto_mode=args.auto_mode,
    )
    kwargs = dict(
        op=args.op,
        algorithm=args.algorithm,
        sparse=args.sparse,
        density=args.density,
        reproducible=args.reproducible,
    )
    try:
        plan = comm.plan(nbytes=args.size, **kwargs)
    except CommError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: 'python -m repro algorithms' lists registered "
              "algorithms and their capabilities", file=sys.stderr)
        return 2
    print(plan.describe())
    print()
    runs = []
    for i in range(args.repeat):
        t0 = time.perf_counter()
        result = comm.allreduce(args.size, seed=args.seed + i, **kwargs)
        wall = time.perf_counter() - t0
        entry = {"run": i + 1, "wall_s": wall, "summary": result.summary()}
        raw = getattr(result, "raw", None)
        if raw is not None and hasattr(raw, "n_blocks"):
            packets = raw.n_blocks * raw.n_children
            entry["packets"] = packets
            entry["packets_per_s"] = packets / wall
            entry["fast_path_used"] = getattr(raw, "fast_path_used", False)
        runs.append(entry)
        print(f"run {i + 1}/{args.repeat}: {result.summary()}  "
              f"[wall {wall * 1e3:.0f} ms]")
    info = comm.cache_info()
    print(f"\nplan cache: {info.hits} hits / {info.misses} misses "
          f"(planning ran {comm.plans_built}x for {plan.executions} executions)")
    if args.perf_json:
        import json

        from repro.provenance.identity import run_identity

        payload = {
            "benchmark": "bench",
            "algorithm": args.algorithm,
            "size": args.size,
            "hosts": args.hosts,
            "identity": run_identity(
                seed=args.seed,
                engine={"algorithm": args.algorithm, "hosts": args.hosts,
                        "repeat": args.repeat},
            ),
            "runs": runs,
        }
        with open(args.perf_json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[perf JSON written to {args.perf_json}]")
    comm.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of 'Flare: Flexible "
        "In-Network Allreduce' (SC '21).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("algorithms", help="list registered allreduce algorithms")
    sub.add_parser("topologies", help="list built-in topology families")

    for name in EXPERIMENTS + ("all",):
        p = sub.add_parser(name, help=f"run {name}" if name != "all" else "run everything")
        p.add_argument(
            "--fast",
            action="store_true",
            help="reduced-scale run (seconds instead of minutes)",
        )

    bench = sub.add_parser(
        "bench", help="drive any registered algorithm via the Communicator"
    )
    bench.add_argument("algorithm", help="registry name, or 'auto'")
    bench.add_argument("--size", default="64KiB", help="per-host bytes (default 64KiB)")
    bench.add_argument("--hosts", type=int, default=16)
    bench.add_argument("--clusters", type=int, default=2,
                       help="simulated PsPIN clusters for switch-level algorithms")
    bench.add_argument("--op", default="sum", choices=("sum", "min", "max", "prod"))
    bench.add_argument("--sparse", action="store_true")
    bench.add_argument("--density", type=float, default=None,
                       help="non-zero fraction (default 0.1 with --sparse)")
    bench.add_argument("--reproducible", action="store_true")
    bench.add_argument("--repeat", type=int, default=3,
                       help="executions of the (cached) plan")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--topology", default=None,
                       help="topology family for network-simulated algorithms "
                       "(see 'topologies'; default: the paper's fat tree)")
    bench.add_argument("--topo-params", default=None, metavar="K=V,...",
                       help="topology constructor parameters, e.g. "
                       "dim_x=4,dim_y=4 or down=8x8,up=1x4")
    bench.add_argument("--routing", default=None,
                       choices=("shortest", "ecmp", "adaptive"),
                       help="path-selection policy (default: ecmp)")
    bench.add_argument("--auto-mode", default=None,
                       choices=("static", "cost"),
                       help="selection strategy for algorithm 'auto': "
                       "'static' keeps the priority ladder, 'cost' prices "
                       "candidates with the fitted planner model "
                       "(default: static)")
    bench.add_argument("--tenants", type=int, default=1,
                       help="communicators sharing one fabric (>1 enables "
                       "the multi-tenant bench)")
    bench.add_argument("--overlap", action="store_true",
                       help="issue every tenant's collective concurrently "
                       "into the shared event loop (default: sequential)")
    bench.add_argument("--weights", default=None, metavar="W1,W2,...",
                       help="per-tenant QoS weights for link arbitration "
                       "(default: all 1.0)")
    bench.add_argument("--timeline-out", default=None, metavar="PATH",
                       help="write the fabric's per-tenant timeline JSON")
    bench.add_argument("--faults", default=None, metavar="SPEC.json",
                       help="arm a declarative fault schedule on the fabric "
                       "(link loss/slowdown/outages, switch outages); runs "
                       "through the shared fabric even with one tenant")
    bench.add_argument("--fault-seed", type=int, default=None,
                       help="seed for the per-message loss/duplicate "
                       "decisions (default: the schedule's own seed)")
    bench.add_argument("--perf-json", default=None, metavar="PATH",
                       help="write machine-readable wall-clock / packets-per-"
                       "second numbers; with the 'simcore' pseudo-algorithm "
                       "this runs the tracked simulation-core harness")
    bench.add_argument("--check-against", default=None, metavar="BASELINE",
                       help="(simcore) fail on >30%% perf regression vs a "
                       "checked-in baseline report")
    bench.add_argument("--workers", type=int, default=None, metavar="N",
                       help="run the bench on the sharded parallel engine "
                       "with N worker processes (routes through the shared "
                       "fabric; degradation events are printed). With the "
                       "'simcore' pseudo-algorithm: cap its shard sweep at "
                       "N workers (default 1/2/4/8; 0 skips it)")
    bench.add_argument("--max-retransmits", type=int, default=None,
                       metavar="N",
                       help="end-to-end retransmission budget per message "
                       "under injected faults (default 64; exhausting it "
                       "surfaces the partition as an error)")
    bench.add_argument("--ack-timeout", default=None, metavar="TIME",
                       help="host ack timeout before a chunk lost to a "
                       "fault is retransmitted end to end, e.g. 50us "
                       "(default 50us)")
    bench.add_argument("--provenance-db", default=None, metavar="PATH",
                       help="record this run (identity, per-switch/per-link "
                       "counters, energy) into a sqlite provenance database; "
                       "read it back with 'flare-repro prov list|show|diff'")

    service = sub.add_parser(
        "service",
        help="long-running service mode: Poisson/trace workload in, "
        "SLO report out",
    )
    service.add_argument("--trace", default=None, metavar="SPEC.json",
                         help="replay a JSON trace of training-job epochs "
                         "(see examples/traces/training_epochs.json); "
                         "default: Poisson arrivals per --class")
    service.add_argument("--duration", default="5ms", metavar="TIME",
                         help="simulated Poisson arrival window, e.g. 60s, "
                         "5ms (default 5ms; ignored with --trace)")
    service.add_argument("--class", dest="tenant_class", action="append",
                         metavar="K=V,...",
                         help="one tenant class: name=prod,weight=4,"
                         "rate=2000,size=1MiB,hosts=8,iterations=4,"
                         "gap=20us,algorithm=flare_dense (repeatable; "
                         "default: a prod/batch pair)")
    service.add_argument("--placement", default="pack",
                         choices=("pack", "spread"),
                         help="job placement policy over topology regions")
    service.add_argument("--queue", default="wfq", choices=("wfq", "fifo"),
                         help="admission-queue discipline")
    service.add_argument("--hosts", type=int, default=32)
    service.add_argument("--topology", default=None,
                         help="topology family (see 'topologies')")
    service.add_argument("--topo-params", default=None, metavar="K=V,...")
    service.add_argument("--routing", default=None,
                         choices=("shortest", "ecmp", "adaptive"))
    service.add_argument("--seed", type=int, default=0)
    service.add_argument("--max-per-switch", type=int, default=8,
                         help="pooled handler slots per switch")
    service.add_argument("--switch-memory", type=float, default=None,
                         help="pooled switch SRAM bytes (default unmetered)")
    service.add_argument("--quota", type=int, default=None,
                         help="per-tenant-class concurrency quota")
    service.add_argument("--snapshot-interval", default=None, metavar="TIME",
                         help="rolling SLO snapshot period, e.g. 1ms")
    service.add_argument("--slo-out", default=None, metavar="PATH",
                         help="write the SLO report JSON")
    service.add_argument("--timeline-out", default=None, metavar="PATH",
                         help="write the fabric's per-collective timeline")
    service.add_argument("--faults", default=None, metavar="SPEC.json",
                         help="arm a declarative fault schedule")
    service.add_argument("--fault-seed", type=int, default=None)
    service.add_argument("--max-retransmits", type=int, default=None,
                         metavar="N",
                         help="end-to-end retransmission budget per message "
                         "under injected faults (default 64)")
    service.add_argument("--ack-timeout", default=None, metavar="TIME",
                         help="host ack timeout before a fault-lost chunk "
                         "is retransmitted, e.g. 50us (default 50us)")
    service.add_argument("--checkpoint", default=None, metavar="PATH",
                         help="atomically rewrite PATH with a crash-"
                         "consistent service checkpoint at every quiescent "
                         "SLO snapshot tick (requires --snapshot-interval)")
    service.add_argument("--resume", action="store_true",
                         help="restart from the --checkpoint file if it "
                         "exists (a missing file degrades to a fresh run, "
                         "so the same command line works before and after "
                         "a crash)")
    service.add_argument("--kill-at", default=None, metavar="TIME",
                         help="crash drill: hard-exit the process (code 13) "
                         "at this simulated instant, e.g. 1ms; resume with "
                         "--resume afterwards")
    service.add_argument("--provenance-db", default=None, metavar="PATH",
                         help="stream incremental provenance rows on every "
                         "SLO snapshot tick into a sqlite database")

    planner = sub.add_parser(
        "planner",
        help="the cost-model auto-tuning planner: offline calibration "
        "and the acceptance bench grid",
    )
    planner_sub = planner.add_subparsers(dest="planner_command", required=True)
    fit = planner_sub.add_parser(
        "fit", help="fit the cost model against the simulator and write "
        "coefficients.json"
    )
    fit.add_argument("--out", default=None, metavar="PATH",
                     help="coefficients file (default: the committed "
                     "src/repro/comm/planner/coefficients.json)")
    pbench = planner_sub.add_parser(
        "bench", help="run the acceptance grid: cost auto vs every fixed "
        "algorithm vs the static baseline (exit 1 on gate failure)"
    )
    pbench.add_argument("--hosts", type=int, default=16)
    pbench.add_argument("--out", default=None, metavar="PATH",
                        help="write rows + verdict JSON")
    pbench.add_argument("--no-check", action="store_true",
                        help="measure only; skip the acceptance gate")

    from repro.provenance.cli import add_prov_parser

    add_prov_parser(sub)

    args = parser.parse_args(argv)

    if args.command == "prov":
        from repro.provenance.cli import run_prov

        return run_prov(args)
    if args.command == "planner":
        if args.planner_command == "fit":
            from repro.comm.planner.calibrate import (
                calibrate, write_coefficients,
            )

            table = calibrate(log=print)
            path = write_coefficients(table, args.out)
            print(f"[coefficients written to {path}]")
            return 0
        from repro.perf.planner import main as planner_bench_main

        argv_out = ["--hosts", str(args.hosts)]
        if args.out:
            argv_out += ["--out", args.out]
        if args.no_check:
            argv_out += ["--no-check"]
        return planner_bench_main(argv_out)
    if args.command == "list":
        return _cmd_list()
    if args.command == "algorithms":
        return _cmd_algorithms()
    if args.command == "topologies":
        return _cmd_topologies()
    if args.command == "bench":
        if args.density is None:
            args.density = 0.1 if args.sparse else 1.0
        return _cmd_bench(args)
    if args.command == "service":
        try:
            topology = _build_cli_topology(args)
        except (TypeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _cmd_service(args, topology)
    targets = EXPERIMENTS if args.command == "all" else (args.command,)
    for name in targets:
        _run_one(name, args.fast)
        if len(targets) > 1:
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
