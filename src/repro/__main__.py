"""Command-line entry point: paper experiments and the algorithm bench.

Usage::

    python -m repro list                   # available experiments
    python -m repro algorithms             # registered allreduce algorithms
    python -m repro fig11                  # run one figure (paper scale)
    python -m repro fig15 --fast           # reduced-scale smoke run
    python -m repro all --fast             # everything
    python -m repro bench ring --size 1MiB --hosts 16 --repeat 3

``bench`` drives any registered algorithm through the unified
:class:`repro.comm.Communicator`, re-executing the cached plan to show
the plan/execute split at work.  (Also installed as the ``flare-repro``
console script.)
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

EXPERIMENTS = ("table1", "fig7", "fig10", "fig11", "fig13", "fig14", "fig15")


def _run_one(name: str, fast: bool) -> None:
    mod = importlib.import_module(f"repro.figures.{name}")
    t0 = time.perf_counter()
    result = mod.run(fast=fast)
    elapsed = time.perf_counter() - t0
    print(mod.render(result))
    print(f"[{name} completed in {elapsed:.1f}s]")


def _cmd_list() -> int:
    for name in EXPERIMENTS:
        mod = importlib.import_module(f"repro.figures.{name}")
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"{name:8s} {doc}")
    return 0


def _cmd_algorithms() -> int:
    from repro.comm import Communicator
    from repro.utils.tables import ascii_table

    rows = []
    for a in Communicator.algorithms():
        rows.append([
            a["name"],
            "x" if a["dense"] else "",
            "x" if a["sparse"] else "",
            "in-network" if a["in_network"] else "host",
            "x" if a["reproducible"] else "",
            ",".join(a["ops"]) + ("+custom" if a["custom_ops"] else ""),
            a["priority"],
        ])
    print(ascii_table(
        ["algorithm", "dense", "sparse", "where", "repro", "ops", "prio"],
        rows,
        title="Registered allreduce algorithms (priority drives 'auto')",
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.comm import CommError, Communicator

    comm = Communicator(
        n_hosts=args.hosts,
        n_clusters=args.clusters,
    )
    kwargs = dict(
        op=args.op,
        algorithm=args.algorithm,
        sparse=args.sparse,
        density=args.density,
        reproducible=args.reproducible,
    )
    try:
        plan = comm.plan(nbytes=args.size, **kwargs)
    except CommError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: 'python -m repro algorithms' lists registered "
              "algorithms and their capabilities", file=sys.stderr)
        return 2
    print(plan.describe())
    print()
    for i in range(args.repeat):
        t0 = time.perf_counter()
        result = comm.allreduce(args.size, seed=args.seed + i, **kwargs)
        wall = time.perf_counter() - t0
        print(f"run {i + 1}/{args.repeat}: {result.summary()}  "
              f"[wall {wall * 1e3:.0f} ms]")
    info = comm.cache_info()
    print(f"\nplan cache: {info.hits} hits / {info.misses} misses "
          f"(planning ran {comm.plans_built}x for {plan.executions} executions)")
    comm.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of 'Flare: Flexible "
        "In-Network Allreduce' (SC '21).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("algorithms", help="list registered allreduce algorithms")

    for name in EXPERIMENTS + ("all",):
        p = sub.add_parser(name, help=f"run {name}" if name != "all" else "run everything")
        p.add_argument(
            "--fast",
            action="store_true",
            help="reduced-scale run (seconds instead of minutes)",
        )

    bench = sub.add_parser(
        "bench", help="drive any registered algorithm via the Communicator"
    )
    bench.add_argument("algorithm", help="registry name, or 'auto'")
    bench.add_argument("--size", default="64KiB", help="per-host bytes (default 64KiB)")
    bench.add_argument("--hosts", type=int, default=16)
    bench.add_argument("--clusters", type=int, default=2,
                       help="simulated PsPIN clusters for switch-level algorithms")
    bench.add_argument("--op", default="sum", choices=("sum", "min", "max", "prod"))
    bench.add_argument("--sparse", action="store_true")
    bench.add_argument("--density", type=float, default=None,
                       help="non-zero fraction (default 0.1 with --sparse)")
    bench.add_argument("--reproducible", action="store_true")
    bench.add_argument("--repeat", type=int, default=3,
                       help="executions of the (cached) plan")
    bench.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list()
    if args.command == "algorithms":
        return _cmd_algorithms()
    if args.command == "bench":
        if args.density is None:
            args.density = 0.1 if args.sparse else 1.0
        return _cmd_bench(args)
    targets = EXPERIMENTS if args.command == "all" else (args.command,)
    for name in targets:
        _run_one(name, args.fast)
        if len(targets) > 1:
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
