"""Command-line entry point: reproduce paper experiments.

Usage::

    python -m repro list                   # available experiments
    python -m repro fig11                  # run one figure (paper scale)
    python -m repro fig15 --fast           # reduced-scale smoke run
    python -m repro all --fast             # everything
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

EXPERIMENTS = ("table1", "fig7", "fig10", "fig11", "fig13", "fig14", "fig15")


def _run_one(name: str, fast: bool) -> None:
    mod = importlib.import_module(f"repro.figures.{name}")
    t0 = time.perf_counter()
    result = mod.run(fast=fast)
    elapsed = time.perf_counter() - t0
    print(mod.render(result))
    print(f"[{name} completed in {elapsed:.1f}s]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of 'Flare: Flexible "
        "In-Network Allreduce' (SC '21).",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "list"),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-scale run (seconds instead of minutes)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            mod = importlib.import_module(f"repro.figures.{name}")
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in targets:
        _run_one(name, args.fast)
        if len(targets) > 1:
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
