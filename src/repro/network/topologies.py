"""Topology families beyond the paper's fat tree.

Each class implements the :class:`repro.network.topology.Topology`
contract and registers itself in the family registry, so the CLI
(``flare-repro topologies``, ``bench --topology``) and the
communicator (``topology=`` / ``topology_params=``) can build any of
them by name:

* :class:`XGFTTopology` — eXtended Generalized Fat Trees of arbitrary
  depth and per-level oversubscription (Öhring et al.), generalizing
  the 2-level XGFT(2; 8,8; 1,4) default;
* :class:`DragonflyTopology` — groups of routers, all-to-all inside a
  group and all-to-all between groups over global links (the Cray
  Slingshot / Aries shape Canary targets);
* :class:`TorusTopology` — a 2D wrap-around switch mesh with hosts on
  every switch (Swing's evaluation fabric);
* :class:`MultiRailTopology` — k parallel fat-tree planes, every host
  wired into each plane (dual-rail InfiniBand style).

All of them answer ``paths()`` through the generic BFS equal-cost
machinery, so every :mod:`repro.network.routing` policy works
unchanged on every family.
"""

from __future__ import annotations

import math

from repro.network.topology import NodeId, Topology, register_topology


@register_topology
class XGFTTopology(Topology):
    """eXtended Generalized Fat Tree XGFT(h; m1..mh; w1..wh).

    ``down[i]`` (m) is the child count of a level-(i+1) node; ``up[i]``
    (w) is the parent count of a level-i node.  Hosts sit at level 0
    (``prod(down)`` of them); switch level ``l`` holds
    ``prod(down[l:]) * prod(up[:l])`` nodes named ``sw<l>_<k>``.
    ``XGFT(2; (8, 8); (1, 4))`` rebuilds the paper's default fat tree;
    deeper ``down``/``up`` vectors give multi-level and per-level
    oversubscribed trees.
    """

    family = "xgft"

    def __init__(
        self,
        down: tuple[int, ...] = (8, 8),
        up: tuple[int, ...] = (1, 4),
        link_gbps: float = 100.0,
        link_latency_ns: float = 250.0,
        aggregation: bool = True,
    ) -> None:
        super().__init__(link_gbps, link_latency_ns, aggregation)
        self.down = tuple(int(m) for m in down)
        self.up = tuple(int(w) for w in up)
        if len(self.down) != len(self.up):
            raise ValueError("down and up need one entry per tree level")
        if not self.down:
            raise ValueError("need at least one level")
        if any(m < 1 for m in self.down) or any(w < 1 for w in self.up):
            raise ValueError("level arities must be >= 1")
        for level, (m, w) in enumerate(zip(self.down, self.up), start=1):
            if w > m:
                raise ValueError(
                    f"level {level} has {w} uplinks per node but only {m} "
                    "downlinks: uplinks cannot outnumber downlinks"
                )
        self.height = len(self.down)
        self._n_hosts = math.prod(self.down)
        # A level-l node is labeled by digits (a_{l+1}..a_h; b_1..b_l)
        # with a_i < down[i-1], b_i < up[i-1]; a level-(l-1) node
        # (a_l..a_h; b_1..b_{l-1}) uplinks to (a_{l+1}..a_h;
        # b_1..b_{l-1}, b_l) for every b_l — the standard XGFT rule.
        for level in range(1, self.height + 1):
            for child_label in self._labels(level - 1):
                a, b = child_label
                for b_l in range(self.up[level - 1]):
                    parent = (a[1:], b + (b_l,))
                    self._add_duplex(
                        self._name(level - 1, child_label),
                        self._name(level, parent),
                    )

    def _labels(self, level: int):
        """All (a-digits, b-digits) labels of one level."""
        a_ranges = self.down[level:]
        b_ranges = self.up[:level]

        def product(ranges: tuple[int, ...]):
            out: list[tuple[int, ...]] = [()]
            for r in ranges:
                out = [t + (v,) for t in out for v in range(r)]
            return out

        return [(a, b) for a in product(a_ranges) for b in product(b_ranges)]

    def _name(self, level: int, label: tuple[tuple[int, ...], tuple[int, ...]]) -> NodeId:
        a, b = label
        # Flatten the mixed-radix label, first digit least significant:
        # hosts sharing a leaf (same a_2..a_h) then get contiguous ids,
        # matching the fat tree's rank-mapping convention.
        idx, mult = 0, 1
        for digit, radix in zip(a + b, self.down[level:] + self.up[:level]):
            idx += digit * mult
            mult *= radix
        return f"h{idx}" if level == 0 else f"sw{level}_{idx}"

    @property
    def hosts(self) -> list[NodeId]:
        return [f"h{i}" for i in range(self._n_hosts)]

    def level_of(self, switch: NodeId) -> int:
        return int(switch[2:].split("_")[0])

    def describe(self) -> dict:
        out = dict(
            down=self.down,
            up=self.up,
            link_gbps=self.link_gbps,
            link_latency_ns=self.link_latency_ns,
        )
        if not self.supports_aggregation:
            out["aggregation"] = False
        return out


@register_topology
class DragonflyTopology(Topology):
    """Canonical dragonfly: ``n_groups`` groups of ``routers_per_group``
    routers, ``hosts_per_router`` hosts each, all-to-all local wiring
    and ``global_per_router`` global links per router.

    Global links are laid out deterministically: every group pair gets
    ``routers_per_group * global_per_router / (n_groups - 1)`` links
    (that quotient must be integral — the balanced arrangement),
    consuming router global-ports in sorted order.  Routers are named
    ``r<g>_<i>``; minimal routes are at most router-router-router
    (local, global, local) plus the host hops.
    """

    family = "dragonfly"

    def __init__(
        self,
        n_groups: int = 5,
        routers_per_group: int = 4,
        hosts_per_router: int = 2,
        global_per_router: int = 1,
        link_gbps: float = 100.0,
        link_latency_ns: float = 250.0,
        aggregation: bool = True,
    ) -> None:
        super().__init__(link_gbps, link_latency_ns, aggregation)
        if n_groups < 2 or routers_per_group < 1 or hosts_per_router < 1:
            raise ValueError("need >= 2 groups and >= 1 router/host per group")
        endpoints = routers_per_group * global_per_router
        if endpoints < n_groups - 1:
            raise ValueError(
                f"{endpoints} global ports per group cannot reach the other "
                f"{n_groups - 1} groups"
            )
        if endpoints % (n_groups - 1) != 0:
            raise ValueError(
                f"{endpoints} global ports per group do not divide evenly "
                f"over {n_groups - 1} peer groups (balanced layout required)"
            )
        self.n_groups = n_groups
        self.routers_per_group = routers_per_group
        self.hosts_per_router = hosts_per_router
        self.global_per_router = global_per_router
        self._n_hosts = n_groups * routers_per_group * hosts_per_router
        for h in range(self._n_hosts):
            self._add_duplex(f"h{h}", self.router_of(f"h{h}"))
        for g in range(n_groups):
            for i in range(routers_per_group):
                for j in range(i + 1, routers_per_group):
                    self._add_duplex(f"r{g}_{i}", f"r{g}_{j}")
        # Balanced global wiring: group g's global ports, in order, aim
        # at the other groups round-robin; each unordered pair draws
        # its routers by popping both groups' next free port.
        links_per_pair = endpoints // (n_groups - 1)
        next_port = [0] * n_groups
        for g1 in range(n_groups):
            for g2 in range(g1 + 1, n_groups):
                for _ in range(links_per_pair):
                    r1 = next_port[g1] // global_per_router
                    r2 = next_port[g2] // global_per_router
                    next_port[g1] += 1
                    next_port[g2] += 1
                    self._add_duplex(f"r{g1}_{r1}", f"r{g2}_{r2}")

    @property
    def hosts(self) -> list[NodeId]:
        return [f"h{i}" for i in range(self._n_hosts)]

    def router_of(self, host: NodeId) -> NodeId:
        idx = int(host[1:])
        if not 0 <= idx < self._n_hosts:
            raise ValueError(f"unknown host {host}")
        g, rest = divmod(idx, self.routers_per_group * self.hosts_per_router)
        return f"r{g}_{rest // self.hosts_per_router}"

    def group_of(self, node: NodeId) -> int:
        if node.startswith("h"):
            node = self.router_of(node)
        return int(node[1:].split("_")[0])

    def _region_key(self, host: NodeId) -> str:
        # A dragonfly's locality domain is the *group* (pod), not the
        # single router: intra-group traffic never crosses a global link,
        # so the placement scheduler packs per group.
        return f"g{self.group_of(host)}"

    def region_switches(self, region: str) -> tuple[NodeId, ...]:
        if region not in self.regions():
            raise ValueError(f"unknown region {region}")
        g = int(region[1:])
        return tuple(f"r{g}_{i}" for i in range(self.routers_per_group))

    def describe(self) -> dict:
        out = dict(
            n_groups=self.n_groups,
            routers_per_group=self.routers_per_group,
            hosts_per_router=self.hosts_per_router,
            global_per_router=self.global_per_router,
            link_gbps=self.link_gbps,
            link_latency_ns=self.link_latency_ns,
        )
        if not self.supports_aggregation:
            out["aggregation"] = False
        return out


@register_topology
class TorusTopology(Topology):
    """2D torus of switches with wrap-around links, hosts on every
    switch.  Switch ``(x, y)`` is named ``t<x>_<y>``; its hosts are the
    next ``hosts_per_switch`` ids in row-major order.  Minimal routing
    walks the shorter way around each dimension; the BFS path machinery
    yields every minimal staircase (capped), which is exactly the
    equal-cost set dimension-ordered ECMP spreads over.
    """

    family = "torus"

    def __init__(
        self,
        dim_x: int = 4,
        dim_y: int = 4,
        hosts_per_switch: int = 4,
        link_gbps: float = 100.0,
        link_latency_ns: float = 250.0,
        aggregation: bool = True,
    ) -> None:
        super().__init__(link_gbps, link_latency_ns, aggregation)
        if dim_x < 2 or dim_y < 2:
            raise ValueError("torus dimensions must be >= 2")
        if hosts_per_switch < 1:
            raise ValueError("need at least one host per switch")
        self.dim_x = dim_x
        self.dim_y = dim_y
        self.hosts_per_switch = hosts_per_switch
        self._n_hosts = dim_x * dim_y * hosts_per_switch
        for h in range(self._n_hosts):
            self._add_duplex(f"h{h}", self.switch_of(f"h{h}"))
        for x in range(dim_x):
            for y in range(dim_y):
                self._add_duplex(f"t{x}_{y}", f"t{(x + 1) % dim_x}_{y}")
                self._add_duplex(f"t{x}_{y}", f"t{x}_{(y + 1) % dim_y}")

    @property
    def hosts(self) -> list[NodeId]:
        return [f"h{i}" for i in range(self._n_hosts)]

    def switch_of(self, host: NodeId) -> NodeId:
        idx = int(host[1:])
        if not 0 <= idx < self._n_hosts:
            raise ValueError(f"unknown host {host}")
        s = idx // self.hosts_per_switch
        return f"t{s // self.dim_y}_{s % self.dim_y}"

    def torus_distance(self, a: NodeId, b: NodeId) -> int:
        """Minimal switch-to-switch hop count (per-dimension wrap)."""
        ax, ay = (int(v) for v in a[1:].split("_"))
        bx, by = (int(v) for v in b[1:].split("_"))
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.dim_x - dx) + min(dy, self.dim_y - dy)

    def describe(self) -> dict:
        out = dict(
            dim_x=self.dim_x,
            dim_y=self.dim_y,
            hosts_per_switch=self.hosts_per_switch,
            link_gbps=self.link_gbps,
            link_latency_ns=self.link_latency_ns,
        )
        if not self.supports_aggregation:
            out["aggregation"] = False
        return out


@register_topology
class MultiRailTopology(Topology):
    """``n_rails`` parallel two-level fat-tree planes over one host set.

    Every host has one NIC per rail, wired to its leaf in that plane;
    planes never interconnect, so equal-cost paths between hosts exist
    through every rail (times every spine of that rail) and rail choice
    *is* the routing decision.  Plane-r switches are named ``p<r>l<j>``
    and ``p<r>s<k>``.
    """

    family = "multi-rail"

    def __init__(
        self,
        n_hosts: int = 16,
        hosts_per_leaf: int = 4,
        n_spines: int = 2,
        n_rails: int = 2,
        link_gbps: float = 100.0,
        link_latency_ns: float = 250.0,
        aggregation: bool = True,
    ) -> None:
        super().__init__(link_gbps, link_latency_ns, aggregation)
        if n_hosts % hosts_per_leaf != 0:
            raise ValueError("hosts_per_leaf must divide n_hosts")
        if n_rails < 1 or n_spines < 1:
            raise ValueError("need at least one rail and one spine")
        if n_spines > hosts_per_leaf:
            raise ValueError(
                f"n_spines={n_spines} exceeds the leaf uplink capacity of "
                f"{hosts_per_leaf} (uplinks cannot outnumber downlinks)"
            )
        self._n_hosts = n_hosts
        self.hosts_per_leaf = hosts_per_leaf
        self.n_leaves = n_hosts // hosts_per_leaf
        self.n_spines = n_spines
        self.n_rails = n_rails
        for r in range(n_rails):
            for h in range(n_hosts):
                self._add_duplex(f"h{h}", self.leaf_of(f"h{h}", rail=r))
            for j in range(self.n_leaves):
                for s in range(n_spines):
                    self._add_duplex(f"p{r}l{j}", f"p{r}s{s}")

    @property
    def hosts(self) -> list[NodeId]:
        return [f"h{i}" for i in range(self._n_hosts)]

    def leaf_of(self, host: NodeId, rail: int = 0) -> NodeId:
        idx = int(host[1:])
        if not 0 <= idx < self._n_hosts:
            raise ValueError(f"unknown host {host}")
        if not 0 <= rail < self.n_rails:
            raise ValueError(f"unknown rail {rail}")
        return f"p{rail}l{idx // self.hosts_per_leaf}"

    def rail_of(self, switch: NodeId) -> int:
        return int(switch[1:].split("l")[0].split("s")[0])

    def describe(self) -> dict:
        out = dict(
            n_hosts=self._n_hosts,
            hosts_per_leaf=self.hosts_per_leaf,
            n_spines=self.n_spines,
            n_rails=self.n_rails,
            link_gbps=self.link_gbps,
            link_latency_ns=self.link_latency_ns,
        )
        if not self.supports_aggregation:
            out["aggregation"] = False
        return out
