"""Fabric graph partitioning for the sharded parallel engine.

The sharded engine (``repro.network.parallel``) pins disjoint regions
of the fabric — switches, their attached hosts, and every link whose
*source* endpoint they own — to worker processes.  This module is the
planning half: a deterministic, topology-agnostic partitioner plus the
flat numpy index tables the workers' vectorized event batches run on.

Partitioning strategy
---------------------
Edge switches (those with at least one host neighbor) are sorted in
natural order and split into ``n_shards`` contiguous, balanced chunks,
so racks stay together and most traffic stays shard-local.  Core
switches (spines and the like) are dealt round-robin across shards.
Hosts either stay with the coordinator process (``coordinator_hosts=
True`` — required when host-side callbacks drive collectives, as in
``Fabric``) or follow their edge switch (pure transport workloads,
maximum parallelism).  A *directed* link belongs to the shard owning
its source node, so every ``Link.transmit`` has exactly one writer.

Lookahead
---------
Conservative synchronization needs a lower bound on how fast causality
crosses shard boundaries.  We use the minimum link latency over the
*whole* fabric, not just cut edges: that stronger bound additionally
guarantees a message makes at most one hop per synchronization window,
which is what lets workers execute a window as one vectorized batch
(sort arrivals per link, chain the serializations) with no intra-window
event loop at all.

Everything here is pure planning — no processes, no simulator state.
:class:`ShardingError` signals "no usable partition"; callers degrade
to the sequential engine rather than erroring (see
``repro.pspin.pdes.build_engine``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.topology import FatTreeTopology, NodeId, Topology

#: Owner id of the coordinator process in every owner table.
COORDINATOR = -1


class ShardingError(RuntimeError):
    """The topology admits no usable partition for the requested shard
    count (too few edge switches, zero-latency links, ...)."""


def _natural_key(name: str) -> tuple:
    """Sort switch names numerically when suffixed with digits
    (``l2`` < ``l10``), falling back to lexicographic order."""
    head = name.rstrip("0123456789")
    tail = name[len(head):]
    return (head, int(tail)) if tail else (head, -1)


@dataclass
class ShardIndex:
    """Flat integer/float views of one topology, shared by all shards.

    Node indices follow ``topology.hosts + topology.switches`` order;
    link indices follow ``topology.links()`` order.  Workers inherit
    these arrays copy-on-write across ``fork`` and address links by
    index instead of name on the vectorized path.
    """

    names: list[NodeId]
    idx: dict[NodeId, int]
    owner: np.ndarray  # int64 per node; COORDINATOR (-1) or shard id
    link_keys: list[tuple[NodeId, NodeId]]
    link_src: np.ndarray  # int64 node index per directed link
    link_dst: np.ndarray
    link_rate: np.ndarray  # float64 bytes/ns per link
    link_latency: np.ndarray  # float64 ns per link
    # Sorted composite key table for vectorized (src, dst) -> link id.
    _lookup_keys: np.ndarray = field(repr=False)
    _lookup_perm: np.ndarray = field(repr=False)
    # Fat-tree structure for closed-form vectorized up-down routing
    # (None on other families; workers fall back to per-pair routing).
    kind: np.ndarray | None = None  # 0 host / 1 leaf / 2 spine
    num: np.ndarray | None = None  # numeric suffix of each node name
    host_leaf_node: np.ndarray | None = None  # host idx -> leaf node idx
    spine_node: np.ndarray | None = None  # spine number -> node idx
    n_spines: int = 0

    @property
    def n_nodes(self) -> int:
        return len(self.names)

    @property
    def n_links(self) -> int:
        return len(self.link_keys)

    def link_ids(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized directed-link lookup by endpoint node indices."""
        composite = src * np.int64(self.n_nodes) + dst
        pos = np.searchsorted(self._lookup_keys, composite)
        if pos.size and (
            (pos >= self._lookup_keys.size).any()
            or (self._lookup_keys[np.minimum(pos, self._lookup_keys.size - 1)]
                != composite).any()
        ):
            raise KeyError("no such link in index")
        return self._lookup_perm[pos]


@dataclass
class ShardPlan:
    """A committed partition: node ownership + synchronization window."""

    n_shards: int
    index: ShardIndex
    shard_nodes: list[list[NodeId]]  # per shard, deterministic order
    lookahead: float  # ns; also the PDES window length
    coordinator_hosts: bool
    cut_links: int  # directed links whose endpoints span owners

    def owner_of(self, node: NodeId) -> int:
        return int(self.index.owner[self.index.idx[node]])


def build_index(topology: Topology, owner: np.ndarray | None = None) -> ShardIndex:
    """Build the flat numpy tables for one topology."""
    names = list(topology.hosts) + list(topology.switches)
    idx = {name: i for i, name in enumerate(names)}
    n = len(names)
    if owner is None:
        owner = np.full(n, COORDINATOR, dtype=np.int64)
    links = topology.links()
    link_keys = [link.key for link in links]
    link_src = np.fromiter((idx[a] for a, _ in link_keys), np.int64, len(link_keys))
    link_dst = np.fromiter((idx[b] for _, b in link_keys), np.int64, len(link_keys))
    link_rate = np.fromiter((ln.bytes_per_ns for ln in links), np.float64, len(links))
    link_latency = np.fromiter(
        (ln.latency_ns for ln in links), np.float64, len(links)
    )
    composite = link_src * np.int64(n) + link_dst
    perm = np.argsort(composite, kind="stable")
    index = ShardIndex(
        names=names,
        idx=idx,
        owner=owner,
        link_keys=link_keys,
        link_src=link_src,
        link_dst=link_dst,
        link_rate=link_rate,
        link_latency=link_latency,
        _lookup_keys=composite[perm],
        _lookup_perm=perm.astype(np.int64),
    )
    if isinstance(topology, FatTreeTopology):
        kind = np.zeros(n, dtype=np.int64)
        num = np.zeros(n, dtype=np.int64)
        host_leaf_node = np.zeros(n, dtype=np.int64)
        spine_node = np.zeros(topology.n_spines, dtype=np.int64)
        for i, name in enumerate(names):
            value = int(name[1:])
            num[i] = value
            if name[0] == "l":
                kind[i] = 1
            elif name[0] == "s":
                kind[i] = 2
                spine_node[value] = i
        for i, name in enumerate(names):
            if kind[i] == 0:
                host_leaf_node[i] = idx[topology.leaf_of(name)]
        index.kind = kind
        index.num = num
        index.host_leaf_node = host_leaf_node
        index.spine_node = spine_node
        index.n_spines = topology.n_spines
    return index


def updown_next_hop_vec(
    index: ShardIndex, node: np.ndarray, dst: np.ndarray, salt: int
) -> np.ndarray:
    """Vectorized up-down next hop over fat-tree structure arrays.

    Bit-identical to ``UpDownRouter.next_hop`` — both sides compute the
    spine pick with the same splitmix64 key (see ``routing.mix64``).
    ``node != dst`` rows only (deliveries are split off by the caller).
    """
    from repro.network.routing import mix64_np

    kind, num = index.kind, index.num
    out = np.empty(node.shape, dtype=np.int64)
    nk = kind[node]
    dk = kind[dst]
    # Hosts climb to their leaf.
    mask = nk == 0
    out[mask] = index.host_leaf_node[node[mask]]
    # Spines descend to the destination('s) leaf.
    mask = nk == 2
    if mask.any():
        d = dst[mask]
        out[mask] = np.where(dk[mask] == 0, index.host_leaf_node[d], d)
    # Leaves: descend locally, jump straight to a spine destination, or
    # cross the salted spine pick.
    mask = nk == 1
    if mask.any():
        n_ = node[mask]
        d = dst[mask]
        dk_ = dk[mask]
        dleaf = np.where(dk_ == 0, index.host_leaf_node[d], d)
        key = (
            (num[n_].astype(np.uint64) << np.uint64(34))
            ^ ((dk_ != 0).astype(np.uint64) << np.uint64(33))
            ^ num[d].astype(np.uint64)
            ^ np.uint64(salt)
        )
        spine = index.spine_node[
            (mix64_np(key) % np.uint64(index.n_spines)).astype(np.int64)
        ]
        local = np.where(dleaf == n_, d, spine)
        out[mask] = np.where(dk_ == 2, d, local)
    return out


def plan_shards(
    topology: Topology,
    n_shards: int,
    coordinator_hosts: bool = True,
) -> ShardPlan:
    """Partition ``topology`` into ``n_shards`` worker regions.

    Raises :class:`ShardingError` when no usable partition exists:
    fewer edge switches than shards, non-positive link latency (no
    lookahead), or a degenerate switchless fabric.
    """
    if n_shards < 1:
        raise ShardingError(f"n_shards must be >= 1, got {n_shards}")
    switches = sorted(topology.switches, key=_natural_key)
    if not switches:
        raise ShardingError("topology has no switches to shard")
    edge = [
        s
        for s in switches
        if any(not topology.is_switch(p) for p in topology.neighbors(s))
    ]
    core = [s for s in switches if s not in set(edge)]
    if len(edge) < n_shards:
        raise ShardingError(
            f"workers={n_shards} exceeds the {len(edge)} edge switches "
            "available to anchor shards"
        )
    links = topology.links()
    if not links:
        raise ShardingError("topology has no links")
    lookahead = min(link.latency_ns for link in links)
    if lookahead <= 0.0:
        raise ShardingError(
            "zero-latency links leave conservative sync no lookahead"
        )

    index = build_index(topology)
    owner = index.owner
    shard_nodes: list[list[NodeId]] = [[] for _ in range(n_shards)]
    # Contiguous balanced chunks of edge switches keep racks together.
    bounds = np.linspace(0, len(edge), n_shards + 1).astype(int)
    for shard in range(n_shards):
        for name in edge[bounds[shard]: bounds[shard + 1]]:
            owner[index.idx[name]] = shard
            shard_nodes[shard].append(name)
    for i, name in enumerate(core):
        shard = i % n_shards
        owner[index.idx[name]] = shard
        shard_nodes[shard].append(name)
    if not coordinator_hosts:
        for host in topology.hosts:
            shard = int(owner[index.idx[topology.attach_switch(host)]])
            owner[index.idx[host]] = shard
            shard_nodes[shard].append(host)
    link_owner = owner[index.link_src]
    cut = int((link_owner != owner[index.link_dst]).sum())
    return ShardPlan(
        n_shards=n_shards,
        index=index,
        shard_nodes=shard_nodes,
        lookahead=lookahead,
        coordinator_hosts=coordinator_hosts,
        cut_links=cut,
    )
