"""SST-equivalent network simulator (paper Sec. 7.1, Fig. 15).

The paper extends SST so switches can modify in-transit packets and
evaluates host-based vs in-network allreduce on a simulated 64-node
2-level fat tree.  This package rebuilds that substrate at chunk
granularity: links with store-and-forward serialization and busy
queues, a generalized two-level fat-tree topology with deterministic
ECMP-style spine selection, and per-link traffic accounting (the
bytes x hops quantity Fig. 15's right panel reports).
"""

from repro.network.links import Link
from repro.network.topology import FatTreeTopology, NodeId
from repro.network.simulator import NetworkSimulator, TrafficStats
from repro.network.trees import embed_reduction_tree

__all__ = [
    "Link",
    "FatTreeTopology",
    "NodeId",
    "NetworkSimulator",
    "TrafficStats",
    "embed_reduction_tree",
]
