"""SST-equivalent network simulator (paper Sec. 7.1, Fig. 15).

The paper extends SST so switches can modify in-transit packets and
evaluates host-based vs in-network allreduce on a simulated 64-node
2-level fat tree.  This package rebuilds that substrate at chunk
granularity — links with store-and-forward serialization and busy
queues, per-link traffic accounting — and generalizes it into three
pluggable layers:

* **Topology** (:mod:`repro.network.topology`,
  :mod:`repro.network.topologies`): fat tree, multi-level XGFT,
  dragonfly, 2D torus, multi-rail — a registry of wirings exposing
  equal-cost shortest paths and switch capability flags;
* **Router** (:mod:`repro.network.routing`): deterministic shortest
  path, seeded ECMP hashing, and congestion-adaptive selection over
  the live link state;
* **TreePlanner** (:mod:`repro.network.trees`): aggregation trees over
  any topology, including Canary-style dynamic re-rooting away from
  congested links.

Reliability (:mod:`repro.network.faults`): declarative per-link
loss/corruption/degradation and link/switch outages with seeded,
process-stable per-message decisions, recovered by the simulator's
host-timeout retransmission protocol.
"""

from repro.network.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.network.links import Link, LinkFault
from repro.network.topology import (
    FatTreeTopology,
    NodeId,
    Topology,
    available_topologies,
    build_topology,
)
from repro.network import topologies as _topologies  # noqa: F401  (registers families)
from repro.network.topologies import (
    DragonflyTopology,
    MultiRailTopology,
    TorusTopology,
    XGFTTopology,
)
from repro.network.routing import (
    AdaptiveRouter,
    EcmpRouter,
    Router,
    ShortestPathRouter,
    available_routers,
    build_router,
)
from repro.network.simulator import (
    Message,
    NetworkSimulator,
    TrafficStats,
    UnreachableError,
)
from repro.network.trees import (
    AggregationTree,
    EmbeddedTree,
    TreePlanner,
    embed_reduction_tree,
)

__all__ = [
    "Link",
    "LinkFault",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "UnreachableError",
    "Topology",
    "FatTreeTopology",
    "XGFTTopology",
    "DragonflyTopology",
    "TorusTopology",
    "MultiRailTopology",
    "NodeId",
    "available_topologies",
    "build_topology",
    "Router",
    "ShortestPathRouter",
    "EcmpRouter",
    "AdaptiveRouter",
    "available_routers",
    "build_router",
    "Message",
    "NetworkSimulator",
    "TrafficStats",
    "AggregationTree",
    "EmbeddedTree",
    "TreePlanner",
    "embed_reduction_tree",
]
