"""Routing policies: pick one path among a topology's equal-cost set.

The topology layer answers "which shortest paths exist"; this layer
answers "which one does this message take".  Three policies:

* :class:`ShortestPathRouter` — always the first path in canonical
  order (deterministic, congestion-oblivious; the worst case ECMP is
  meant to fix);
* :class:`EcmpRouter` — hash-based spreading over the equal-cost set,
  seeded through :func:`repro.utils.rngtools.ecmp_salt` so the same
  seed picks the same paths in every run and every process;
* :class:`AdaptiveRouter` — congestion-aware selection using the live
  link state the simulator mutates (``busy_until``/``bytes_carried``),
  the Canary-style policy that steers flows off hot links.

Routers are consulted *per hop*: the simulator asks for a route from
the message's current node, so adaptive decisions track congestion as
it develops.  Every policy only ever picks among minimal paths, and
each hop strictly decreases the BFS distance to the destination, so
routes are loop-free under all policies.
"""

from __future__ import annotations

from repro.network.links import Link
from repro.network.topology import NodeId, Topology
from repro.utils.rngtools import ecmp_salt, stable_hash


class Router:
    """Base path-selection policy over one topology."""

    name = "base"
    #: True when ``next_hop(node, dst)`` is a pure function of its
    #: arguments (no live link state), so the simulator may memoize it.
    cacheable = False

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self.topology = topology
        self.seed = seed

    def select(self, src: NodeId, dst: NodeId, paths: list[list[NodeId]]) -> list[NodeId]:
        raise NotImplementedError

    def route(self, src: NodeId, dst: NodeId) -> list[NodeId]:
        """The node path this policy assigns to (src, dst) right now."""
        if src == dst:
            return [src]
        return self.select(src, dst, self.topology.paths(src, dst))

    def next_hop(self, node: NodeId, dst: NodeId) -> NodeId:
        return self.route(node, dst)[1]

    def path_links(self, src: NodeId, dst: NodeId) -> list[Link]:
        nodes = self.route(src, dst)
        return [self.topology.link(a, b) for a, b in zip(nodes, nodes[1:])]

    def describe(self) -> dict:
        return {"policy": self.name, "seed": self.seed}


class ShortestPathRouter(Router):
    """Deterministic single-path routing: first path in canonical
    order.  Every flow between a node pair shares one path — the
    congestion-prone baseline the adaptive tests compare against."""

    name = "shortest"
    cacheable = True

    def select(self, src, dst, paths):
        return paths[0]


class EcmpRouter(Router):
    """Hash-based equal-cost multi-path.

    The (src, dst) pair is hashed onto the equal-cost set with a
    process-stable hash salted from the seed, mirroring how switches
    hash flow five-tuples onto next-hops.  Same seed, same picks, every
    run — the reproducibility contract of the F3 flexibility axis.
    """

    name = "ecmp"
    cacheable = True

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        super().__init__(topology, seed)
        self._salt = ecmp_salt(seed)

    def select(self, src, dst, paths):
        return paths[stable_hash(src, dst, salt=self._salt) % len(paths)]


class AdaptiveRouter(Router):
    """Congestion-aware selection over the equal-cost set.

    Scores each candidate path by the worst link on it — (latest
    ``busy_until``, most ``bytes_carried``) — and takes the least
    congested, falling back to ECMP order among exact ties.  Because
    the links are the very objects the simulator serializes messages
    on, the decision always sees the live network state; re-evaluated
    at every hop, it steers chunks around queues as they build, the way
    Canary re-routes reduction traffic.
    """

    name = "adaptive"

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        super().__init__(topology, seed)
        self._salt = ecmp_salt(seed)

    def _score(self, path: list[NodeId]) -> tuple[float, float]:
        worst_busy = 0.0
        worst_bytes = 0.0
        for a, b in zip(path, path[1:]):
            link = self.topology.link(a, b)
            worst_busy = max(worst_busy, link.busy_until)
            worst_bytes = max(worst_bytes, link.bytes_carried)
        return (worst_busy, worst_bytes)

    def select(self, src, dst, paths):
        if len(paths) == 1:
            return paths[0]
        tiebreak = stable_hash(src, dst, salt=self._salt) % len(paths)
        return min(
            enumerate(paths),
            key=lambda ip: (self._score(ip[1]), (ip[0] - tiebreak) % len(paths)),
        )[1]


ROUTERS: dict[str, type[Router]] = {
    ShortestPathRouter.name: ShortestPathRouter,
    EcmpRouter.name: EcmpRouter,
    AdaptiveRouter.name: AdaptiveRouter,
}


def available_routers() -> tuple[str, ...]:
    return tuple(sorted(ROUTERS))


def build_router(
    policy: "str | Router | None", topology: Topology, seed: int = 0
) -> Router:
    """Resolve a policy name (or pass through an instance) to a Router.

    ``None`` means the default policy, ECMP — the behavior the paper's
    fat-tree experiments assume.
    """
    if isinstance(policy, Router):
        if policy.topology is not topology:
            raise ValueError(
                "router was built for a different topology instance; "
                "build one per simulation (link state is live)"
            )
        return policy
    name = policy or EcmpRouter.name
    try:
        cls = ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; available: {available_routers()}"
        ) from None
    return cls(topology, seed=seed)
