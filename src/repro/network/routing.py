"""Routing policies: pick one path among a topology's equal-cost set.

The topology layer answers "which shortest paths exist"; this layer
answers "which one does this message take".  Three policies:

* :class:`ShortestPathRouter` — always the first path in canonical
  order (deterministic, congestion-oblivious; the worst case ECMP is
  meant to fix);
* :class:`EcmpRouter` — hash-based spreading over the equal-cost set,
  seeded through :func:`repro.utils.rngtools.ecmp_salt` so the same
  seed picks the same paths in every run and every process;
* :class:`AdaptiveRouter` — congestion-aware selection using the live
  link state the simulator mutates (``busy_until``/``bytes_carried``),
  the Canary-style policy that steers flows off hot links.

Routers are consulted *per hop*: the simulator asks for a route from
the message's current node, so adaptive decisions track congestion as
it develops.  Every policy only ever picks among minimal paths, and
each hop strictly decreases the BFS distance to the destination, so
routes are loop-free under all policies.
"""

from __future__ import annotations

import numpy as np

from repro.network.links import Link
from repro.network.topology import FatTreeTopology, NodeId, Topology
from repro.utils.rngtools import ecmp_salt, stable_hash

_M64 = (1 << 64) - 1


def mix64(x: int) -> int:
    """splitmix64 finalizer over a 64-bit integer key.

    The up-down router's spine selection must be computable both one
    message at a time (sequential engine) and over whole numpy batches
    (sharded engine's vectorized windows) with *identical* results —
    which rules out the string-based :func:`stable_hash`.  This scalar
    form and :func:`mix64_np` implement the same wrapping arithmetic.
    """
    x &= _M64
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def mix64_np(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mix64` (uint64 in, uint64 out, bit-identical)."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class Router:
    """Base path-selection policy over one topology."""

    name = "base"
    #: True when ``next_hop(node, dst)`` is a pure function of its
    #: arguments (no live link state), so the simulator may memoize it.
    cacheable = False

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        self.topology = topology
        self.seed = seed

    def select(self, src: NodeId, dst: NodeId, paths: list[list[NodeId]]) -> list[NodeId]:
        raise NotImplementedError

    def route(self, src: NodeId, dst: NodeId) -> list[NodeId]:
        """The node path this policy assigns to (src, dst) right now."""
        if src == dst:
            return [src]
        return self.select(src, dst, self.topology.paths(src, dst))

    def next_hop(self, node: NodeId, dst: NodeId) -> NodeId:
        return self.route(node, dst)[1]

    def path_links(self, src: NodeId, dst: NodeId) -> list[Link]:
        nodes = self.route(src, dst)
        return [self.topology.link(a, b) for a, b in zip(nodes, nodes[1:])]

    def describe(self) -> dict:
        return {"policy": self.name, "seed": self.seed}


class ShortestPathRouter(Router):
    """Deterministic single-path routing: first path in canonical
    order.  Every flow between a node pair shares one path — the
    congestion-prone baseline the adaptive tests compare against."""

    name = "shortest"
    cacheable = True

    def select(self, src, dst, paths):
        return paths[0]


class EcmpRouter(Router):
    """Hash-based equal-cost multi-path.

    The (src, dst) pair is hashed onto the equal-cost set with a
    process-stable hash salted from the seed, mirroring how switches
    hash flow five-tuples onto next-hops.  Same seed, same picks, every
    run — the reproducibility contract of the F3 flexibility axis.
    """

    name = "ecmp"
    cacheable = True

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        super().__init__(topology, seed)
        self._salt = ecmp_salt(seed)

    def select(self, src, dst, paths):
        return paths[stable_hash(src, dst, salt=self._salt) % len(paths)]


class AdaptiveRouter(Router):
    """Congestion-aware selection over the equal-cost set.

    Scores each candidate path by the worst link on it — (latest
    ``busy_until``, most ``bytes_carried``) — and takes the least
    congested, falling back to ECMP order among exact ties.  Because
    the links are the very objects the simulator serializes messages
    on, the decision always sees the live network state; re-evaluated
    at every hop, it steers chunks around queues as they build, the way
    Canary re-routes reduction traffic.
    """

    name = "adaptive"

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        super().__init__(topology, seed)
        self._salt = ecmp_salt(seed)

    def _score(self, path: list[NodeId]) -> tuple[float, float]:
        worst_busy = 0.0
        worst_bytes = 0.0
        for a, b in zip(path, path[1:]):
            link = self.topology.link(a, b)
            worst_busy = max(worst_busy, link.busy_until)
            worst_bytes = max(worst_bytes, link.bytes_carried)
        return (worst_busy, worst_bytes)

    def select(self, src, dst, paths):
        if len(paths) == 1:
            return paths[0]
        tiebreak = stable_hash(src, dst, salt=self._salt) % len(paths)
        return min(
            enumerate(paths),
            key=lambda ip: (self._score(ip[1]), (ip[0] - tiebreak) % len(paths)),
        )[1]


class UpDownRouter(Router):
    """Closed-form up-down routing for two-level fat trees.

    ``paths()``-based policies BFS the whole graph per source — fine at
    64 hosts, catastrophic at 100k.  This policy computes each hop in
    O(1) from the tree structure: climb to the leaf, cross one spine
    when the endpoints sit under different leaves, descend.  The spine
    is picked by salting the (current leaf, destination) pair through
    :func:`mix64`, so the *same* selection runs vectorized over numpy
    batches inside sharded workers (see ``repro.network.shard``).

    Structural/oblivious: like real up-down tables it does not consult
    failure state — use ``shortest``/``ecmp``/``adaptive`` for
    fault-rerouting studies.  On non-fat-tree topologies it falls back
    to the topology's own canonical route.
    """

    name = "updown"
    cacheable = True

    def __init__(self, topology: Topology, seed: int = 0) -> None:
        super().__init__(topology, seed)
        self._salt = ecmp_salt(seed)

    def spine_index(self, leaf_idx: int, dst: NodeId) -> int:
        """Deterministic spine pick for traffic at leaf ``l<leaf_idx>``
        headed to ``dst`` (a host or a leaf)."""
        topo = self.topology
        dst_num = int(dst[1:])
        # Disambiguate host vs switch destinations in the key space.
        kind_bit = 0 if dst.startswith("h") else 1
        key = (leaf_idx << 34) ^ (kind_bit << 33) ^ dst_num ^ self._salt
        return mix64(key) % topo.n_spines

    def route(self, src: NodeId, dst: NodeId) -> list[NodeId]:
        topo = self.topology
        if not isinstance(topo, FatTreeTopology):
            return topo.route(src, dst)
        if src == dst:
            return [src]
        path = [src]
        at = src
        if src.startswith("h"):
            at = topo.leaf_of(src)
            path.append(at)
        dst_leaf = topo.leaf_of(dst) if dst.startswith("h") else dst
        if at.startswith("l"):
            if dst.startswith("s"):
                path.append(dst)
                return path
            if at != dst_leaf:
                path.append(f"s{self.spine_index(int(at[1:]), dst)}")
                path.append(dst_leaf)
        elif at.startswith("s"):
            if dst_leaf.startswith("s"):
                raise ValueError(f"no spine-to-spine path ({src} -> {dst})")
            path.append(dst_leaf)
        if dst.startswith("h"):
            path.append(dst)
        deduped = [path[0]]
        for node in path[1:]:
            if node != deduped[-1]:
                deduped.append(node)
        return deduped


ROUTERS: dict[str, type[Router]] = {
    ShortestPathRouter.name: ShortestPathRouter,
    EcmpRouter.name: EcmpRouter,
    AdaptiveRouter.name: AdaptiveRouter,
    UpDownRouter.name: UpDownRouter,
}


def available_routers() -> tuple[str, ...]:
    return tuple(sorted(ROUTERS))


def build_router(
    policy: "str | Router | None", topology: Topology, seed: int = 0
) -> Router:
    """Resolve a policy name (or pass through an instance) to a Router.

    ``None`` means the default policy, ECMP — the behavior the paper's
    fat-tree experiments assume.
    """
    if isinstance(policy, Router):
        if policy.topology is not topology:
            raise ValueError(
                "router was built for a different topology instance; "
                "build one per simulation (link state is live)"
            )
        return policy
    name = policy or EcmpRouter.name
    try:
        cls = ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; available: {available_routers()}"
        ) from None
    return cls(topology, seed=seed)
