"""Point-to-point link model.

A link serializes messages at its line rate and adds a fixed
propagation + switching latency.  Serialization state is a
``busy_until`` timestamp: transmissions queue FIFO behind one another,
which is how congestion manifests at chunk granularity.

Reliability: a link may carry a live :class:`LinkFault` — packet loss
and duplication (``lossy``), degraded line rate (``slow``), or a hard
outage (``down``, also mirrored in :attr:`Link.failed` so the topology
layer can exclude it from path computation).  Fault state is applied by
:class:`repro.network.faults.FaultInjector`; the pristine default
(``fault is None``) costs one attribute check on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LinkFault:
    """Live degradation of one link.

    ``kind`` is ``"lossy"`` (each message dropped with ``loss_rate``
    and/or delivered twice with ``duplicate_rate``), ``"slow"``
    (serialization stretched by ``slow_factor``), or ``"down"`` (the
    link carries nothing; the topology stops routing over it).
    """

    kind: str
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    slow_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("lossy", "slow", "down"):
            raise ValueError(
                f"unknown fault kind {self.kind!r}; use 'down', 'lossy' or 'slow'"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1.0")
        if self.kind == "lossy" and not (self.loss_rate or self.duplicate_rate):
            raise ValueError("a lossy fault needs loss_rate and/or duplicate_rate")
        if self.kind == "slow" and self.slow_factor == 1.0:
            raise ValueError("a slow fault needs slow_factor > 1.0")


@dataclass(slots=True)
class Link:
    """A directed link between two nodes."""

    src: str
    dst: str
    gbps: float = 100.0
    latency_ns: float = 250.0
    busy_until: float = 0.0
    bytes_carried: float = field(default=0.0, compare=False)
    messages_carried: int = field(default=0, compare=False)
    #: Live fault state (None = healthy), set by the fault injector.
    fault: "LinkFault | None" = field(default=None, compare=False)
    #: Hard outage flag mirrored from a "down" fault; the topology's
    #: path computation skips failed links.
    failed: bool = field(default=False, compare=False)
    #: Cached bytes/ns divisor (bit-identical to the historical
    #: ``gbps * 1e9 / 8.0 / 1e9`` chain); transmit() is the hottest call
    #: in network simulations, so the chain is evaluated once.
    _rate: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError("link rate must be positive")
        self._rate = self.gbps * 1e9 / 8.0 / 1e9

    def set_gbps(self, gbps: float) -> None:
        """Re-rate the link, rebuilding the cached bytes/ns divisor.

        Mutating :attr:`gbps` directly would leave ``_rate`` stale;
        every re-rating must go through here (or
        ``Topology.set_link_rate``, which also fans the change out to
        registered listeners — e.g. per-shard rate tables).
        """
        if gbps <= 0:
            raise ValueError("link rate must be positive")
        self.gbps = gbps
        self._rate = gbps * 1e9 / 8.0 / 1e9

    @property
    def bytes_per_ns(self) -> float:
        return self._rate

    def serialization_ns(self, nbytes: float) -> float:
        return nbytes / self.effective_rate

    @property
    def effective_rate(self) -> float:
        """Bytes/ns the link serializes at right now (slow faults
        stretch it; healthy links keep the cached line rate)."""
        fault = self.fault
        if fault is not None and fault.kind == "slow":
            return self._rate / fault.slow_factor
        return self._rate

    def transmit(self, nbytes: float, when: float) -> float:
        """Queue ``nbytes`` at time ``when``; returns arrival time at dst.

        The head of the message leaves when the link frees; arrival is
        after full serialization plus propagation (store-and-forward).
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        busy = self.busy_until
        start = when if when > busy else busy
        rate = self._rate
        fault = self.fault
        if fault is not None and fault.kind == "slow":
            rate = rate / fault.slow_factor
        self.busy_until = busy = start + nbytes / rate
        self.bytes_carried += nbytes
        self.messages_carried += 1
        return busy + self.latency_ns

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)

    @property
    def busy_ns(self) -> float:
        """Serialization occupancy: time this link spent transmitting.

        Derived from ``bytes_carried / rate`` rather than accumulated
        per message, for two reasons: the sharded engine merges
        ``bytes_carried`` deltas bitwise-identically to the sequential
        run, so a single division of identical operands keeps busy time
        bitwise engine-independent too (float accumulation would be
        summation-order-dependent); and it costs nothing on the
        transmit hot path.  Under a mid-run ``slow`` fault this is an
        estimate at the healthy line rate.
        """
        if not self._rate:
            return 0.0
        return self.bytes_carried / self._rate
