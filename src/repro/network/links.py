"""Point-to-point link model.

A link serializes messages at its line rate and adds a fixed
propagation + switching latency.  Serialization state is a
``busy_until`` timestamp: transmissions queue FIFO behind one another,
which is how congestion manifests at chunk granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Link:
    """A directed link between two nodes."""

    src: str
    dst: str
    gbps: float = 100.0
    latency_ns: float = 250.0
    busy_until: float = 0.0
    bytes_carried: float = field(default=0.0, compare=False)
    messages_carried: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError("link rate must be positive")

    @property
    def bytes_per_ns(self) -> float:
        return self.gbps * 1e9 / 8.0 / 1e9

    def serialization_ns(self, nbytes: float) -> float:
        return nbytes / self.bytes_per_ns

    def transmit(self, nbytes: float, when: float) -> float:
        """Queue ``nbytes`` at time ``when``; returns arrival time at dst.

        The head of the message leaves when the link frees; arrival is
        after full serialization plus propagation (store-and-forward).
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        start = max(when, self.busy_until)
        self.busy_until = start + self.serialization_ns(nbytes)
        self.bytes_carried += nbytes
        self.messages_carried += 1
        return self.busy_until + self.latency_ns

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)
