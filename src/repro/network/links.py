"""Point-to-point link model.

A link serializes messages at its line rate and adds a fixed
propagation + switching latency.  Serialization state is a
``busy_until`` timestamp: transmissions queue FIFO behind one another,
which is how congestion manifests at chunk granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Link:
    """A directed link between two nodes."""

    src: str
    dst: str
    gbps: float = 100.0
    latency_ns: float = 250.0
    busy_until: float = 0.0
    bytes_carried: float = field(default=0.0, compare=False)
    messages_carried: int = field(default=0, compare=False)
    #: Cached bytes/ns divisor (bit-identical to the historical
    #: ``gbps * 1e9 / 8.0 / 1e9`` chain); transmit() is the hottest call
    #: in network simulations, so the chain is evaluated once.
    _rate: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError("link rate must be positive")
        self._rate = self.gbps * 1e9 / 8.0 / 1e9

    @property
    def bytes_per_ns(self) -> float:
        return self._rate

    def serialization_ns(self, nbytes: float) -> float:
        return nbytes / self._rate

    def transmit(self, nbytes: float, when: float) -> float:
        """Queue ``nbytes`` at time ``when``; returns arrival time at dst.

        The head of the message leaves when the link frees; arrival is
        after full serialization plus propagation (store-and-forward).
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        busy = self.busy_until
        start = when if when > busy else busy
        self.busy_until = busy = start + nbytes / self._rate
        self.bytes_carried += nbytes
        self.messages_carried += 1
        return busy + self.latency_ns

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)
