"""Chunk-level network discrete-event simulator.

Messages travel hop by hop (store-and-forward) over the topology's
links; each hop is an event, so link contention, pipelining across
chunks, and in-switch aggregation hooks all compose naturally.  Traffic
is accounted as bytes carried per link — summing over links gives the
paper's "total number of bytes that traversed the network" (Fig. 15
right), and the per-link breakdown (:meth:`TrafficStats.hot_links`)
shows where a routing policy piled the load.

Next hops come from a :class:`repro.network.routing.Router` policy —
deterministic, ECMP, or congestion-adaptive — consulted at every hop,
over any :class:`repro.network.topology.Topology`.

In-switch processing is modeled through *interceptors*: a callback
registered at a switch node sees every message addressed through it and
may consume the message (aggregate it into block state) and/or emit new
ones — exactly the capability the authors added to SST.

Multi-tenancy.  Several collectives may share one simulator: each
message carries a ``flow`` id, delivery callbacks can be registered per
``(node, flow)``, and traffic is accounted both globally and per flow.
Under the default FIFO arbitration, link serialization queues messages
in arrival order (the single-tenant behavior).  With
``arbitration="wfq"`` a busy link instead queues contending messages
and serves them in start-time-fair order weighted by each flow's QoS
weight (:meth:`set_flow_weight`) — the per-tenant arbitration the
shared :class:`repro.comm.fabric.Fabric` uses.  A single flow sees
identical timing under both modes (start tags are monotone per flow),
which is what pins single-tenant parity across the fabric refactor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.network.faults import FaultInjector, FaultSchedule
from repro.network.routing import Router, build_router
from repro.network.topology import NodeId, Topology
from repro.pspin.engine import Simulator


class UnreachableError(RuntimeError):
    """A message exhausted its retransmission budget or lost every
    path to its destination (network partitioned)."""


@dataclass(slots=True)
class Message:
    """One chunk on the wire."""

    src: NodeId
    dst: NodeId
    nbytes: float
    tag: tuple = ()
    payload: object = None
    #: Tenant/collective the chunk belongs to (None = untagged traffic).
    flow: object = None
    #: End-to-end retransmissions this chunk has already burned.
    retries: int = 0
    #: Fault-injected duplicate copy: delivered if it survives, but
    #: never itself recovered (the original owns the retransmission
    #: protocol — otherwise dropped duplicates would feed back into
    #: retransmission storms and burn the retry budget).
    ephemeral: bool = False
    #: Sharded-engine message id (0 = unassigned).  The coordinator
    #: assigns one the first time a message crosses a shard boundary;
    #: it keys the parked original (payload, tag, callbacks stay in the
    #: coordinator process) while the workers move only numeric
    #: metadata, and doubles as the deterministic tie-break for
    #: same-timestamp cross-shard arrivals.
    mid: int = 0


@dataclass
class TrafficStats:
    """Aggregate and per-link traffic accounting for one run."""

    bytes_hops: float = 0.0          # sum over links of bytes carried
    messages: int = 0
    per_link: dict = field(default_factory=dict)   # (src, dst) -> bytes
    #: Reliability counters (fault-injection runs): messages lost on a
    #: link, spuriously duplicated, and end-to-end retransmissions.
    drops: int = 0
    duplicates: int = 0
    retransmits: int = 0
    #: Per-link reliability attribution (fault-injection runs):
    #: (src, dst) -> count.  Dead-switch swallows have no link and stay
    #: in the run-level ``drops`` only, so ``sum(link_drops.values())
    #: <= drops``.  Sharded fault runs merge these from worker deltas
    #: (integer counts keyed per link, so the merge is order-free).
    link_drops: dict = field(default_factory=dict)
    link_duplicates: dict = field(default_factory=dict)

    @property
    def gib(self) -> float:
        return self.bytes_hops / (1024**3)

    @property
    def max_link_bytes(self) -> float:
        """Bytes carried by the most loaded link (the congestion metric
        adaptive routing minimizes)."""
        return max(self.per_link.values(), default=0.0)

    def hot_links(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` most loaded links as ("src->dst", bytes), hottest
        first (ties broken by link name for determinism)."""
        ranked = sorted(self.per_link.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(f"{src}->{dst}", nbytes) for (src, dst), nbytes in ranked[:n]]

    def record(self, src: NodeId, dst: NodeId, nbytes: float) -> None:
        self.bytes_hops += nbytes
        self.messages += 1
        key = (src, dst)
        self.per_link[key] = self.per_link.get(key, 0.0) + nbytes


#: An interceptor sees (sim, message, arrival_time) when a message
#: reaches the node it is registered at (before further forwarding) and
#: returns True to consume the message (stop forwarding).
Interceptor = Callable[["NetworkSimulator", Message, float], bool]


class _LinkQueue:
    """Per-link start-time-fair queue (WFQ mode only).

    Packets that find the link busy are queued with a start tag
    ``max(virtual_time, last finish tag of their flow)``; the link
    serves the smallest start tag first (ties by enqueue order).  The
    finish tag advances by ``nbytes / weight``, so a flow with weight w
    gets ~w times the service of a weight-1 competitor while both
    contend.  A lone flow's tags are monotone in enqueue order — FIFO.
    """

    __slots__ = (
        "vtime", "finish_tag", "heap", "drain_scheduled", "link", "depth_peak"
    )

    def __init__(self, link) -> None:
        self.vtime = 0.0
        self.finish_tag: dict = {}
        self.heap: list = []          # (start_tag, seq, msg, node)
        self.drain_scheduled = False
        self.link = link              # cached Link (stable per key)
        #: Provenance: most messages ever waiting at once (counted after
        #: each push, so a transient lone occupant registers as 1).  The
        #: uncontended fast-path bypass never pushes, so under
        #: ``REPRO_FASTPATH`` only genuinely contended instants count —
        #: consistently so across sequential and sharded engines.
        self.depth_peak = 0

    def push(self, msg: Message, node: NodeId, weight: float, seq: int) -> None:
        start = max(self.vtime, self.finish_tag.get(msg.flow, 0.0))
        self.finish_tag[msg.flow] = start + msg.nbytes / max(weight, 1e-9)
        heapq.heappush(self.heap, (start, seq, msg, node))
        if len(self.heap) > self.depth_peak:
            self.depth_peak = len(self.heap)

    def pop(self) -> tuple[Message, NodeId]:
        start, _seq, msg, node = heapq.heappop(self.heap)
        self.vtime = max(self.vtime, start)
        return msg, node


class NetworkSimulator:
    """Event-driven message transport over a topology.

    ``router`` is a policy name (``"shortest"``/``"ecmp"``/
    ``"adaptive"``), a prebuilt :class:`Router` over the same topology
    object, or ``None`` for the default (seeded deterministic ECMP).
    ``sim`` lets several subsystems share one discrete-event engine
    (the fabric reuses the PsPIN :class:`~repro.pspin.engine.Simulator`
    as its single clock); by default each simulator owns a private one.
    ``arbitration`` selects link scheduling: ``"fifo"`` (legacy
    arrival-order serialization) or ``"wfq"`` (weighted start-time-fair
    queueing across flows).
    """

    #: Injector class :meth:`arm_faults` instantiates.  The sharded
    #: engine substitutes a coordinator-aware subclass that mirrors
    #: armed specs into the worker shards and mutes the coordinator's
    #: redundant topology broadcasts.
    _fault_injector_cls = FaultInjector

    def __init__(
        self,
        topology: Topology,
        router: "Router | str | None" = None,
        routing_seed: int = 0,
        sim: Optional[Simulator] = None,
        arbitration: str = "fifo",
    ) -> None:
        if arbitration not in ("fifo", "wfq"):
            raise ValueError(
                f"unknown arbitration {arbitration!r}; use 'fifo' or 'wfq'"
            )
        from repro.pspin.train import fast_path_env_enabled

        self.topology = topology
        self.router = build_router(router, topology, seed=routing_seed)
        self.sim = sim if sim is not None else Simulator()
        self.arbitration = arbitration
        #: Structural fast paths (next-hop memoization, uncontended WFQ
        #: bypass, burst sends) — identical timing, fewer Python ops.
        #: ``REPRO_FASTPATH=0`` disables them so the benchmark harness
        #: can measure the per-event baseline.
        self.fast_path = fast_path_env_enabled()
        #: next-hop memo for routers whose decision is a pure function
        #: of (node, dst) — shortest and seeded ECMP; adaptive routing
        #: consults live link state and is never cached.
        self._next_hop_cache: dict = (
            {} if (self.router.cacheable and self.fast_path) else None
        )
        self.traffic = TrafficStats()
        self._flow_traffic: dict[object, TrafficStats] = {}
        self._flow_weight: dict[object, float] = {}
        self._interceptors: dict[NodeId, Interceptor] = {}
        self._deliver_cb: dict[tuple, Callable[[Message, float], None]] = {}
        self._queues: dict[tuple, _LinkQueue] = {}
        self._queue_seq = 0
        #: Per-switch store-and-forward processing overhead (ns) applied
        #: when an interceptor re-emits; plain forwarding relies on link
        #: latency alone.
        self.switch_overhead_ns = 0.0
        #: Fault injection (None until :meth:`arm_faults`): models loss,
        #: duplication, degradation, and outages on the links.
        self.faults: Optional[FaultInjector] = None
        #: Host timeout before a lost chunk is retransmitted end to end
        #: (paper Sec. 4.1: "a timeout is triggered in the host, that
        #: retransmits the packet").
        self.retransmit_timeout_ns = 50_000.0
        #: Retransmission budget per chunk; exhausting it raises
        #: :class:`UnreachableError` (persistent partition).
        self.max_retransmits = 64
        #: Flows whose collectives were abandoned (e.g. replanned after
        #: a failure): their in-flight chunks are dropped on sight.
        self._dead_flows: set = set()
        # Invalidate the next-hop memo at the mutation site: a direct
        # ``topology.fail_link()`` (no armed fault injector) used to
        # leave the memo stale.  The sharded engine extends this hook
        # to fan mutations out to worker shards.
        topology.add_change_listener(self._topology_changed)

    def _topology_changed(self, event: str, *args) -> None:
        self.on_topology_change()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def on_deliver(
        self,
        node: NodeId,
        callback: Callable[[Message, float], None],
        flow: object = None,
    ) -> None:
        """Callback when a ``flow`` message terminates at ``node``.

        Registrations are keyed per (node, flow); a message whose flow
        has no registration falls back to the node's flow-``None``
        callback, so single-flow callers need not tag anything.
        """
        self._deliver_cb[(node, flow)] = callback

    def intercept(self, node: NodeId, interceptor: Interceptor) -> None:
        """Install an in-network processing hook at a switch node."""
        self._interceptors[node] = interceptor

    def set_flow_weight(self, flow: object, weight: float) -> None:
        """QoS weight used by WFQ link arbitration (default 1.0)."""
        if weight <= 0:
            raise ValueError("flow weight must be positive")
        self._flow_weight[flow] = float(weight)

    def remove_flow(self, flow: object) -> None:
        """Drop a finished flow's callbacks, weight, queue tags, and
        traffic stats.  Long-lived fabrics call this per collective, so
        per-flow state must not accumulate; results snapshot what they
        need from :meth:`flow_stats` before the flow is removed (global
        stats always remain)."""
        self._flow_weight.pop(flow, None)
        self._flow_traffic.pop(flow, None)
        for key in [k for k in self._deliver_cb if k[1] == flow]:
            del self._deliver_cb[key]
        for queue in self._queues.values():
            queue.finish_tag.pop(flow, None)

    def abandon_flow(self, flow: object) -> None:
        """Drop a flow's callbacks *and* its in-flight traffic.

        Used when a collective is replanned after a failure: chunks of
        the dead flow still in the event heap are discarded at their
        next hop instead of delivering into stale callbacks."""
        self._dead_flows.add(flow)
        self.remove_flow(flow)

    def flow_stats(self, flow: object = None) -> TrafficStats:
        """Traffic carried by one flow (global stats when ``flow`` is
        None).  Untagged messages only appear in the global stats."""
        if flow is None:
            return self.traffic
        return self._flow_traffic.setdefault(flow, TrafficStats())

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def arm_faults(
        self,
        schedule: "FaultSchedule | None" = None,
        seed: Optional[int] = None,
    ) -> FaultInjector:
        """Attach (and return) the fault injector, arming ``schedule``.

        Arming *provably disengages* the structural fast paths: the
        next-hop memo is discarded (routes change under failures), burst
        trains split back into per-packet events, and the uncontended
        WFQ bypass is skipped — every chunk takes the per-packet DES
        path where loss, duplication and retransmission are exact.
        """
        if self.faults is None:
            self.faults = self._fault_injector_cls(self, seed=seed or 0)
            self.fast_path = False
            self._next_hop_cache = None
        elif seed is not None:
            self.faults.seed = seed
            from repro.utils.rngtools import stable_hash

            self.faults._salt = stable_hash("fault-injector", seed)
        if schedule is not None:
            self.faults.schedule(FaultSchedule.from_any(schedule))
        return self.faults

    def on_topology_change(self) -> None:
        """Invalidate routing memos after a link/switch failure or
        repair (the topology's own path caches are already reset)."""
        self._next_hop_cache = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, msg: Message, at: float = 0.0) -> None:
        """Inject a message at its source at absolute time ``at``."""
        now = self.sim.now
        self._schedule_hop(at if at > now else now, msg, msg.src)

    def _schedule_hop(self, time: float, msg: Message, node: NodeId) -> None:
        """Schedule ``msg`` to arrive (or start) at ``node`` at ``time``.

        The single seam every arrival-scheduling site funnels through.
        The sharded engine overrides it: arrivals at nodes owned by
        another shard are diverted into cross-shard event batches at
        *scheduling* time — interception at execution time would be too
        late to meet the conservative lookahead deadline.
        """
        self.sim.schedule_fast(time, self._hop, (msg, node))

    def send_burst(self, msgs: list[Message], at: float = 0.0) -> None:
        """Inject a burst of messages at one time under ONE event.

        Equivalent to ``send`` per message (consecutive same-instant
        events with no interleaving process back-to-back in order), but
        costs a single heap event — collectives use it for the per-
        segment sub-chunk trains they issue at the same instant.
        """
        now = self.sim.now
        if not self.fast_path:
            for msg in msgs:
                self.send(msg, at=at)
            return
        self.sim.schedule_fast(at if at > now else now, self._hop_burst, (msgs,))

    def _hop_burst(self, msgs: list[Message]) -> None:
        hop = self._hop
        for msg in msgs:
            hop(msg, msg.src)

    def _hop(self, msg: Message, node: NodeId) -> None:
        now = self.sim.now
        if self._dead_flows and msg.flow in self._dead_flows:
            return  # collective was abandoned/replanned; chunk discarded
        if self._interceptors and (node != msg.src or node in self._interceptors):
            # Arrived at an intermediate or terminal node.
            interceptor = self._interceptors.get(node)
            if interceptor is not None and node != msg.dst:
                if interceptor(self, msg, now):
                    return  # consumed by in-network processing
        if node == msg.dst:
            if self.faults is not None:
                # The chunk got through; a fresh loss later (e.g. of a
                # duplicate) starts a fresh retransmission budget.
                msg.retries = 0
            cb = self._deliver_cb.get((node, msg.flow))
            if cb is None and msg.flow is not None:
                cb = self._deliver_cb.get((node, None))
            if cb is not None:
                cb(msg, now)
            return
        if self.faults is not None:
            self._hop_faulty(msg, node)
            return
        cache = self._next_hop_cache
        if cache is not None:
            key = (node, msg.dst)
            next_node = cache.get(key)
            if next_node is None:
                next_node = cache[key] = self.router.next_hop(node, msg.dst)
        else:
            next_node = self.router.next_hop(node, msg.dst)
        if self.arbitration == "wfq":
            self._enqueue(node, next_node, msg)
        else:
            self._transmit(node, next_node, msg)

    def _hop_faulty(self, msg: Message, node: NodeId) -> None:
        """Forwarding leg under armed faults: dead switches swallow
        chunks (host timeout recovers them), routing re-resolves against
        the live failure state, and a partition surfaces loudly."""
        # Membership test against the topology's live internal set:
        # this runs on every forwarding hop of a chaos run, where the
        # copying failed_switches() accessor would allocate per hop.
        if node != msg.src and node in self.topology._failed_switches:
            self._lose(msg)
            return
        try:
            next_node = self.router.next_hop(node, msg.dst)
        except ValueError as exc:
            raise UnreachableError(
                f"no route {node} -> {msg.dst} for flow {msg.flow!r}: the "
                f"injected failures partitioned the network ({exc})"
            ) from exc
        if self.arbitration == "wfq":
            self._enqueue(node, next_node, msg)
        else:
            self._transmit(node, next_node, msg)

    # ------------------------------------------------------------------
    # Link service
    # ------------------------------------------------------------------
    def _record(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        # Inlined TrafficStats.record x2: this runs once per link hop.
        nbytes = msg.nbytes
        key = (src, dst)
        stats = self.traffic
        stats.bytes_hops += nbytes
        stats.messages += 1
        per_link = stats.per_link
        per_link[key] = per_link.get(key, 0.0) + nbytes
        flow = msg.flow
        if flow is not None:
            stats = self._flow_traffic.get(flow)
            if stats is None:
                stats = self._flow_traffic[flow] = TrafficStats()
            stats.bytes_hops += nbytes
            stats.messages += 1
            per_link = stats.per_link
            per_link[key] = per_link.get(key, 0.0) + nbytes

    def _transmit(self, node: NodeId, next_node: NodeId, msg: Message) -> None:
        link = self.topology.link(node, next_node)
        if self.faults is not None:
            self._launch(link, node, next_node, msg)
            return
        arrival = link.transmit(msg.nbytes, self.sim.now)
        self._record(node, next_node, msg)
        self._schedule_hop(arrival, msg, next_node)

    # ------------------------------------------------------------------
    # Reliability (fault-injection runs only)
    # ------------------------------------------------------------------
    def _launch(self, link, node: NodeId, next_node: NodeId, msg: Message) -> None:
        """Serve one message on one link under armed faults.

        Down links carry nothing (the chunk is lost before
        serialization); lossy links serialize the chunk — the bytes
        were on the wire — then lose or duplicate it per the seeded
        per-message decision; slow links stretch serialization inside
        :meth:`Link.transmit`."""
        if link.failed:
            self._count_link(msg, self.traffic.link_drops, link)
            self._lose(msg)
            return
        fault = link.fault
        arrival = link.transmit(msg.nbytes, self.sim.now)
        self._record(node, next_node, msg)
        if fault is not None and fault.kind == "lossy":
            faults = self.faults
            if fault.loss_rate and faults.roll(link, "drop", fault.loss_rate):
                self._count_link(msg, self.traffic.link_drops, link)
                self._lose(msg)
                return
            if fault.duplicate_rate and faults.roll(
                link, "dup", fault.duplicate_rate
            ):
                self._count_link(msg, self.traffic.link_duplicates, link)
                self._count(msg, "duplicates")
                dup = Message(
                    msg.src, msg.dst, msg.nbytes, msg.tag, msg.payload,
                    msg.flow, ephemeral=True, mid=msg.mid,
                )
                self._schedule_hop(arrival + link.latency_ns, dup, next_node)
        self._schedule_hop(arrival, msg, next_node)

    def _count_link(self, msg: Message, table: dict, link) -> None:
        """Per-link reliability attribution, mirroring :meth:`_lose`'s
        dead-flow guard so ``link_drops`` stays consistent with
        ``drops``."""
        if self._dead_flows and msg.flow in self._dead_flows:
            return
        key = link.key
        table[key] = table.get(key, 0) + 1

    def _count(self, msg: Message, counter: str) -> None:
        setattr(self.traffic, counter, getattr(self.traffic, counter) + 1)
        flow = msg.flow
        if flow is not None:
            stats = self._flow_traffic.get(flow)
            if stats is None:
                stats = self._flow_traffic[flow] = TrafficStats()
            setattr(stats, counter, getattr(stats, counter) + 1)

    def _lose(self, msg: Message) -> None:
        """A chunk vanished; arm the host's retransmission timeout."""
        if self._dead_flows and msg.flow in self._dead_flows:
            return
        self._count(msg, "drops")
        if msg.ephemeral:
            return      # a lost duplicate; the original recovers itself
        if msg.retries >= self.max_retransmits:
            raise UnreachableError(
                f"chunk {msg.src} -> {msg.dst} (flow {msg.flow!r}) lost "
                f"{msg.retries} retransmissions in a row; destination "
                "unreachable (persistent failure or partition)"
            )
        msg.retries += 1
        self.sim.schedule_fast(
            self.sim.now + self.retransmit_timeout_ns, self._retransmit, (msg,)
        )

    def _retransmit(self, msg: Message) -> None:
        if self._dead_flows and msg.flow in self._dead_flows:
            return
        self._count(msg, "retransmits")
        self._hop(msg, msg.src)

    def _enqueue(self, node: NodeId, next_node: NodeId, msg: Message) -> None:
        key = (node, next_node)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = _LinkQueue(self.topology.link(node, next_node))
        flow = msg.flow
        weight = self._flow_weight.get(flow, 1.0)
        link = queue.link
        now = self.sim.now
        if self.fast_path and not queue.heap and link.busy_until <= now:
            # Uncontended instant: serve immediately with the same WFQ
            # tag updates a push+pop pair would apply (exact bypass).
            finish_tag = queue.finish_tag
            start = finish_tag.get(flow, 0.0)
            vtime = queue.vtime
            if vtime > start:
                start = vtime
            finish_tag[flow] = start + msg.nbytes / max(weight, 1e-9)
            if start > vtime:
                queue.vtime = start
            arrival = link.transmit(msg.nbytes, now)
            self._record(node, next_node, msg)
            self._schedule_hop(arrival, msg, next_node)
            return
        queue.push(msg, next_node, weight, self._queue_seq)
        self._queue_seq += 1
        self._drain(key, queue)

    def _drain(self, key: tuple, queue: "_LinkQueue | None" = None) -> None:
        """Serve the fairest queued message if the link is free; else
        (re)arm a drain event for when it frees."""
        if queue is None:
            queue = self._queues[key]
        link = queue.link
        now = self.sim.now
        faulty = self.faults is not None
        while queue.heap and link.busy_until <= now:
            msg, next_node = queue.pop()
            if faulty:
                self._launch(link, key[0], next_node, msg)
                continue
            arrival = link.transmit(msg.nbytes, now)
            self._record(key[0], next_node, msg)
            self._schedule_hop(arrival, msg, next_node)
        if queue.heap and not queue.drain_scheduled:
            queue.drain_scheduled = True
            # priority 0: the link must free before same-instant arrivals.
            self.sim.schedule_fast(
                link.busy_until, self._rearm, (key, queue), priority=0
            )

    def _rearm(self, key: tuple, queue: "_LinkQueue") -> None:
        queue.drain_scheduled = False
        self._drain(key, queue)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run to quiescence; returns the final simulation time (ns)."""
        self.sim.run(until=until)
        return self.sim.now

    @property
    def now(self) -> float:
        return self.sim.now

    def queue_depth_peaks(self) -> dict:
        """Provenance: ``{(src, dst): peak}`` high-water marks of the
        WFQ link queues (empty under FIFO arbitration, which never
        materializes queues).  Peaks are integer maxima, so the sharded
        engine's override max-merges worker peaks order-independently
        — bitwise-equal to a sequential run."""
        return {
            key: queue.depth_peak
            for key, queue in self._queues.items()
            if queue.depth_peak
        }

    def traffic_extra(self, n_hot: int = 3, flow: object = None) -> dict:
        """Congestion fields for ``CollectiveResult.extra``.

        Fault-injection runs additionally surface the per-flow
        reliability counters (drops / duplicates / retransmits), so
        every schedule's result reports what the chaos cost it."""
        stats = self.flow_stats(flow)
        out = {
            "max_link_bytes": stats.max_link_bytes,
            "hot_links": stats.hot_links(n_hot),
            "routing": self.router.name,
        }
        if self.faults is not None:
            out["drops"] = stats.drops
            out["duplicates"] = stats.duplicates
            out["retransmits"] = stats.retransmits
        return out
