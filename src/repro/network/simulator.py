"""Chunk-level network discrete-event simulator.

Messages travel hop by hop (store-and-forward) over the topology's
links; each hop is an event, so link contention, pipelining across
chunks, and in-switch aggregation hooks all compose naturally.  Traffic
is accounted as bytes carried per link — summing over links gives the
paper's "total number of bytes that traversed the network" (Fig. 15
right), and the per-link breakdown (:meth:`TrafficStats.hot_links`)
shows where a routing policy piled the load.

Next hops come from a :class:`repro.network.routing.Router` policy —
deterministic, ECMP, or congestion-adaptive — consulted at every hop,
over any :class:`repro.network.topology.Topology`.

In-switch processing is modeled through *interceptors*: a callback
registered at a switch node sees every message addressed through it and
may consume the message (aggregate it into block state) and/or emit new
ones — exactly the capability the authors added to SST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.network.routing import Router, build_router
from repro.network.topology import NodeId, Topology
from repro.pspin.engine import Simulator


@dataclass
class Message:
    """One chunk on the wire."""

    src: NodeId
    dst: NodeId
    nbytes: float
    tag: tuple = ()
    payload: object = None


@dataclass
class TrafficStats:
    """Aggregate and per-link traffic accounting for one run."""

    bytes_hops: float = 0.0          # sum over links of bytes carried
    messages: int = 0
    per_link: dict = field(default_factory=dict)   # (src, dst) -> bytes

    @property
    def gib(self) -> float:
        return self.bytes_hops / (1024**3)

    @property
    def max_link_bytes(self) -> float:
        """Bytes carried by the most loaded link (the congestion metric
        adaptive routing minimizes)."""
        return max(self.per_link.values(), default=0.0)

    def hot_links(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` most loaded links as ("src->dst", bytes), hottest
        first (ties broken by link name for determinism)."""
        ranked = sorted(self.per_link.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(f"{src}->{dst}", nbytes) for (src, dst), nbytes in ranked[:n]]

    def record(self, src: NodeId, dst: NodeId, nbytes: float) -> None:
        self.bytes_hops += nbytes
        self.messages += 1
        key = (src, dst)
        self.per_link[key] = self.per_link.get(key, 0.0) + nbytes


#: An interceptor sees (sim, message, arrival_time) when a message
#: reaches the node it is registered at (before further forwarding) and
#: returns True to consume the message (stop forwarding).
Interceptor = Callable[["NetworkSimulator", Message, float], bool]


class NetworkSimulator:
    """Event-driven message transport over a topology.

    ``router`` is a policy name (``"shortest"``/``"ecmp"``/
    ``"adaptive"``), a prebuilt :class:`Router` over the same topology
    object, or ``None`` for the default (seeded deterministic ECMP).
    """

    def __init__(
        self,
        topology: Topology,
        router: "Router | str | None" = None,
        routing_seed: int = 0,
    ) -> None:
        self.topology = topology
        self.router = build_router(router, topology, seed=routing_seed)
        self.sim = Simulator()
        self.traffic = TrafficStats()
        self._interceptors: dict[NodeId, Interceptor] = {}
        self._deliver_cb: dict[NodeId, Callable[[Message, float], None]] = {}
        #: Per-switch store-and-forward processing overhead (ns) applied
        #: when an interceptor re-emits; plain forwarding relies on link
        #: latency alone.
        self.switch_overhead_ns = 0.0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def on_deliver(self, node: NodeId, callback: Callable[[Message, float], None]) -> None:
        """Callback when a message terminates at ``node``."""
        self._deliver_cb[node] = callback

    def intercept(self, node: NodeId, interceptor: Interceptor) -> None:
        """Install an in-network processing hook at a switch node."""
        self._interceptors[node] = interceptor

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, msg: Message, at: float = 0.0) -> None:
        """Inject a message at its source at absolute time ``at``."""
        self.sim.schedule_at(max(at, self.sim.now), self._hop, msg, msg.src)

    def _hop(self, msg: Message, node: NodeId) -> None:
        now = self.sim.now
        if node != msg.src or node in self._interceptors:
            # Arrived at an intermediate or terminal node.
            interceptor = self._interceptors.get(node)
            if interceptor is not None and node != msg.dst:
                if interceptor(self, msg, now):
                    return  # consumed by in-network processing
        if node == msg.dst:
            cb = self._deliver_cb.get(node)
            if cb is not None:
                cb(msg, now)
            return
        next_node = self.router.next_hop(node, msg.dst)
        link = self.topology.link(node, next_node)
        arrival = link.transmit(msg.nbytes, now)
        self.traffic.record(node, next_node, msg.nbytes)
        self.sim.schedule_at(arrival, self._hop, msg, next_node)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run to quiescence; returns the final simulation time (ns)."""
        self.sim.run(until=until)
        return self.sim.now

    @property
    def now(self) -> float:
        return self.sim.now

    def traffic_extra(self, n_hot: int = 3) -> dict:
        """Congestion fields for ``CollectiveResult.extra``."""
        return {
            "max_link_bytes": self.traffic.max_link_bytes,
            "hot_links": self.traffic.hot_links(n_hot),
            "routing": self.router.name,
        }
